//! Quickstart: the error-spreading idea in thirty lines.
//!
//! Reproduces the paper's Table 1 on your terminal: a window of 17 frames
//! facing a bursty loss of 5 packets, sent in order vs. scrambled.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use error_spreading::core::burst_loss_pattern;
use error_spreading::prelude::*;

fn main() {
    let n = 17;
    let burst = 5;

    // The unscrambled order: a burst of 5 wipes 5 consecutive frames.
    let in_order = Permutation::identity(n);
    let naive = burst_loss_pattern(&in_order, 6, burst);
    println!("in order  : {naive}   CLF {}", naive.longest_run());

    // calculatePermutation(n, b): the optimal error-spreading order.
    let choice = calculate_permutation(n, burst);
    println!(
        "scrambled : sending as {} ({})",
        choice.permutation, choice.family
    );
    let spread = burst_loss_pattern(&choice.permutation, 6, burst);
    println!("scrambled : {spread}   CLF {}", spread.longest_run());

    // The guarantee holds for every burst position, and Theorem 1 brackets it.
    assert_eq!(worst_case_clf(&choice.permutation, burst), choice.worst_clf);
    let bound = theorem_one(n, burst);
    println!(
        "worst-case CLF {} (Theorem 1 bracket: [{}, {}])",
        choice.worst_clf, bound.lower, bound.upper
    );

    // Perception: a viewer tolerates CLF ≤ 2. Both orders lose the same
    // 5/17 of the window (the ALF is invariant under permutation), so
    // with the aggregate tolerance at that level the verdict is decided
    // purely by burstiness.
    let profile = PerceptionProfile::for_media(MediaKind::Video).with_alf_threshold(0.30);
    println!(
        "viewer verdict — in order: {}, scrambled: {}",
        profile.judge(ContinuityMetrics::of(&naive)),
        profile.judge(ContinuityMetrics::of(&spread)),
    );
}
