//! Minimal, deterministic, offline stand-in for the `rand` crate.
//!
//! Only the surface this workspace actually uses is provided:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] / [`RngExt::random`]. The generator is
//! SplitMix64 — statistically solid for simulation workloads and exactly
//! reproducible from a `u64` seed.

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64).
    ///
    /// The real crate's `StdRng` is a CSPRNG; this stand-in trades
    /// cryptographic strength (unused here) for zero dependencies.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng { state }
    }
}

/// The raw 64-bit source every higher-level draw is built from.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Types drawable uniformly "at large" via [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut impl RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard the half-open contract against floating-point round-up.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u128 + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// Convenience draws, mirroring `rand::RngExt` (the 0.10 rename of `Rng`).
pub trait RngExt: RngCore {
    /// Draws a value of `T` uniformly over its natural domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v: u16 = rng.random_range(5u16..=6);
            assert!((5..=6).contains(&v));
        }
    }

    #[test]
    fn unit_draw_is_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
