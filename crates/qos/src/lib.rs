//! Content-based continuity Quality-of-Service metrics for continuous media.
//!
//! This crate implements the QoS model the error-spreading paper builds on
//! (Wijesekera & Srivastava, *"Quality of Service (QoS) Metrics for
//! Continuous Media"*, Multimedia Tools and Applications, 1996 — reference
//! \[21\] of the ICDCS 2000 paper).
//!
//! A continuous-media (CM) stream is viewed as a flow of **logical data
//! units** (LDUs): a video LDU is one frame; an audio LDU is 266 samples of
//! 8-bit 8 kHz audio (≈ one video-frame time at 30 fps). Each LDU has an
//! ideal playout **slot**; deviation from the ideal contents is measured by
//! two *content-based continuity* metrics over a window of `n` LDUs:
//!
//! * **Aggregate Loss Factor (ALF)** — the fraction of unit losses in the
//!   window (how *much* was lost);
//! * **Consecutive Loss Factor (CLF)** — the largest run of consecutive unit
//!   losses (how *bursty* the loss was).
//!
//! Perceptual studies (reference \[6\]) show users tolerate a moderate ALF
//! but very little CLF: the tolerance threshold is about **2 consecutive
//! frames for video** and **3 for audio**. The entire point of error
//! spreading is to trade CLF for ALF.
//!
//! # Example
//!
//! The two example streams of Fig. 1 of the paper: both lose 2 of 4 interior
//! LDUs (equal aggregate loss), but stream 1 loses them back-to-back (CLF 2)
//! while stream 2's losses are spread out (CLF 1):
//!
//! ```
//! use espread_qos::{LossPattern, ContinuityMetrics};
//!
//! let stream1 = LossPattern::from_received([true, false, false, true, true, true]);
//! let stream2 = LossPattern::from_received([true, false, true, true, false, true]);
//!
//! let m1 = ContinuityMetrics::of(&stream1);
//! let m2 = ContinuityMetrics::of(&stream2);
//!
//! assert_eq!(m1.lost(), 2);
//! assert_eq!(m2.lost(), 2);          // same aggregate loss...
//! assert_eq!(m1.clf(), 2);
//! assert_eq!(m2.clf(), 1);           // ...but stream 2 is less bursty
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concealment;
pub mod ldu;
pub mod loss;
pub mod metrics;
pub mod perception;
pub mod quality;
pub mod timeline;
pub mod window;

pub use concealment::Concealment;
pub use ldu::{LduClock, LduId, MediaKind, StreamSpec};
pub use loss::{LossPattern, LossRun};
pub use metrics::{Alf, ContinuityMetrics};
pub use perception::{Acceptability, PerceptionProfile};
pub use quality::{score, QualityScore};
pub use timeline::PlayoutTimeline;
pub use window::{WindowSeries, WindowSummary};
