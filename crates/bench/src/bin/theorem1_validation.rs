//! Theorem 1 — the minimum supportable CLF, validated numerically.
//!
//! For a grid of window sizes `n` and burst bounds `b`, prints the
//! information-theoretic lower bound, the constructive upper bound, and
//! the exact optimum found by `calculatePermutation`, flagging the
//! regimes of the theorem (`b = 1`, `b² ≤ n`, `b ≥ n`).
//!
//! ```sh
//! cargo run --release -p espread-bench --bin theorem1_validation -- --jobs 4
//! ```

use espread_bench::sweep;
use espread_core::{calculate_permutation, theorem_one};
use espread_exec::Json;

fn main() {
    println!("Theorem 1 validation: k*(n, b) bracketed by the reconstructed bounds\n");
    println!(
        "{:>4} {:>4} {:>7} {:>7} {:>7} {:>7}  regime",
        "n", "b", "lower", "exact", "upper", "tight"
    );

    let grid: Vec<(usize, usize)> = [8usize, 12, 17, 24, 32, 48, 64]
        .into_iter()
        .flat_map(|n| {
            [1usize, 2, 3, 5, 8, 12, 16, 24, 32, 48, 64]
                .into_iter()
                .filter(move |&b| b <= n)
                .map(move |b| (n, b))
        })
        .collect();
    // Each (n, b) cell runs the exact search once — the grid's hot loop.
    let cells = sweep::executor("theorem1_validation").run(grid.clone(), |_, (n, b)| {
        let bound = theorem_one(n, b);
        let exact = calculate_permutation(n, b).worst_clf;
        assert!(
            bound.lower <= exact && exact <= bound.upper,
            "bracket violated at n={n} b={b}"
        );
        (bound.lower, exact, bound.upper, bound.is_tight())
    });

    let mut checked = 0usize;
    let mut tight = 0usize;
    let mut rows = Vec::new();
    for (&(n, b), &(lower, exact, upper, is_tight)) in grid.iter().zip(&cells) {
        let regime = if b >= n {
            "b ≥ n ⇒ k = n"
        } else if b == 1 {
            "b = 1 ⇒ k = 1"
        } else if b * b <= n {
            "b² ≤ n ⇒ k = 1"
        } else {
            ""
        };
        checked += 1;
        if is_tight {
            tight += 1;
        }
        println!(
            "{n:>4} {b:>4} {lower:>7} {exact:>7} {upper:>7} {:>7}  {regime}",
            if is_tight { "yes" } else { "" },
        );
        let mut row = Json::object();
        row.push("n", n)
            .push("b", b)
            .push("lower", lower)
            .push("exact", exact)
            .push("upper", upper)
            .push("tight", is_tight);
        rows.push(row);
    }
    println!("\n{checked} (n, b) pairs checked; bounds tight in {tight} of them.");
    println!("Every exact optimum fell inside the reconstructed Theorem-1 bracket.");

    let mut doc = sweep::results_doc("theorem1_validation", rows);
    doc.push("checked", checked).push("tight", tight);
    sweep::write_results("theorem1_validation", &doc);
    espread_bench::write_telemetry_snapshot("theorem1_validation");
}
