//! Linear extensions (topological sorts) of a poset.
//!
//! A **linear extension** maps the poset onto a chain preserving order —
//! "similar to a topological sort of a DAG" (§3.1). Any valid frame
//! transmission order for a dependent stream is a linear extension of its
//! dependency poset with prerequisites first.

use crate::poset::Poset;

impl Poset {
    /// One canonical linear extension: Kahn's algorithm taking the smallest
    /// available element first (deterministic).
    ///
    /// The result lists elements bottom-up: every element appears after all
    /// elements below it.
    pub fn linear_extension(&self) -> Vec<usize> {
        let n = self.len();
        let mut indegree = vec![0usize; n];
        for a in 0..n {
            for &b in self.upper_covers(a) {
                indegree[b] += 1;
            }
        }
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&x| indegree[x] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(u)) = ready.pop() {
            order.push(u);
            for &v in self.upper_covers(u) {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    ready.push(std::cmp::Reverse(v));
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        order
    }

    /// Whether `order` is a linear extension of this poset: a permutation of
    /// `0..len()` in which every element appears after everything below it.
    pub fn is_linear_extension(&self, order: &[usize]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut position = vec![usize::MAX; self.len()];
        for (pos, &a) in order.iter().enumerate() {
            if a >= self.len() || position[a] != usize::MAX {
                return false;
            }
            position[a] = pos;
        }
        for a in 0..self.len() {
            for &b in self.upper_covers(a) {
                if position[a] > position[b] {
                    return false;
                }
            }
        }
        true
    }

    /// Enumerates **all** linear extensions. Exponential: intended for
    /// small posets in tests and exhaustive validation only.
    pub fn all_linear_extensions(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut indegree = vec![0usize; n];
        for a in 0..n {
            for &b in self.upper_covers(a) {
                indegree[b] += 1;
            }
        }
        let mut result = Vec::new();
        let mut current = Vec::with_capacity(n);
        let mut used = vec![false; n];
        fn recurse(
            p: &Poset,
            indegree: &mut [usize],
            used: &mut [bool],
            current: &mut Vec<usize>,
            result: &mut Vec<Vec<usize>>,
        ) {
            if current.len() == p.len() {
                result.push(current.clone());
                return;
            }
            for a in 0..p.len() {
                if !used[a] && indegree[a] == 0 {
                    used[a] = true;
                    current.push(a);
                    for &b in p.upper_covers(a) {
                        indegree[b] -= 1;
                    }
                    recurse(p, indegree, used, current, result);
                    for &b in p.upper_covers(a) {
                        indegree[b] += 1;
                    }
                    current.pop();
                    used[a] = false;
                }
            }
        }
        recurse(self, &mut indegree, &mut used, &mut current, &mut result);
        result
    }

    /// Counts linear extensions without materialising them (still
    /// exponential; small posets only).
    pub fn count_linear_extensions(&self) -> u64 {
        self.all_linear_extensions().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Poset {
        let mut b = Poset::builder(4);
        b.add_relation(0, 1).unwrap();
        b.add_relation(0, 2).unwrap();
        b.add_relation(1, 3).unwrap();
        b.add_relation(2, 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn canonical_extension_is_valid() {
        let p = diamond();
        let ext = p.linear_extension();
        assert!(p.is_linear_extension(&ext));
        assert_eq!(ext, vec![0, 1, 2, 3]); // smallest-first tie-break
    }

    #[test]
    fn validation_rejects_violations() {
        let p = diamond();
        assert!(!p.is_linear_extension(&[1, 0, 2, 3])); // 1 before its prerequisite 0
        assert!(!p.is_linear_extension(&[0, 1, 2])); // wrong length
        assert!(!p.is_linear_extension(&[0, 0, 2, 3])); // repeats
        assert!(!p.is_linear_extension(&[0, 1, 2, 9])); // out of range
        assert!(p.is_linear_extension(&[0, 2, 1, 3]));
    }

    #[test]
    fn diamond_has_two_extensions() {
        let p = diamond();
        let all = p.all_linear_extensions();
        assert_eq!(all.len(), 2);
        for ext in &all {
            assert!(p.is_linear_extension(ext));
        }
        assert_eq!(p.count_linear_extensions(), 2);
    }

    #[test]
    fn antichain_has_factorial_extensions() {
        let p = Poset::antichain(4);
        assert_eq!(p.count_linear_extensions(), 24);
    }

    #[test]
    fn chain_has_one_extension() {
        let p = Poset::chain(5);
        assert_eq!(p.count_linear_extensions(), 1);
        assert_eq!(p.linear_extension(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mirsky_layer_concatenation_is_linear_extension() {
        // The layered transmission order (layers in ascending height,
        // any order inside a layer) must be a linear extension — this is
        // the property §3.3 relies on.
        let p = diamond();
        let mut order = Vec::new();
        for mut layer in p.mirsky_decomposition() {
            layer.reverse(); // any within-layer permutation is fine
            order.extend(layer);
        }
        assert!(p.is_linear_extension(&order));
    }
}
