//! The adaptive error-spreading protocol over **real UDP sockets**.
//!
//! Where `espread-protocol` runs the paper's §4 protocol against a
//! simulated channel, this crate puts the same planner and observation
//! machinery on the wire: a versioned binary codec ([`wire`]), an
//! event-loop multi-session server ([`server`]) whose fixed worker pool
//! drives `poll()`-able session state machines over per-shard timer
//! wheels ([`wheel`]), demuxing by connection id and
//! closing every window with a retried `WindowEnd`/`WindowAck` exchange, a
//! client ([`client`]) that un-permutes, measures per-layer loss bursts,
//! and feeds them back in sequence-numbered ACKs, and a fault-injecting
//! loopback proxy ([`proxy`]) whose seeded Gilbert–Elliott channel makes
//! end-to-end loss realisations reproducible.
//!
//! Everything is `std::net` only — no external dependencies.
//!
//! # Example
//!
//! Stream two buffer windows of Jurassic Park over loopback, losslessly.
//! Every fallible step returns a typed [`NetError`] — the documented
//! entry path propagates with `?` instead of unwrapping:
//!
//! ```
//! use espread_net::{NetClient, NetClientConfig, NetError, NetServer, NetServerConfig};
//! use espread_protocol::{FecPolicy, ProtocolConfig, SessionOffer, StreamSource};
//! use espread_trace::{GopPattern, Movie, MpegTrace};
//!
//! fn stream() -> Result<(), NetError> {
//!     let trace = MpegTrace::new(Movie::JurassicPark, 1);
//!     let offer = SessionOffer {
//!         gop_pattern: GopPattern::gop12(),
//!         gops_per_window: 1,
//!         open_gop: false,
//!         fps: 24,
//!         packet_bytes: 2048,
//!         max_frame_bytes: 62_776 / 8,
//!         fec: FecPolicy::off(),
//!     };
//!     let config = NetServerConfig::new(
//!         ProtocolConfig::paper(0.6, 42),
//!         offer,
//!         StreamSource::mpeg(&trace, 1, 2, false),
//!     );
//!     let mut server = NetServer::bind("127.0.0.1:0", config)?;
//!
//!     let client = NetClient::connect(server.local_addr(), NetClientConfig::default())?;
//!     let report = client.stream()?;
//!     server.shutdown();
//!
//!     assert_eq!(report.windows_completed, 2);
//!     assert_eq!(report.series.summary().mean_clf, 0.0); // nothing lost
//!     Ok(())
//! }
//! stream().expect("loopback stream");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod clientwin;
pub mod error;
pub mod obsrec;
pub mod proxy;
pub mod retry;
pub mod server;
mod session;
mod shard;
mod telem;
pub mod wheel;
pub mod wire;

pub use client::{NetClient, NetClientConfig, NetClientReport};
pub use clientwin::{NetWindow, NetWindowOutcome};
pub use error::NetError;
pub use obsrec::SessionRecorder;
pub use proxy::{FaultPolicy, FaultProxy, ProxyStats};
pub use retry::RetryPolicy;
pub use server::{NetServer, NetServerConfig};
pub use wheel::{Fired, TimerWheel};
pub use wire::{decode, encode, try_encode, try_encode_into, Msg, WireError};
