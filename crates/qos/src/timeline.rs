//! Deriving loss patterns from arrival timing.
//!
//! The continuity metrics treat a *late* LDU like a lost one: an LDU that
//! misses its playout slot contributes a unit loss even if its bits
//! eventually arrive (\[21\] folds timing drift into the same loss
//! accounting). [`PlayoutTimeline`] records per-LDU arrival instants
//! against an [`LduClock`] and renders any window of the stream as the
//! [`LossPattern`] the viewer actually perceives.

use std::collections::HashMap;

use crate::ldu::{LduClock, LduId};
use crate::loss::LossPattern;

/// Per-LDU arrival bookkeeping against an ideal playout clock.
///
/// # Example
///
/// ```
/// use espread_qos::{LduClock, LduId, PlayoutTimeline, StreamSpec};
///
/// // Playout starts at t = 100 ms with 40 ms slots.
/// let clock = LduClock::new(StreamSpec::video(25), 100_000);
/// let mut timeline = PlayoutTimeline::new(clock);
/// timeline.record_arrival(LduId::new(0), 10_000);   // early: plays fine
/// timeline.record_arrival(LduId::new(1), 190_000);  // after its slot: late
/// // LDU 2 never arrives.
///
/// let pattern = timeline.window_pattern(LduId::new(0), 3);
/// assert_eq!(pattern.to_string(), ".XX");
/// ```
#[derive(Debug, Clone)]
pub struct PlayoutTimeline {
    clock: LduClock,
    arrivals: HashMap<u64, u64>,
}

impl PlayoutTimeline {
    /// Creates an empty timeline against `clock`.
    pub fn new(clock: LduClock) -> Self {
        PlayoutTimeline {
            clock,
            arrivals: HashMap::new(),
        }
    }

    /// The clock in use.
    pub fn clock(&self) -> LduClock {
        self.clock
    }

    /// Records that `ldu` became playable at `time_us`. Re-recording keeps
    /// the earliest arrival.
    pub fn record_arrival(&mut self, ldu: LduId, time_us: u64) {
        self.arrivals
            .entry(ldu.index())
            .and_modify(|t| *t = (*t).min(time_us))
            .or_insert(time_us);
    }

    /// Whether `ldu` arrived in time for its ideal playout instant.
    pub fn is_on_time(&self, ldu: LduId) -> bool {
        match self.arrivals.get(&ldu.index()) {
            Some(&arrived) => arrived <= self.clock.ideal_time_us(ldu),
            None => false,
        }
    }

    /// How late `ldu` was, in microseconds (`None` if it never arrived,
    /// `Some(0)` when on time).
    pub fn lateness_us(&self, ldu: LduId) -> Option<u64> {
        self.arrivals
            .get(&ldu.index())
            .map(|&arrived| self.clock.lateness_us(ldu, arrived))
    }

    /// The perceived loss pattern of the window of `len` LDUs starting at
    /// `first`: an LDU is lost when it never arrived **or** arrived after
    /// its playout instant.
    pub fn window_pattern(&self, first: LduId, len: usize) -> LossPattern {
        LossPattern::from_received(
            (0..len as u64).map(|offset| self.is_on_time(LduId::new(first.index() + offset))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldu::StreamSpec;
    use crate::metrics::ContinuityMetrics;

    fn clock() -> LduClock {
        LduClock::new(StreamSpec::video(25), 1_000_000) // slots at 1.0 s + 40 ms·i
    }

    #[test]
    fn on_time_late_and_missing() {
        let mut t = PlayoutTimeline::new(clock());
        t.record_arrival(LduId::new(0), 1_000_000); // exactly on time
        t.record_arrival(LduId::new(1), 1_041_000); // 1 ms late
        assert!(t.is_on_time(LduId::new(0)));
        assert!(!t.is_on_time(LduId::new(1)));
        assert!(!t.is_on_time(LduId::new(2))); // missing
        assert_eq!(t.lateness_us(LduId::new(0)), Some(0));
        assert_eq!(t.lateness_us(LduId::new(1)), Some(1_000));
        assert_eq!(t.lateness_us(LduId::new(2)), None);
    }

    #[test]
    fn earliest_arrival_wins() {
        let mut t = PlayoutTimeline::new(clock());
        t.record_arrival(LduId::new(0), 2_000_000); // late copy first
        t.record_arrival(LduId::new(0), 900_000); // retransmission beat it? keep earliest
        assert!(t.is_on_time(LduId::new(0)));
    }

    #[test]
    fn window_pattern_feeds_metrics() {
        let mut t = PlayoutTimeline::new(clock());
        for i in [0u64, 1, 4, 5] {
            t.record_arrival(LduId::new(i), 1_000_000); // before every slot
        }
        let pattern = t.window_pattern(LduId::new(0), 6);
        assert_eq!(pattern.to_string(), "..XX..");
        let m = ContinuityMetrics::of(&pattern);
        assert_eq!(m.clf(), 2);
        assert_eq!(m.lost(), 2);
    }

    #[test]
    fn windows_can_start_anywhere() {
        let mut t = PlayoutTimeline::new(clock());
        t.record_arrival(LduId::new(10), 1_000_000);
        let pattern = t.window_pattern(LduId::new(9), 3);
        assert_eq!(pattern.to_string(), "X.X");
    }

    #[test]
    fn clock_accessor() {
        let t = PlayoutTimeline::new(clock());
        assert_eq!(t.clock().spec().ldus_per_second(), 25);
    }
}
