//! Overload-protection bench: a capacity-capped server under a wave of
//! twice its admission cap.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin net_overload -- [--wave N]
//! ```
//!
//! The server admits at most [`CAP`] concurrent sessions and refuses the
//! rest with typed `Busy` replies; every client in the wave honours the
//! retry-after hint (with jitter, on a fresh nonce) until it gets in.
//! The server's pacing is set deliberately beyond what one shard can
//! sustain, so its perception-ordered shedder runs hot: enhancement
//! frames are dropped to pay down pacing debt while critical frames are
//! never shed — the bench recomputes the negotiated critical set
//! client-side and **fails** if any completed session lost one.
//!
//! The artifact `results/net_overload.json` carries the gate metric
//! (`sessions_per_sec`: wave size over wall-clock, Busy waits included)
//! plus the overload counters (Busy refusals, sheds, reap totals) and
//! window-RTT percentiles. CI compares the throughput against the
//! committed `BENCH_overload.json` via `scripts/check_bench_overload.sh`
//! and greps this binary's stdout for the two hard invariants:
//! `critical frames lost        0` and `sessions leaked           0`.
//! Timing-derived numbers are host-dependent, so the artifact is not
//! part of the determinism surface.

use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use espread_bench::sweep;
use espread_exec::Json;
use espread_net::{NetClient, NetClientConfig, NetError, NetServer, NetServerConfig, RetryPolicy};
use espread_protocol::{
    negotiate, ClientCapabilities, FecPolicy, ProtocolConfig, SessionOffer, StreamSource,
};
use espread_trace::{GopPattern, Movie, MpegTrace};

/// The admission cap under test; the wave is twice this.
const CAP: usize = 50;
/// Short streams keep the bench about admission churn, not bytes.
const WINDOWS: usize = 3;
/// Two GOPs per window puts each window well past one 64-datagram pump
/// batch, so a window spans several timer fires — a precondition for
/// pacing debt to be visible at all.
const GOPS_PER_WINDOW: usize = 2;
/// One shard: the shedder only matters when the send loop cannot keep
/// up, and a single overloaded shard is the cleanest way to stay there.
const WORKERS: usize = 1;
/// A pace the shard cannot possibly sustain: the timer wheel ticks at
/// 1 ms and a session sends at most 64 datagrams per fire, so a window
/// wider than one batch always falls at least a full tick behind a
/// 2 us/datagram schedule.
const PACE: Duration = Duration::from_micros(2);
/// Debt threshold for shedding enhancement frames — under one wheel
/// tick, so the forced wait between pump batches is already over it.
const SHED_LAG: Duration = Duration::from_micros(900);
/// The server's own honest estimate of when capacity frees up.
const BUSY_RETRY_AFTER: Duration = Duration::from_millis(150);

fn wave_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--wave")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--wave takes a client count")
        })
        .unwrap_or(2 * CAP)
}

/// What one wave client brings home. Failures travel as data: a panic
/// inside `thread::scope` would strand the gauge sampler.
enum Outcome {
    /// Completed all windows; carries the count of critical frames the
    /// client's playout lost (must be zero).
    Done { critical_lost: usize },
    /// The server said Busy and the retry budget ran out — a typed,
    /// legitimate refusal under overload.
    Busy,
    /// Anything else is a bench failure.
    Failed(String),
}

fn run_client(server: std::net::SocketAddr, critical: &[usize], release: &Barrier) -> Outcome {
    release.wait();
    let config = NetClientConfig {
        recovery: true,
        // Wide enough to ride out several Busy waits while the first
        // admitted wave drains.
        retry: RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(50),
            max: Duration::from_secs(1),
        },
        deadline: Duration::from_secs(60),
        ..NetClientConfig::default()
    };
    match NetClient::connect(server, config).and_then(|client| client.stream()) {
        Ok(report) => {
            if report.windows_completed != WINDOWS {
                return Outcome::Failed(format!(
                    "completed {}/{WINDOWS} windows without a typed error",
                    report.windows_completed
                ));
            }
            let critical_lost = report
                .patterns
                .iter()
                .map(|p| critical.iter().filter(|&&f| p.is_lost(f)).count())
                .sum();
            Outcome::Done { critical_lost }
        }
        Err(NetError::ServerBusy { .. }) => Outcome::Busy,
        Err(e) => Outcome::Failed(format!("stream: {e}")),
    }
}

/// Overload counters from the global registry, zeros without telemetry.
fn overload_counters() -> (u64, u64, u64, u64, u64) {
    #[cfg(feature = "telemetry")]
    {
        let snapshot = espread_telemetry::global().snapshot();
        let c = |name: &str| snapshot.counter(name).unwrap_or(0);
        (
            c("net.server.busy_rejections"),
            c("net.server.shed_enhancement"),
            c("net.server.shed_stale_retx"),
            c("net.server.watchdog_terminations"),
            c("net.server.sessions_reaped"),
        )
    }
    #[cfg(not(feature = "telemetry"))]
    (0, 0, 0, 0, 0)
}

/// `(count, p50, p99, max)` of the server's window-RTT histogram.
#[cfg(feature = "telemetry")]
fn rtt_summary() -> (u64, u64, u64, u64) {
    let snapshot = espread_telemetry::global().snapshot();
    let Some(h) = snapshot.histogram("net.server.rtt_us") else {
        return (0, 0, 0, 0);
    };
    let percentile = |q: f64| -> u64 {
        let rank = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
        let mut seen = 0;
        for &(bound, n) in &h.buckets {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        h.max
    };
    (h.count, percentile(0.50), percentile(0.99), h.max)
}

#[cfg(not(feature = "telemetry"))]
fn rtt_summary() -> (u64, u64, u64, u64) {
    (0, 0, 0, 0)
}

fn main() {
    // Accepted for script uniformity; concurrency is the wave itself.
    let _ = sweep::jobs_from_args();
    let wave = wave_from_args();
    assert!(wave > 0, "--wave must be positive");

    let trace = MpegTrace::new(Movie::JurassicPark, 1);
    let offer = SessionOffer {
        gop_pattern: GopPattern::gop12(),
        gops_per_window: GOPS_PER_WINDOW,
        open_gop: false,
        fps: 24,
        packet_bytes: 2048,
        max_frame_bytes: 62_776 / 8,
        fec: FecPolicy::off(),
    };
    // The same negotiation both endpoints run — the playout indices the
    // shedder must never touch.
    let critical = negotiate(offer.clone(), ClientCapabilities::desktop())
        .expect("bench offer negotiates")
        .critical_frames;
    let mut config = NetServerConfig::new(
        ProtocolConfig::paper(0.6, 1),
        offer,
        StreamSource::mpeg(&trace, GOPS_PER_WINDOW, WINDOWS, false),
    );
    config.workers = WORKERS;
    config.handshake_cap = wave.max(256);
    config.pace = PACE;
    config.max_sessions = CAP;
    config.busy_retry_after = BUSY_RETRY_AFTER;
    config.shed_lag = SHED_LAG;
    config.watchdog = Duration::from_secs(2);
    let mut server = NetServer::bind("127.0.0.1:0", config).expect("bind server");
    let server_addr = server.local_addr();

    println!(
        "net_overload: a {wave}-client wave against an admission cap of {CAP} \
         ({WINDOWS} windows x {GOPS_PER_WINDOW} GOP each, {WORKERS} worker, \
         pace {}us, shed lag {}us)\n",
        PACE.as_micros(),
        SHED_LAG.as_micros()
    );

    let release = Arc::new(Barrier::new(wave + 1));
    let done = AtomicBool::new(false);
    let server_ref = &server;
    let critical_ref = critical.as_slice();
    let (outcomes, elapsed, peak_live) = thread::scope(|scope| {
        let mut joins = Vec::with_capacity(wave);
        for i in 0..wave {
            let release = Arc::clone(&release);
            joins.push(
                thread::Builder::new()
                    .name(format!("overload-{i}"))
                    .stack_size(512 * 1024)
                    .spawn_scoped(scope, move || {
                        run_client(server_addr, critical_ref, &release)
                    })
                    .expect("spawn client thread"),
            );
        }
        release.wait();
        let started = Instant::now();
        let done = &done;
        let sampler = scope.spawn(move || {
            let mut peak = 0usize;
            while !done.load(AtomicOrdering::Relaxed) {
                peak = peak.max(server_ref.live_sessions());
                thread::sleep(Duration::from_micros(500));
            }
            peak
        });
        let mut outcomes = Vec::with_capacity(wave);
        for join in joins {
            outcomes.push(join.join());
        }
        let elapsed = started.elapsed();
        done.store(true, AtomicOrdering::Relaxed);
        let peak = sampler.join().expect("sampler thread panicked");
        let outcomes = outcomes
            .into_iter()
            .map(|j| j.expect("client thread panicked"))
            .collect::<Vec<_>>();
        (outcomes, elapsed, peak)
    });

    // Every admitted session must end typed and be reaped.
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while server.live_sessions() > 0 && Instant::now() < drain_deadline {
        thread::sleep(Duration::from_millis(1));
    }
    let leaked = server.live_sessions();
    server.shutdown();

    let mut completed = 0usize;
    let mut rejected = 0usize;
    let mut critical_lost = 0usize;
    let mut failures = Vec::new();
    for outcome in &outcomes {
        match outcome {
            Outcome::Done { critical_lost: c } => {
                completed += 1;
                critical_lost += c;
            }
            Outcome::Busy => rejected += 1,
            Outcome::Failed(e) => failures.push(e.clone()),
        }
    }
    for failure in failures.iter().take(5) {
        eprintln!("session failure: {failure}");
    }
    let admitted = wave - rejected;
    let (busy_rejections, shed_enhancement, shed_stale_retx, watchdog_terminations, reaped) =
        overload_counters();

    assert!(failures.is_empty(), "{} untyped failures", failures.len());
    assert_eq!(
        completed, admitted,
        "every admitted session must complete; the rest must be typed Busy"
    );
    assert!(
        peak_live <= CAP,
        "live sessions peaked at {peak_live}, above the cap {CAP}"
    );
    assert_eq!(leaked, 0, "{leaked} sessions never reaped after the wave");
    assert_eq!(critical_lost, 0, "critical frames lost under overload");
    #[cfg(feature = "telemetry")]
    {
        assert!(
            shed_enhancement > 0,
            "an unsustainable pace must shed enhancement frames"
        );
        assert!(
            busy_rejections > 0,
            "a wave of twice the cap must draw Busy refusals"
        );
    }

    let rate = wave as f64 / elapsed.as_secs_f64();
    let (rtt_samples, rtt_p50, rtt_p99, rtt_max) = rtt_summary();
    println!(
        "{:<28}{:>10}\n{:<28}{:>10}\n{:<28}{:>10}\n{:<28}{:>10}\n{:<28}{:>10}\n\
         {:<28}{:>10}\n{:<28}{:>10}\n{:<28}{:>10}\n{:<28}{:>10}\n{:<28}{:>10}\n\
         {:<28}{:>10.3}\n{:<28}{:>10.1}\n{:<28}{:>10}\n{:<28}{:>10}",
        "wave size",
        wave,
        "admitted",
        admitted,
        "completed",
        completed,
        "rejected (typed Busy)",
        rejected,
        "busy refusals (server)",
        busy_rejections,
        "enhancement frames shed",
        shed_enhancement,
        "stale retransmits shed",
        shed_stale_retx,
        "watchdog terminations",
        watchdog_terminations,
        "critical frames lost",
        critical_lost,
        "sessions leaked",
        leaked,
        "wave wall-clock (s)",
        elapsed.as_secs_f64(),
        "sessions/sec",
        rate,
        "peak live sessions",
        peak_live,
        "window RTT p99 (us)",
        rtt_p99,
    );

    let mut doc = Json::object();
    doc.push("experiment", "net_overload")
        .push("cap", CAP)
        .push("wave", wave)
        .push("windows_per_session", WINDOWS)
        .push("workers", WORKERS)
        .push("admitted", admitted)
        .push("completed", completed)
        .push("rejected_busy", rejected)
        .push("busy_rejections", busy_rejections)
        .push("shed_enhancement", shed_enhancement)
        .push("shed_stale_retx", shed_stale_retx)
        .push("watchdog_terminations", watchdog_terminations)
        .push("critical_frames_lost", critical_lost)
        .push("sessions_reaped", reaped)
        .push("peak_live", peak_live)
        .push("elapsed_s", elapsed.as_secs_f64())
        .push("sessions_per_sec", rate)
        .push("rtt_us_samples", rtt_samples)
        .push("rtt_us_p50", rtt_p50)
        .push("rtt_us_p99", rtt_p99)
        .push("rtt_us_max", rtt_max);
    sweep::write_results("net_overload", &doc);
    espread_bench::write_telemetry_snapshot("net_overload");
}
