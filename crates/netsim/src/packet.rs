//! Datagrams carried by the simulated network.

use std::fmt;

use crate::time::SimTime;

/// A datagram in flight: an opaque payload plus wire metadata.
///
/// The simulator never inspects `payload`; protocols define their own
/// payload types (data fragments, ACKs, FEC repair packets, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<T> {
    /// Monotone per-sender sequence number, assigned by the sender.
    pub seq: u64,
    /// Wire size in bytes (headers included), driving serialisation delay.
    pub size_bytes: u32,
    /// Time the sender handed the packet to the link.
    pub sent_at: SimTime,
    /// Protocol payload.
    pub payload: T,
}

impl<T> Packet<T> {
    /// Creates a packet.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero (every real datagram has headers).
    pub fn new(seq: u64, size_bytes: u32, sent_at: SimTime, payload: T) -> Self {
        assert!(size_bytes > 0, "packet size must be positive");
        Packet {
            seq,
            size_bytes,
            sent_at,
            payload,
        }
    }

    /// Maps the payload, keeping wire metadata.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Packet<U> {
        Packet {
            seq: self.seq,
            size_bytes: self.size_bytes,
            sent_at: self.sent_at,
            payload: f(self.payload),
        }
    }
}

impl<T> fmt::Display for Packet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pkt#{} ({} B, {})",
            self.seq, self.size_bytes, self.sent_at
        )
    }
}

/// A packet that arrived at the receiver, with its delivery time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<T> {
    /// The time the last bit arrived at the receiver.
    pub arrived_at: SimTime,
    /// The packet itself.
    pub packet: Packet<T>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_map() {
        let p = Packet::new(7, 2048, SimTime::from_micros(5), "frame 3");
        assert_eq!(p.seq, 7);
        let q = p.map(|s| s.len());
        assert_eq!(q.payload, 7);
        assert_eq!(q.size_bytes, 2048);
        assert_eq!(q.sent_at, SimTime::from_micros(5));
    }

    #[test]
    #[should_panic(expected = "packet size must be positive")]
    fn zero_size_rejected() {
        let _ = Packet::new(0, 0, SimTime::ZERO, ());
    }

    #[test]
    fn display_includes_seq_and_size() {
        let p = Packet::new(3, 100, SimTime::ZERO, ());
        let text = p.to_string();
        assert!(text.contains("pkt#3"));
        assert!(text.contains("100 B"));
    }
}
