//! Continuous-media workload generation for the error-spreading evaluation.
//!
//! The paper streams MPEG-1 video (the UMass *Jurassic Park* trace, GOP 12)
//! and SunAudio; this crate generates both kinds of workload:
//!
//! * [`GopPattern`] — display-order GOP structures and their **dependency
//!   posets** (the paper's Fig. 2), open- or closed-GOP;
//! * [`MpegTrace`] — deterministic synthetic MPEG traces calibrated to the
//!   per-movie maximum GOP sizes quoted in §4.1 (the original UMass traces
//!   are no longer available; see `DESIGN.md` §2.3 for the substitution
//!   argument);
//! * [`AudioStream`] — the dependency-free constant-bitrate audio case;
//! * [`TraceStats`] — workload summaries for calibration and reporting.
//!
//! # Example
//!
//! ```
//! use espread_trace::{GopPattern, Movie, MpegTrace};
//!
//! let trace = MpegTrace::new(Movie::JurassicPark, 1);
//! let window = trace.gops(2); // a 2-GOP sender buffer, W=2
//! assert_eq!(window.len(), 24);
//!
//! let poset = GopPattern::gop12().dependency_poset(2, true);
//! assert_eq!(poset.height(), 5); // layers: I, P1, P2, P3, B
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audio;
pub mod frame;
pub mod gop;
pub mod io;
pub mod mpeg;
pub mod stats;

pub use audio::{AudioLdu, AudioStream, BYTES_PER_LDU, SAMPLES_PER_LDU};
pub use frame::{Frame, FrameType};
pub use gop::{GopPattern, GopPatternError};
pub use io::{read_trace, write_trace, TraceParseError};
pub use mpeg::{Movie, MpegTrace};
pub use stats::{TraceStats, TypeStats};
