//! Logical data units (LDUs) and their ideal playout timing.
//!
//! The uniform framework of Steinmetz & Blakowski (reference \[22\]) views a
//! CM stream as a sequence of LDUs, each with an ideal playout slot. The
//! paper fixes a video LDU to one frame and an audio LDU to 266 samples of
//! 8-bit 8 kHz SunAudio — the amount of audio played in one video-frame time
//! (1/30 s).

use std::fmt;

/// Samples per audio LDU: 8000 Hz / 30 fps ≈ 266 samples (paper §2.1).
pub const AUDIO_SAMPLES_PER_LDU: u32 = 266;

/// Audio sample rate assumed by the paper (SunAudio: 8-bit, 8 kHz).
pub const AUDIO_SAMPLE_RATE_HZ: u32 = 8_000;

/// Identifier of an LDU within a stream: its position in playout order.
///
/// `LduId` is a zero-based index. It orders LDUs by their ideal appearance
/// time, which is what "consecutive" means in the consecutive-loss metric.
///
/// # Example
///
/// ```
/// use espread_qos::LduId;
/// let a = LduId::new(3);
/// let b = LduId::new(4);
/// assert!(a.is_predecessor_of(b));
/// assert_eq!(b.index(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LduId(u64);

impl LduId {
    /// Creates an LDU identifier from a zero-based playout index.
    pub fn new(index: u64) -> Self {
        LduId(index)
    }

    /// Returns the zero-based playout index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// Returns the LDU immediately following this one in playout order.
    pub fn next(self) -> Self {
        LduId(self.0 + 1)
    }

    /// Returns `true` when `self` plays out immediately before `other`.
    pub fn is_predecessor_of(self, other: LduId) -> bool {
        self.0 + 1 == other.0
    }
}

impl fmt::Display for LduId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ldu#{}", self.0)
    }
}

impl From<u64> for LduId {
    fn from(index: u64) -> Self {
        LduId(index)
    }
}

/// The kind of medium carried by a stream.
///
/// The distinction matters for perceptual tolerances (video tolerates a CLF
/// of about 2, audio about 3 — paper §2.1) and for LDU sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaKind {
    /// A video stream; one LDU per frame.
    Video,
    /// An audio stream; one LDU per [`AUDIO_SAMPLES_PER_LDU`] samples.
    Audio,
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaKind::Video => f.write_str("video"),
            MediaKind::Audio => f.write_str("audio"),
        }
    }
}

/// Static description of a CM stream: its medium and LDU rate.
///
/// # Example
///
/// ```
/// use espread_qos::{MediaKind, StreamSpec};
///
/// let video = StreamSpec::video(30);
/// assert_eq!(video.kind(), MediaKind::Video);
/// assert_eq!(video.ldu_duration_us(), 33_333);
///
/// let audio = StreamSpec::sun_audio();
/// assert_eq!(audio.ldus_per_second(), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamSpec {
    kind: MediaKind,
    ldus_per_second: u32,
}

impl StreamSpec {
    /// Describes a video stream at `fps` frames (LDUs) per second.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is zero.
    pub fn video(fps: u32) -> Self {
        assert!(fps > 0, "frame rate must be positive");
        StreamSpec {
            kind: MediaKind::Video,
            ldus_per_second: fps,
        }
    }

    /// Describes an audio stream at `ldus_per_second` LDUs per second.
    ///
    /// # Panics
    ///
    /// Panics if `ldus_per_second` is zero.
    pub fn audio(ldus_per_second: u32) -> Self {
        assert!(ldus_per_second > 0, "LDU rate must be positive");
        StreamSpec {
            kind: MediaKind::Audio,
            ldus_per_second,
        }
    }

    /// The paper's audio configuration: 8 kHz SunAudio packaged as 266-sample
    /// LDUs, i.e. 30 LDUs per second.
    pub fn sun_audio() -> Self {
        Self::audio(AUDIO_SAMPLE_RATE_HZ / AUDIO_SAMPLES_PER_LDU)
    }

    /// Returns the medium of this stream.
    pub fn kind(self) -> MediaKind {
        self.kind
    }

    /// Returns the LDU rate in LDUs per second.
    pub fn ldus_per_second(self) -> u32 {
        self.ldus_per_second
    }

    /// Returns the ideal duration of one LDU slot, in microseconds
    /// (truncated).
    pub fn ldu_duration_us(self) -> u64 {
        1_000_000 / u64::from(self.ldus_per_second)
    }
}

/// Maps LDU indices to ideal playout times and back.
///
/// The clock anchors LDU 0 at `start_us` and spaces subsequent LDUs at the
/// stream's ideal slot duration. It answers the two questions continuity
/// accounting needs: *when should LDU i appear?* and *which slot does time t
/// fall into?*
///
/// # Example
///
/// ```
/// use espread_qos::{LduClock, LduId, StreamSpec};
///
/// let clock = LduClock::new(StreamSpec::video(30), 1_000_000);
/// assert_eq!(clock.ideal_time_us(LduId::new(0)), 1_000_000);
/// assert_eq!(clock.ideal_time_us(LduId::new(30)), 1_999_990);
/// assert_eq!(clock.slot_at(1_050_000), LduId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LduClock {
    spec: StreamSpec,
    start_us: u64,
}

impl LduClock {
    /// Creates a clock for `spec` with LDU 0 ideally appearing at
    /// `start_us` microseconds.
    pub fn new(spec: StreamSpec, start_us: u64) -> Self {
        LduClock { spec, start_us }
    }

    /// Returns the stream specification this clock follows.
    pub fn spec(self) -> StreamSpec {
        self.spec
    }

    /// The ideal appearance time of `ldu`, in microseconds.
    pub fn ideal_time_us(self, ldu: LduId) -> u64 {
        self.start_us + ldu.index() * self.spec.ldu_duration_us()
    }

    /// The LDU slot that the instant `time_us` falls into.
    ///
    /// Times earlier than the stream start map to slot 0.
    pub fn slot_at(self, time_us: u64) -> LduId {
        let elapsed = time_us.saturating_sub(self.start_us);
        LduId::new(elapsed / self.spec.ldu_duration_us())
    }

    /// How late `actual_us` is relative to `ldu`'s ideal slot start, in
    /// microseconds; `0` when on time or early.
    pub fn lateness_us(self, ldu: LduId, actual_us: u64) -> u64 {
        actual_us.saturating_sub(self.ideal_time_us(ldu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ldu_id_ordering_and_succession() {
        let a = LduId::new(7);
        assert_eq!(a.next(), LduId::new(8));
        assert!(a.is_predecessor_of(a.next()));
        assert!(!a.is_predecessor_of(LduId::new(9)));
        assert!(!a.is_predecessor_of(a));
        assert!(LduId::new(1) < LduId::new(2));
    }

    #[test]
    fn ldu_id_display_and_from() {
        assert_eq!(LduId::from(5).to_string(), "ldu#5");
        assert_eq!(LduId::default(), LduId::new(0));
    }

    #[test]
    fn video_spec_durations() {
        assert_eq!(StreamSpec::video(30).ldu_duration_us(), 33_333);
        assert_eq!(StreamSpec::video(24).ldu_duration_us(), 41_666);
        assert_eq!(StreamSpec::video(25).ldu_duration_us(), 40_000);
    }

    #[test]
    fn sun_audio_matches_paper_footnote() {
        // 8000/266 = 30 LDUs per second, i.e. one video-frame time each.
        let spec = StreamSpec::sun_audio();
        assert_eq!(spec.kind(), MediaKind::Audio);
        assert_eq!(spec.ldus_per_second(), 30);
    }

    #[test]
    #[should_panic(expected = "frame rate must be positive")]
    fn zero_fps_rejected() {
        let _ = StreamSpec::video(0);
    }

    #[test]
    #[should_panic(expected = "LDU rate must be positive")]
    fn zero_audio_rate_rejected() {
        let _ = StreamSpec::audio(0);
    }

    #[test]
    fn clock_round_trip() {
        let clock = LduClock::new(StreamSpec::video(25), 500);
        for i in 0..100 {
            let ldu = LduId::new(i);
            let t = clock.ideal_time_us(ldu);
            assert_eq!(clock.slot_at(t), ldu);
            // Any instant strictly inside the slot maps back to it.
            assert_eq!(clock.slot_at(t + 39_999), ldu);
        }
    }

    #[test]
    fn clock_before_start_clamps_to_zero() {
        let clock = LduClock::new(StreamSpec::video(30), 1_000);
        assert_eq!(clock.slot_at(0), LduId::new(0));
    }

    #[test]
    fn lateness_is_saturating() {
        let clock = LduClock::new(StreamSpec::video(30), 0);
        let ldu = LduId::new(3);
        let ideal = clock.ideal_time_us(ldu);
        assert_eq!(clock.lateness_us(ldu, ideal), 0);
        assert_eq!(clock.lateness_us(ldu, ideal - 10), 0);
        assert_eq!(clock.lateness_us(ldu, ideal + 10), 10);
    }

    #[test]
    fn media_kind_display() {
        assert_eq!(MediaKind::Video.to_string(), "video");
        assert_eq!(MediaKind::Audio.to_string(), "audio");
    }
}
