//! Hand-rolled JSON fragments (the crate is dependency-free by design).

use std::fmt::Write as _;

/// Escapes and quotes a string for JSON.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f64 as a JSON number (`null` for non-finite values).
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Writes `[a,b,c]` of f64s.
pub(crate) fn write_f64_array(out: &mut String, vs: &[f64]) {
    out.push('[');
    for (i, &v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(out, v);
    }
    out.push(']');
}

/// Writes `[a,b,c]` of usizes.
pub(crate) fn write_usize_array(out: &mut String, vs: &[usize]) {
    out.push('[');
    for (i, &v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64_array(&mut out, &[1.5, f64::NAN, f64::INFINITY]);
        assert_eq!(out, "[1.5,null,null]");
    }
}
