//! Per-buffer-window metric series and their summary statistics.
//!
//! The paper's evaluation (§5.2, Fig. 8) reports the CLF of each of 100
//! consecutive buffer windows together with its **mean** and **deviation**
//! for the scrambled and unscrambled schemes. [`WindowSeries`] accumulates
//! one [`ContinuityMetrics`] per window and produces exactly those
//! statistics.

use std::fmt;

use crate::metrics::ContinuityMetrics;

/// Accumulates continuity metrics over consecutive buffer windows.
///
/// # Example
///
/// ```
/// use espread_qos::{ContinuityMetrics, LossPattern, WindowSeries};
///
/// let mut series = WindowSeries::new();
/// for lost in [vec![1, 2], vec![], vec![7]] {
///     let pattern = LossPattern::from_lost_indices(24, lost);
///     series.push(ContinuityMetrics::of(&pattern));
/// }
/// let summary = series.summary();
/// assert_eq!(summary.windows, 3);
/// assert!((summary.mean_clf - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSeries {
    windows: Vec<ContinuityMetrics>,
}

impl WindowSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the metrics of the next buffer window.
    pub fn push(&mut self, metrics: ContinuityMetrics) {
        self.windows.push(metrics);
    }

    /// Number of windows recorded so far.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Returns `true` when no windows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The recorded windows, in order.
    pub fn windows(&self) -> &[ContinuityMetrics] {
        &self.windows
    }

    /// Iterates over the per-window CLF values, in order.
    pub fn clf_values(&self) -> impl Iterator<Item = usize> + '_ {
        self.windows.iter().map(|m| m.clf())
    }

    /// Iterates over the per-window ALF fractions, in order.
    pub fn alf_values(&self) -> impl Iterator<Item = f64> + '_ {
        self.windows.iter().map(|m| m.alf().as_f64())
    }

    /// Summarises the series the way the paper's figures do: mean and
    /// (population) standard deviation of the per-window CLF, plus aggregate
    /// loss statistics.
    pub fn summary(&self) -> WindowSummary {
        let n = self.windows.len();
        if n == 0 {
            return WindowSummary::default();
        }
        let nf = n as f64;
        let mean_clf = self.clf_values().sum::<usize>() as f64 / nf;
        let var_clf = self
            .clf_values()
            .map(|c| {
                let d = c as f64 - mean_clf;
                d * d
            })
            .sum::<f64>()
            / nf;
        let mean_alf = self.alf_values().sum::<f64>() / nf;
        let max_clf = self.clf_values().max().unwrap_or(0);
        let total_lost: usize = self.windows.iter().map(|m| m.lost()).sum();
        let total_slots: usize = self.windows.iter().map(|m| m.window_len()).sum();
        WindowSummary {
            windows: n,
            mean_clf,
            dev_clf: var_clf.sqrt(),
            max_clf,
            mean_alf,
            total_lost,
            total_slots,
        }
    }

    /// Fraction of windows whose CLF is at or below `threshold`.
    ///
    /// Fig. 11's headline claim is that the spread scheme "often keeps CLF
    /// at or below 2, the threshold for a perceptually acceptable video
    /// stream"; this is the statistic that checks it.
    pub fn fraction_within_clf(&self, threshold: usize) -> f64 {
        if self.windows.is_empty() {
            return 1.0;
        }
        let ok = self.clf_values().filter(|&c| c <= threshold).count();
        ok as f64 / self.windows.len() as f64
    }
}

impl FromIterator<ContinuityMetrics> for WindowSeries {
    fn from_iter<I: IntoIterator<Item = ContinuityMetrics>>(iter: I) -> Self {
        WindowSeries {
            windows: iter.into_iter().collect(),
        }
    }
}

impl Extend<ContinuityMetrics> for WindowSeries {
    fn extend<I: IntoIterator<Item = ContinuityMetrics>>(&mut self, iter: I) {
        self.windows.extend(iter);
    }
}

/// Summary statistics of a [`WindowSeries`], matching the paper's reporting.
///
/// Fig. 8 reports e.g. "Un Scrambled Mean 1.71, Dev 0.92 / Scrambled Mean
/// 1.46, Dev 0.56" — `mean_clf` and `dev_clf` here.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowSummary {
    /// Number of buffer windows in the series.
    pub windows: usize,
    /// Mean of the per-window CLF.
    pub mean_clf: f64,
    /// Population standard deviation of the per-window CLF.
    pub dev_clf: f64,
    /// Largest per-window CLF observed.
    pub max_clf: usize,
    /// Mean of the per-window ALF fractions.
    pub mean_alf: f64,
    /// Total unit losses across all windows.
    pub total_lost: usize,
    /// Total slots across all windows.
    pub total_slots: usize,
}

impl WindowSummary {
    /// Overall loss fraction across the whole series.
    pub fn overall_alf(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            self.total_lost as f64 / self.total_slots as f64
        }
    }
}

impl fmt::Display for WindowSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} windows: CLF mean {:.2} dev {:.2} max {}, ALF mean {:.3}",
            self.windows, self.mean_clf, self.dev_clf, self.max_clf, self.mean_alf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossPattern;

    fn metrics(len: usize, lost: &[usize]) -> ContinuityMetrics {
        ContinuityMetrics::of(&LossPattern::from_lost_indices(len, lost.iter().copied()))
    }

    #[test]
    fn empty_series_summary_is_zeroed() {
        let s = WindowSeries::new();
        assert!(s.is_empty());
        let summary = s.summary();
        assert_eq!(summary.windows, 0);
        assert_eq!(summary.mean_clf, 0.0);
        assert_eq!(summary.overall_alf(), 0.0);
        assert_eq!(s.fraction_within_clf(0), 1.0);
    }

    #[test]
    fn mean_and_deviation() {
        let mut s = WindowSeries::new();
        // CLFs: 2, 0, 4 → mean 2, population variance (4+4+0)/3, dev sqrt(8/3)
        s.push(metrics(10, &[0, 1]));
        s.push(metrics(10, &[]));
        s.push(metrics(10, &[3, 4, 5, 6]));
        let summary = s.summary();
        assert_eq!(summary.windows, 3);
        assert!((summary.mean_clf - 2.0).abs() < 1e-12);
        assert!((summary.dev_clf - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(summary.max_clf, 4);
        assert_eq!(summary.total_lost, 6);
        assert_eq!(summary.total_slots, 30);
        assert!((summary.overall_alf() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fraction_within_threshold() {
        let s: WindowSeries = [
            metrics(10, &[0]),
            metrics(10, &[0, 1, 2]),
            metrics(10, &[5]),
            metrics(10, &[]),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.fraction_within_clf(2), 0.75);
        assert_eq!(s.fraction_within_clf(0), 0.25);
        assert_eq!(s.fraction_within_clf(3), 1.0);
    }

    #[test]
    fn series_accessors() {
        let mut s = WindowSeries::new();
        s.extend([metrics(5, &[1]), metrics(5, &[2, 3])]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.clf_values().collect::<Vec<_>>(), vec![1, 2]);
        let alfs: Vec<f64> = s.alf_values().collect();
        assert!((alfs[0] - 0.2).abs() < 1e-12);
        assert!((alfs[1] - 0.4).abs() < 1e-12);
        assert_eq!(s.windows().len(), 2);
    }

    #[test]
    fn summary_display_mentions_all_parts() {
        let s: WindowSeries = [metrics(10, &[0, 1])].into_iter().collect();
        let text = s.summary().to_string();
        assert!(text.contains("1 windows"));
        assert!(text.contains("CLF mean 2.00"));
    }
}
