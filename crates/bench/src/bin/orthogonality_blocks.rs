//! Figure 4 / §4.3 — error spreading as an orthogonal dimension.
//!
//! Runs all six blocks of the paper's error-handling taxonomy on matched
//! channel realisations:
//!
//! | | no redundancy | feedback/retransmit | inbuilt FEC |
//! |---|---|---|---|
//! | **classical order** | A | B | C |
//! | **error spreading**  | D | E | F |
//!
//! ```sh
//! cargo run --release -p espread-bench --bin orthogonality_blocks -- --jobs 4
//! ```

use espread_bench::{mean, paper_source, sweep};
use espread_exec::Json;
use espread_protocol::{Ordering, ProtocolConfig, Recovery, Session};

const SEEDS: [u64; 5] = [7, 8, 9, 10, 11];

fn main() {
    println!("Fig. 4 blocks on matched channels (Pbad=0.7, 60 windows, 5 seeds)\n");
    let blocks: [(&str, Ordering, Recovery); 6] = [
        ("A  classical, none", Ordering::InOrder, Recovery::None),
        (
            "B  classical, retransmit",
            Ordering::InOrder,
            Recovery::Retransmit,
        ),
        (
            "C  classical, FEC k=4",
            Ordering::InOrder,
            Recovery::Fec { group: 4 },
        ),
        ("D  spread,    none", Ordering::spread(), Recovery::None),
        (
            "E  spread,    retransmit",
            Ordering::spread(),
            Recovery::Retransmit,
        ),
        (
            "F  spread,    FEC k=4",
            Ordering::spread(),
            Recovery::Fec { group: 4 },
        ),
    ];

    println!(
        "{:<26} {:>9} {:>8} {:>9} {:>12}",
        "block", "mean CLF", "dev", "mean ALF", "bytes"
    );

    let grid: Vec<(Ordering, Recovery, u64)> = blocks
        .iter()
        .flat_map(|&(_, ordering, recovery)| {
            SEEDS
                .into_iter()
                .map(move |seed| (ordering, recovery, seed))
        })
        .collect();
    let cells =
        sweep::executor("orthogonality_blocks").run(grid, |_, (ordering, recovery, seed)| {
            let cfg = ProtocolConfig::paper(0.7, seed)
                .with_ordering(ordering)
                .with_recovery(recovery);
            let report = Session::new(cfg, paper_source(2, 60, 1)).run();
            let s = report.summary();
            (
                s.mean_clf,
                s.dev_clf,
                s.mean_alf,
                report.bytes_offered as f64,
            )
        });

    let mut rows = Vec::new();
    let mut results: Vec<(&str, f64)> = Vec::new();
    for (i, (name, _, _)) in blocks.into_iter().enumerate() {
        let per_seed = &cells[i * SEEDS.len()..(i + 1) * SEEDS.len()];
        let clf = mean(&per_seed.iter().map(|c| c.0).collect::<Vec<_>>());
        let dev = mean(&per_seed.iter().map(|c| c.1).collect::<Vec<_>>());
        let alf = mean(&per_seed.iter().map(|c| c.2).collect::<Vec<_>>());
        let bytes = mean(&per_seed.iter().map(|c| c.3).collect::<Vec<_>>());
        println!("{name:<26} {clf:>9.2} {dev:>8.2} {alf:>9.3} {bytes:>12.0}");
        results.push((name, clf));
        let mut row = Json::object();
        row.push("block", name)
            .push("mean_clf", clf)
            .push("dev_clf", dev)
            .push("mean_alf", alf)
            .push("mean_bytes", bytes);
        rows.push(row);
    }

    let clf = |letter: char| {
        results
            .iter()
            .find(|(n, _)| n.starts_with(letter))
            .map(|(_, v)| *v)
            .expect("block present")
    };
    println!("\northogonality checks:");
    println!(
        "  D < A (spreading alone helps, zero extra bandwidth): {:.2} < {:.2} → {}",
        clf('D'),
        clf('A'),
        clf('D') < clf('A')
    );
    println!(
        "  E < B (spreading improves retransmission):           {:.2} < {:.2} → {}",
        clf('E'),
        clf('B'),
        clf('E') < clf('B')
    );
    println!(
        "  F < C (spreading improves FEC):                      {:.2} < {:.2} → {}",
        clf('F'),
        clf('C'),
        clf('F') < clf('C')
    );

    sweep::write_results(
        "orthogonality_blocks",
        &sweep::results_doc("orthogonality_blocks", rows),
    );
    espread_bench::write_telemetry_snapshot("orthogonality_blocks");
}
