//! Video frames: types and sizes.

use std::fmt;

/// The MPEG picture type of a frame.
///
/// I- and P-frames are **anchor** pictures: other frames are predicted from
/// them, so their loss cascades. B-frames are leaves of the dependency
/// graph (nothing is predicted from a B-frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FrameType {
    /// Intra-coded picture; self-contained, largest, most critical.
    I,
    /// Predictive-coded picture; depends on the previous anchor.
    P,
    /// Bidirectionally predicted picture; depends on the surrounding
    /// anchors, nothing depends on it.
    B,
}

impl FrameType {
    /// Whether this is an anchor picture (I or P).
    pub fn is_anchor(self) -> bool {
        matches!(self, FrameType::I | FrameType::P)
    }

    /// Parses a single pattern character (`'I'`, `'P'`, `'B'`, any case).
    pub fn from_char(c: char) -> Option<FrameType> {
        match c.to_ascii_uppercase() {
            'I' => Some(FrameType::I),
            'P' => Some(FrameType::P),
            'B' => Some(FrameType::B),
            _ => None,
        }
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            FrameType::I => 'I',
            FrameType::P => 'P',
            FrameType::B => 'B',
        };
        write!(f, "{c}")
    }
}

/// One video frame of a trace: its playout position, picture type and
/// encoded size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// Zero-based playout (display) index within the trace.
    pub index: usize,
    /// Picture type.
    pub frame_type: FrameType,
    /// Encoded size in bytes.
    pub size_bytes: u32,
}

impl Frame {
    /// Whether this frame is an anchor picture.
    pub fn is_anchor(&self) -> bool {
        self.frame_type.is_anchor()
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} ({} B)",
            self.frame_type, self.index, self.size_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_classification() {
        assert!(FrameType::I.is_anchor());
        assert!(FrameType::P.is_anchor());
        assert!(!FrameType::B.is_anchor());
        let f = Frame {
            index: 3,
            frame_type: FrameType::B,
            size_bytes: 1000,
        };
        assert!(!f.is_anchor());
    }

    #[test]
    fn parse_pattern_chars() {
        assert_eq!(FrameType::from_char('I'), Some(FrameType::I));
        assert_eq!(FrameType::from_char('p'), Some(FrameType::P));
        assert_eq!(FrameType::from_char('b'), Some(FrameType::B));
        assert_eq!(FrameType::from_char('x'), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(FrameType::I.to_string(), "I");
        let f = Frame {
            index: 7,
            frame_type: FrameType::P,
            size_bytes: 512,
        };
        assert_eq!(f.to_string(), "P#7 (512 B)");
    }
}
