//! Client-side reassembly and loss observation for one buffer window,
//! fed by untrusted datagrams.
//!
//! Unlike the simulator's `ClientWindow`, this tracker cannot be
//! pre-sized from the sender's LDU list — the wire is all it knows. Each
//! frame's fragment count is learned from the first fragment that arrives
//! for it (`frags_total`), mismatching or out-of-range labels are
//! rejected (counted upstream as bad fragments), and a frame no fragment
//! of ever arrives for is simply lost.

use espread_qos::LossPattern;

use crate::wire::DataMsg;

/// Reassembly and per-layer slot observation for one window.
#[derive(Debug, Clone)]
pub struct NetWindow {
    window: u64,
    /// Per frame: received-fragment flags, allocated on first sighting.
    frames: Vec<Option<Vec<bool>>>,
    /// layer → slot → was any fragment of that slot's frame received?
    layer_slots_seen: Vec<Vec<bool>>,
    /// Kept as the wire's `u16` indices so building a `CriticalNack`
    /// needs no narrowing cast that could silently truncate.
    critical_frames: Vec<u16>,
}

/// What the window looked like when it closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetWindowOutcome {
    /// The window number.
    pub window: u64,
    /// Playout-order delivery pattern.
    pub pattern: LossPattern,
    /// Largest run of lost transmission slots per layer (the ACK body).
    pub per_layer_burst: Vec<u16>,
}

impl NetWindow {
    /// Prepares tracking for window `window` of `frames_per_window`
    /// frames, with the per-window layer sizes and critical-frame indices
    /// agreed at negotiation.
    pub fn new(
        window: u64,
        frames_per_window: usize,
        layer_sizes: &[u16],
        critical_frames: &[u16],
    ) -> Self {
        NetWindow {
            window,
            frames: vec![None; frames_per_window],
            layer_slots_seen: layer_sizes
                .iter()
                .map(|&n| vec![false; usize::from(n)])
                .collect(),
            critical_frames: critical_frames.to_vec(),
        }
    }

    /// The window this tracker observes.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Accepts one data message. Returns `false` (and changes nothing)
    /// when the labels don't fit the negotiated session — wrong window,
    /// out-of-range frame/layer/slot, or a fragment count disagreeing
    /// with what this frame's earlier fragments declared.
    pub fn accept(&mut self, msg: &DataMsg) -> bool {
        let f = &msg.fragment;
        if f.window != self.window {
            return false;
        }
        let Some(slot_row) = self.layer_slots_seen.get_mut(usize::from(f.layer)) else {
            return false;
        };
        let Some(slot_cell) = slot_row.get_mut(usize::from(f.layer_slot)) else {
            return false;
        };
        let Some(frame) = self.frames.get_mut(f.frame) else {
            return false;
        };
        let flags = frame.get_or_insert_with(|| vec![false; usize::from(f.frags_total)]);
        if flags.len() != usize::from(f.frags_total) {
            return false;
        }
        // frag < frags_total was already enforced by the wire decoder,
        // but re-check: this type is constructible without it.
        let Some(cell) = flags.get_mut(usize::from(f.frag)) else {
            return false;
        };
        *cell = true;
        *slot_cell = true;
        true
    }

    /// Whether every fragment of frame `frame` has arrived. Out-of-range
    /// indices read as incomplete — a hostile Accept can name critical
    /// frames past `frames_per_window`, and that must not panic here.
    pub fn is_complete(&self, frame: usize) -> bool {
        self.frames
            .get(frame)
            .and_then(|f| f.as_ref())
            .is_some_and(|flags| flags.iter().all(|&r| r))
    }

    /// Critical frames still missing at least one fragment, as wire
    /// indices — the body of a `CriticalNack`.
    pub fn missing_critical(&self) -> Vec<u16> {
        self.critical_frames
            .iter()
            .filter(|&&f| !self.is_complete(usize::from(f)))
            .copied()
            .collect()
    }

    /// Closes the window: playout loss pattern plus the per-layer worst
    /// burst of lost transmission slots.
    pub fn finalize(self) -> NetWindowOutcome {
        let pattern =
            LossPattern::from_received((0..self.frames.len()).map(|f| self.is_complete(f)));
        let per_layer_burst = self
            .layer_slots_seen
            .iter()
            .map(|row| {
                let mut best = 0u16;
                let mut cur = 0u16;
                for &seen in row {
                    if seen {
                        cur = 0;
                    } else {
                        cur += 1;
                        best = best.max(cur);
                    }
                }
                best
            })
            .collect();
        NetWindowOutcome {
            window: self.window,
            pattern,
            per_layer_burst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espread_protocol::{Fragment, Ldu};

    fn data(
        window: u64,
        frame: usize,
        frag: u16,
        frags_total: u16,
        layer: u8,
        slot: u16,
    ) -> DataMsg {
        DataMsg {
            fragment: Fragment {
                window,
                frame,
                frag,
                frags_total,
                layer,
                layer_slot: slot,
                retransmit: false,
            },
            ldu: Ldu::new(100),
            payload_len: 100,
        }
    }

    fn window() -> NetWindow {
        // 4 frames: 0,1 in layer 0 (critical), 2,3 in layer 1.
        NetWindow::new(0, 4, &[2, 2], &[0, 1])
    }

    #[test]
    fn tracks_completeness_and_bursts() {
        let mut w = window();
        assert!(w.accept(&data(0, 0, 0, 1, 0, 0)));
        assert!(w.accept(&data(0, 3, 0, 1, 1, 1)));
        assert_eq!(w.missing_critical(), vec![1]);
        let out = w.finalize();
        assert_eq!(out.pattern.lost_indices(), vec![1, 2]);
        assert_eq!(out.per_layer_burst, vec![1, 1]);
    }

    #[test]
    fn multi_fragment_frames_need_every_fragment() {
        let mut w = NetWindow::new(0, 1, &[1], &[0]);
        assert!(w.accept(&data(0, 0, 0, 3, 0, 0)));
        assert!(w.accept(&data(0, 0, 2, 3, 0, 0)));
        assert!(!w.is_complete(0));
        assert_eq!(w.missing_critical(), vec![0]);
        assert!(w.accept(&data(0, 0, 1, 3, 0, 0)));
        assert!(w.is_complete(0));
    }

    #[test]
    fn rejects_labels_outside_the_session() {
        let mut w = window();
        assert!(!w.accept(&data(1, 0, 0, 1, 0, 0)), "wrong window");
        assert!(!w.accept(&data(0, 9, 0, 1, 0, 0)), "frame out of range");
        assert!(!w.accept(&data(0, 0, 0, 1, 7, 0)), "layer out of range");
        assert!(!w.accept(&data(0, 0, 0, 1, 0, 9)), "slot out of range");
        // Fragment-count mismatch against what frame 0 first declared.
        assert!(w.accept(&data(0, 0, 0, 2, 0, 0)));
        assert!(!w.accept(&data(0, 0, 0, 5, 0, 0)), "frags_total changed");
        let out = w.finalize();
        assert_eq!(out.pattern.lost_indices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_window_is_all_lost_with_full_layer_bursts() {
        let out = window().finalize();
        assert_eq!(out.pattern.lost(), 4);
        assert_eq!(out.per_layer_burst, vec![2, 2]);
    }

    #[test]
    fn hostile_critical_indices_never_panic() {
        // A hostile Accept can name critical frames past the window: they
        // must read as permanently missing, not index out of bounds.
        let w = NetWindow::new(0, 4, &[2, 2], &[0, 9000]);
        assert!(!w.is_complete(9000));
        assert_eq!(w.missing_critical(), vec![0, 9000]);
    }

    #[test]
    fn duplicates_idempotent() {
        let mut w = window();
        assert!(w.accept(&data(0, 2, 0, 1, 1, 0)));
        assert!(w.accept(&data(0, 2, 0, 1, 1, 0)));
        assert!(w.is_complete(2));
    }
}
