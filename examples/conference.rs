//! Video conferencing: audio + video multiplexed over one lossy path.
//!
//! The paper's motivating applications — Internet phone, video
//! conferencing — carry both media together, so a network burst hits
//! both. This demo streams one minute of multiplexed SunAudio + MPEG over
//! the Fig. 8 channel, scrambled vs unscrambled, and reports per-medium
//! continuity and MOS-style quality.
//!
//! ```sh
//! cargo run --release --example conference
//! ```

use error_spreading::prelude::*;
use error_spreading::protocol::{aligned_av_sources, MuxSession};
use error_spreading::qos::score;

fn main() {
    let windows = 60; // one minute of 1 s buffer cycles
    let trace = MpegTrace::new(Movie::JurassicPark, 1);
    let (audio, video) = aligned_av_sources(&trace, 2, windows, false);
    println!(
        "conference: {windows} cycles × ({} audio LDUs + {} video frames) over one 1.2 Mbps path\n",
        audio.frames_per_window(),
        video.frames_per_window()
    );

    let p_bad = 0.7;
    let seed = 77;
    let spread = MuxSession::new(
        ProtocolConfig::paper(p_bad, seed),
        audio.clone(),
        video.clone(),
    )
    .run();
    let plain = MuxSession::new(
        ProtocolConfig::paper(p_bad, seed).with_ordering(Ordering::InOrder),
        audio,
        video,
    )
    .run();

    let mos = |series: &WindowSeries, kind: MediaKind| {
        let total: f64 = series
            .windows()
            .iter()
            .map(|&m| score(m, kind).value())
            .sum();
        total / series.len() as f64
    };

    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "stream", "mean CLF", "dev", "mean MOS"
    );
    for (label, series, kind) in [
        ("audio plain", &plain.audio, MediaKind::Audio),
        ("audio spread", &spread.audio, MediaKind::Audio),
        ("video plain", &plain.video, MediaKind::Video),
        ("video spread", &spread.video, MediaKind::Video),
    ] {
        let s = series.summary();
        println!(
            "{label:<14} {:>12.2} {:>12.2} {:>10.2}",
            s.mean_clf,
            s.dev_clf,
            mos(series, kind)
        );
    }
    println!(
        "\nshared channel: {} packets, {:.1}% lost — one loss process, both media protected",
        spread.packets_offered,
        spread.packets_lost as f64 / spread.packets_offered as f64 * 100.0
    );
}
