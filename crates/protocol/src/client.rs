//! Client-side protocol state for one buffer window.
//!
//! The client reassembles fragments, tracks per-layer delivery in the
//! **transmission-slot domain** (the observation `calculatePermutation`
//! needs), reports missing critical frames for retransmission, and at
//! window end produces the playout-order loss pattern plus the ACK
//! feedback of §4.2.

use espread_netsim::SimTime;
use espread_qos::LossPattern;

use crate::fec::{apply_fec_recovery, FragmentKey, ParityPacket};
use crate::feedback::WindowFeedback;
use crate::packetize::{Fragment, Ldu, Reassembly};

/// Data-path payloads: media fragments and FEC parity packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataPayload {
    /// A fragment of an LDU.
    Fragment(Fragment),
    /// An XOR parity packet.
    Parity(ParityPacket),
}

/// Per-window client state.
#[derive(Debug, Clone)]
pub struct ClientWindow {
    window: u64,
    reassembly: Reassembly,
    received_keys: Vec<FragmentKey>,
    parities: Vec<ParityPacket>,
    /// layer → slot → was any fragment of that slot's frame received?
    layer_slots_seen: Vec<Vec<bool>>,
    critical_frames: Vec<usize>,
    window_len: usize,
    /// When each frame finished reassembly (None while incomplete).
    completions: Vec<Option<SimTime>>,
}

/// The client's verdict on one finished window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    /// Playout-order delivery pattern after all recovery.
    pub pattern: LossPattern,
    /// The feedback to ACK back to the server.
    pub feedback: WindowFeedback,
    /// Number of fragments repaired by FEC.
    pub fec_recovered: usize,
    /// Per-frame reassembly-completion times (None = never completed).
    pub completions: Vec<Option<SimTime>>,
}

impl ClientWindow {
    /// Prepares the client for window `window` of `ldus`, with the layer
    /// sizes and critical-frame set it knows from initial negotiation
    /// (GOP pattern), at the negotiated packet size.
    pub fn new(
        window: u64,
        ldus: &[Ldu],
        layer_sizes: &[usize],
        critical_frames: Vec<usize>,
        packet_bytes: u32,
    ) -> Self {
        ClientWindow {
            window,
            reassembly: Reassembly::new(ldus, packet_bytes),
            received_keys: Vec::new(),
            parities: Vec::new(),
            layer_slots_seen: layer_sizes.iter().map(|&n| vec![false; n]).collect(),
            critical_frames,
            window_len: ldus.len(),
            completions: vec![None; ldus.len()],
        }
    }

    /// Accepts one data packet that arrived at time `now`. Packets for
    /// other windows are ignored (stale retransmissions).
    pub fn accept(&mut self, now: SimTime, payload: &DataPayload) {
        match payload {
            DataPayload::Fragment(f) => {
                if f.window != self.window {
                    return;
                }
                self.reassembly.accept(f);
                self.received_keys.push(f.into());
                if self.completions[f.frame].is_none() && self.reassembly.is_complete(f.frame) {
                    self.completions[f.frame] = Some(now);
                }
                let layer = usize::from(f.layer);
                let slot = usize::from(f.layer_slot);
                if let Some(row) = self.layer_slots_seen.get_mut(layer) {
                    if let Some(cell) = row.get_mut(slot) {
                        *cell = true;
                    }
                }
            }
            DataPayload::Parity(p) => {
                if p.window == self.window {
                    self.parities.push(p.clone());
                }
            }
        }
    }

    /// Critical frames still missing at least one fragment — the NACK the
    /// client sends after the critical phase.
    pub fn missing_critical(&self) -> Vec<usize> {
        self.critical_frames
            .iter()
            .copied()
            .filter(|&f| !self.reassembly.is_complete(f))
            .collect()
    }

    /// Finishes the window at time `now`: applies FEC recovery, derives
    /// the playout loss pattern, and assembles the feedback (per-layer
    /// worst loss burst in the transmission-slot domain). Frames completed
    /// only by FEC repair are stamped with `now` (repair happens at window
    /// close).
    pub fn finalize(mut self, now: SimTime) -> WindowOutcome {
        let _span = crate::telem::span("protocol.client.finalize_ns");
        let fec_recovered = apply_fec_recovery(
            &mut self.reassembly,
            &mut self.received_keys,
            &self.parities,
        );

        let completeness = self.reassembly.completeness();
        for (f, &complete) in completeness.iter().enumerate() {
            if complete && self.completions[f].is_none() {
                self.completions[f] = Some(now);
            }
        }
        let pattern = LossPattern::from_received(completeness.iter().copied());
        debug_assert_eq!(pattern.len(), self.window_len);

        let per_layer_burst = self
            .layer_slots_seen
            .iter()
            .map(|row| {
                // Longest run of un-seen transmission slots in this layer.
                let mut best = 0;
                let mut cur = 0;
                for &seen in row {
                    if seen {
                        cur = 0;
                    } else {
                        cur += 1;
                        best = best.max(cur);
                    }
                }
                best
            })
            .collect();

        WindowOutcome {
            pattern,
            feedback: WindowFeedback {
                window: self.window,
                per_layer_burst,
            },
            fec_recovered,
            completions: self.completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn frag(window: u64, frame: usize, layer: u8, layer_slot: u16) -> DataPayload {
        DataPayload::Fragment(Fragment {
            window,
            frame,
            frag: 0,
            frags_total: 1,
            layer,
            layer_slot,
            retransmit: false,
        })
    }

    fn small_window() -> ClientWindow {
        // 4 frames: frames 0,1 critical (layer 0), frames 2,3 layer 1.
        ClientWindow::new(0, &[Ldu::new(100); 4], &[2, 2], vec![0, 1], 2048)
    }

    #[test]
    fn tracks_missing_critical() {
        let mut c = small_window();
        assert_eq!(c.missing_critical(), vec![0, 1]);
        c.accept(T0, &frag(0, 0, 0, 0));
        assert_eq!(c.missing_critical(), vec![1]);
        c.accept(T0, &frag(0, 1, 0, 1));
        assert!(c.missing_critical().is_empty());
    }

    #[test]
    fn stale_window_packets_ignored() {
        let mut c = small_window();
        c.accept(T0, &frag(9, 0, 0, 0));
        assert_eq!(c.missing_critical(), vec![0, 1]);
    }

    #[test]
    fn finalize_reports_pattern_and_bursts() {
        let mut c = small_window();
        // Frame 0 (layer 0 slot 0) and frame 3 (layer 1 slot 1) arrive.
        c.accept(T0, &frag(0, 0, 0, 0));
        c.accept(T0, &frag(0, 3, 1, 1));
        let out = c.finalize(T0);
        assert_eq!(out.pattern.lost_indices(), vec![1, 2]);
        // Layer 0 missing slot 1 (run 1); layer 1 missing slot 0 (run 1).
        assert_eq!(out.feedback.per_layer_burst, vec![1, 1]);
        assert_eq!(out.fec_recovered, 0);
    }

    #[test]
    fn burst_runs_counted_in_slot_domain() {
        let mut c = ClientWindow::new(0, &[Ldu::new(100); 6], &[6], vec![], 2048);
        // Slots 1,2,3 missing → burst 3; slot 5 missing → run 1.
        for (frame, slot) in [(0usize, 0u16), (4, 4)] {
            c.accept(T0, &frag(0, frame, 0, slot));
        }
        let out = c.finalize(T0);
        assert_eq!(out.feedback.per_layer_burst, vec![3]);
    }

    #[test]
    fn multi_fragment_frames_complete_only_when_all_arrive() {
        let ldus = [Ldu::new(5000)]; // 3 fragments at 2048
        let mut c = ClientWindow::new(0, &ldus, &[1], vec![0], 2048);
        for fr in 0..2u16 {
            c.accept(
                T0,
                &DataPayload::Fragment(Fragment {
                    window: 0,
                    frame: 0,
                    frag: fr,
                    frags_total: 3,
                    layer: 0,
                    layer_slot: 0,
                    retransmit: false,
                }),
            );
        }
        assert_eq!(c.missing_critical(), vec![0]);
        c.accept(
            T0,
            &DataPayload::Fragment(Fragment {
                window: 0,
                frame: 0,
                frag: 2,
                frags_total: 3,
                layer: 0,
                layer_slot: 0,
                retransmit: false,
            }),
        );
        assert!(c.missing_critical().is_empty());
        let out = c.finalize(T0);
        assert_eq!(out.pattern.lost(), 0);
    }

    #[test]
    fn fec_parity_repairs_single_loss() {
        let mut c = ClientWindow::new(0, &[Ldu::new(100); 2], &[2], vec![], 2048);
        c.accept(T0, &frag(0, 0, 0, 0));
        c.accept(
            T0,
            &DataPayload::Parity(ParityPacket {
                window: 0,
                group: 0,
                members: vec![
                    FragmentKey { frame: 0, frag: 0 },
                    FragmentKey { frame: 1, frag: 0 },
                ],
                size_bytes: 100,
            }),
        );
        let out = c.finalize(T0);
        assert_eq!(out.fec_recovered, 1);
        assert_eq!(out.pattern.lost(), 0);
    }
}
