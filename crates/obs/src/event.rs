//! The fixed-size event vocabulary shared by all three roles.
//!
//! An [`ObsEvent`] is a plain `Copy` struct — no strings, no heap — so the
//! recorder's ring buffer can be preallocated once and written in place on
//! the hot path. Everything variable-width (which role recorded, which
//! logical session) lives in the recording's metadata instead, stamped
//! once per dump rather than once per event.

/// Sentinel for "this event carries no window index".
pub const WINDOW_NONE: u64 = u64::MAX;

/// Sentinel for "this event carries no frame index".
pub const FRAME_NONE: u32 = u32::MAX;

/// Which node of the UDP stack produced a recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// The streaming server (planner + sender).
    Server,
    /// The fault-injecting proxy between the two.
    Proxy,
    /// The receiving client (reassembly + feedback).
    Client,
}

impl Role {
    /// Stable wire name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Server => "server",
            Role::Proxy => "proxy",
            Role::Client => "client",
        }
    }

    /// Inverse of [`Role::as_str`].
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "server" => Some(Role::Server),
            "proxy" => Some(Role::Proxy),
            "client" => Some(Role::Client),
            _ => None,
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened. The variants cover every observable step in a frame's
/// life across the three nodes; the reconstructor keys its causal
/// matching on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(u8)]
pub enum EventKind {
    // ── server ──────────────────────────────────────────────────────
    /// A frame entered the window's transmission schedule
    /// (`detail` = transmission-slot index).
    #[default]
    Queued = 0,
    /// A data fragment was handed to the socket
    /// (`detail` = [`data_detail`]).
    Sent = 1,
    /// A data fragment was re-sent in a critical-recovery round
    /// (`detail` = [`data_detail`]).
    Retransmitted = 2,
    /// The window's `WindowEnd` control message was sent.
    WindowEndSent = 3,
    /// The wire codec refused an oversize message; nothing was sent.
    SendRefused = 4,
    /// A `WindowAck` for this window was folded into the planner
    /// (`detail` = low bits of the ack sequence number).
    AckReceived = 5,
    /// A `CriticalNack` named this frame as missing.
    NackReceived = 6,
    /// The window's ACK never arrived inside the retry schedule
    /// (`detail` = attempts spent).
    AckTimeout = 7,
    // ── proxy ───────────────────────────────────────────────────────
    /// A data datagram survived the fault policy and was forwarded
    /// (`detail` = [`data_detail`]).
    ForwardedData = 8,
    /// The Gilbert–Elliott channel swallowed a data datagram
    /// (`detail` = [`data_detail`]).
    DroppedData = 9,
    /// A control datagram was dropped (`detail` = wire type byte).
    DroppedControl = 10,
    /// An extra copy of a surviving datagram was emitted.
    Duplicated = 11,
    /// A surviving datagram was held back for an adjacent swap.
    Reordered = 12,
    /// One byte of a surviving datagram was flipped before forwarding.
    Corrupted = 13,
    /// A surviving datagram was cut short before forwarding.
    Truncated = 14,
    // ── client ──────────────────────────────────────────────────────
    /// A data fragment was accepted into the window tracker
    /// (`detail` = [`data_detail`]).
    Delivered = 15,
    /// A data fragment's labels did not fit the negotiated session.
    BadFragment = 16,
    /// A decodable data fragment was discarded as stale or duplicate
    /// (`detail` = [`data_detail`]).
    Ignored = 17,
    /// Every fragment of the frame has arrived (`detail` = fragment
    /// count).
    Reassembled = 18,
    /// The window closed with this frame still incomplete — a residual
    /// loss.
    Abandoned = 19,
    /// The window was finalized (`detail` = frames per window).
    WindowClosed = 20,
    /// A `WindowAck` was sent (`detail` = low bits of the ack sequence).
    AckSent = 21,
    /// A `CriticalNack` naming this frame was sent (`detail` = recovery
    /// round).
    NackSent = 22,
    /// An arriving datagram failed to decode (no labels available).
    DecodeError = 23,
    // ── server (overload) ───────────────────────────────────────────
    /// The server shed this frame under overload — an enhancement-layer
    /// frame dropped to pay down pacing debt, or a stale recovery-round
    /// retransmission skipped past its playout deadline. Nothing was
    /// sent; the loss is intentional and perception-ordered.
    Shed = 24,
}

impl EventKind {
    /// Stable wire name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Queued => "queued",
            EventKind::Sent => "sent",
            EventKind::Retransmitted => "retransmitted",
            EventKind::WindowEndSent => "window_end_sent",
            EventKind::SendRefused => "send_refused",
            EventKind::AckReceived => "ack_received",
            EventKind::NackReceived => "nack_received",
            EventKind::AckTimeout => "ack_timeout",
            EventKind::ForwardedData => "forwarded_data",
            EventKind::DroppedData => "dropped_data",
            EventKind::DroppedControl => "dropped_control",
            EventKind::Duplicated => "duplicated",
            EventKind::Reordered => "reordered",
            EventKind::Corrupted => "corrupted",
            EventKind::Truncated => "truncated",
            EventKind::Delivered => "delivered",
            EventKind::BadFragment => "bad_fragment",
            EventKind::Ignored => "ignored",
            EventKind::Reassembled => "reassembled",
            EventKind::Abandoned => "abandoned",
            EventKind::WindowClosed => "window_closed",
            EventKind::AckSent => "ack_sent",
            EventKind::NackSent => "nack_sent",
            EventKind::DecodeError => "decode_error",
            EventKind::Shed => "shed",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    pub fn parse(s: &str) -> Option<EventKind> {
        ALL_KINDS.iter().copied().find(|k| k.as_str() == s)
    }
}

/// Every kind, in discriminant order (dump round-trip tests iterate it).
pub const ALL_KINDS: [EventKind; 25] = [
    EventKind::Queued,
    EventKind::Sent,
    EventKind::Retransmitted,
    EventKind::WindowEndSent,
    EventKind::SendRefused,
    EventKind::AckReceived,
    EventKind::NackReceived,
    EventKind::AckTimeout,
    EventKind::ForwardedData,
    EventKind::DroppedData,
    EventKind::DroppedControl,
    EventKind::Duplicated,
    EventKind::Reordered,
    EventKind::Corrupted,
    EventKind::Truncated,
    EventKind::Delivered,
    EventKind::BadFragment,
    EventKind::Ignored,
    EventKind::Reassembled,
    EventKind::Abandoned,
    EventKind::WindowClosed,
    EventKind::AckSent,
    EventKind::NackSent,
    EventKind::DecodeError,
    EventKind::Shed,
];

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Packs a data fragment's labels into an event `detail`: fragment index
/// in the low 16 bits, the retransmit flag at bit 16.
pub fn data_detail(frag: u16, retransmit: bool) -> u32 {
    u32::from(frag) | (u32::from(retransmit) << 16)
}

/// The fragment index packed by [`data_detail`].
pub fn detail_frag(detail: u32) -> u16 {
    (detail & 0xFFFF) as u16
}

/// The retransmit flag packed by [`data_detail`].
pub fn detail_retransmit(detail: u32) -> bool {
    detail & (1 << 16) != 0
}

/// One recorded occurrence. Fixed-size and `Copy`: writing one into the
/// ring buffer is a plain store, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsEvent {
    /// Microseconds since the recorder's epoch (monotonic).
    pub t_us: u64,
    /// Connection id the event belongs to (0 when unknown).
    pub conn: u32,
    /// Window index, or [`WINDOW_NONE`].
    pub window: u64,
    /// Frame index, or [`FRAME_NONE`].
    pub frame: u32,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see each [`EventKind`] variant).
    pub detail: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in ALL_KINDS {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("no_such_kind"), None);
    }

    #[test]
    fn role_names_round_trip() {
        for role in [Role::Server, Role::Proxy, Role::Client] {
            assert_eq!(Role::parse(role.as_str()), Some(role));
        }
        assert_eq!(Role::parse("router"), None);
    }

    #[test]
    fn data_detail_packs_and_unpacks() {
        for frag in [0u16, 1, 7, u16::MAX] {
            for retx in [false, true] {
                let d = data_detail(frag, retx);
                assert_eq!(detail_frag(d), frag);
                assert_eq!(detail_retransmit(d), retx);
            }
        }
    }

    #[test]
    fn event_is_small_and_copy() {
        // The ring preallocates capacity × this size; keep it bounded.
        assert!(std::mem::size_of::<ObsEvent>() <= 32);
        let e = ObsEvent::default();
        let f = e; // Copy
        assert_eq!(e, f);
    }
}
