//! Streaming-domain telemetry events.

/// One discrete occurrence worth logging alongside the numeric metrics.
///
/// Events capture the *adaptive* behaviour of the protocol — the things a
/// gauge cannot: which feedback triggered a re-permutation and how the
/// estimates moved.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The sender folded a window ACK into its per-layer burst estimators
    /// and re-planned — the paper's §4.2 adaptation step.
    Adaptation {
        /// The window being planned when the ACK was applied.
        window: u64,
        /// The window the triggering feedback described.
        feedback_window: u64,
        /// Per-layer burst observations carried by the feedback.
        observed_bursts: Vec<usize>,
        /// Raw per-layer estimates before folding the feedback in.
        old_estimates: Vec<f64>,
        /// Raw per-layer estimates after folding the feedback in.
        new_estimates: Vec<f64>,
    },
    /// Continuity metrics of one finished playout window.
    WindowMetrics {
        /// The window index.
        window: u64,
        /// Unit losses in the window (the ALF numerator).
        lost: usize,
        /// Window length in slots (the ALF denominator).
        window_len: usize,
        /// Longest run of consecutive losses (the CLF).
        clf: usize,
    },
}

impl Event {
    /// Writes the event as one JSON object (no trailing newline).
    pub(crate) fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Event::Adaptation {
                window,
                feedback_window,
                observed_bursts,
                old_estimates,
                new_estimates,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"event\",\"kind\":\"adaptation\",\"window\":{window},\
                     \"feedback_window\":{feedback_window},\"observed_bursts\":"
                );
                crate::json::write_usize_array(out, observed_bursts);
                out.push_str(",\"old_estimates\":");
                crate::json::write_f64_array(out, old_estimates);
                out.push_str(",\"new_estimates\":");
                crate::json::write_f64_array(out, new_estimates);
                out.push('}');
            }
            Event::WindowMetrics {
                window,
                lost,
                window_len,
                clf,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"event\",\"kind\":\"window_metrics\",\"window\":{window},\
                     \"lost\":{lost},\"window_len\":{window_len},\"clf\":{clf}}}"
                );
            }
        }
    }
}
