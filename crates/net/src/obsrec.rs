//! Flight-recorder shim: with the `telemetry` feature a
//! [`SessionRecorder`] can carry an `espread-obs` recorder into the
//! server, client, and proxy loops; without it the same type is a unit
//! struct whose hooks compile to nothing. Mirrors the `telem` shim, so
//! the transport code stays `cfg`-free and the public config structs keep
//! an identical shape across feature states.

#[cfg(feature = "telemetry")]
mod imp {
    use espread_obs::{data_detail, EventKind, FlightRecorder, FRAME_NONE, WINDOW_NONE};

    use crate::wire::{DataLabels, Msg};

    /// Optional hook into an `espread-obs` flight recorder. The default
    /// ([`SessionRecorder::disabled`]) records nothing; attach one
    /// recorder per role with [`SessionRecorder::attached`] (created via
    /// `espread_obs::trio` when the three roles share a process, so their
    /// timestamps are causally comparable).
    #[derive(Debug, Clone, Default)]
    pub struct SessionRecorder {
        rec: Option<FlightRecorder>,
    }

    impl SessionRecorder {
        /// A recorder hook that records nothing (the default).
        pub fn disabled() -> Self {
            SessionRecorder::default()
        }

        /// Wraps a live flight recorder.
        pub fn attached(rec: FlightRecorder) -> Self {
            SessionRecorder { rec: Some(rec) }
        }

        /// Whether events are actually being recorded.
        pub fn is_enabled(&self) -> bool {
            self.rec.is_some()
        }

        #[inline]
        fn record(&self, kind: EventKind, conn: u32, window: u64, frame: u32, detail: u32) {
            if let Some(rec) = &self.rec {
                rec.record(kind, conn, window, frame, detail);
            }
        }

        // ── server hooks ────────────────────────────────────────────

        pub(crate) fn queued(&self, conn: u32, window: u64, frame: u32, slot: u32) {
            self.record(EventKind::Queued, conn, window, frame, slot);
        }

        /// Records the send of an outgoing message, called just *before*
        /// the bytes reach the socket so a matching `Delivered` can never
        /// carry an earlier timestamp.
        pub(crate) fn sent_msg(&self, conn: u32, msg: &Msg) {
            match msg {
                Msg::Data(data) => {
                    let f = &data.fragment;
                    let kind = if f.retransmit {
                        EventKind::Retransmitted
                    } else {
                        EventKind::Sent
                    };
                    self.record(
                        kind,
                        conn,
                        f.window,
                        f.frame as u32,
                        data_detail(f.frag, f.retransmit),
                    );
                }
                Msg::WindowEnd(end) => {
                    self.record(EventKind::WindowEndSent, conn, end.window, FRAME_NONE, 0);
                }
                _ => {}
            }
        }

        /// Records an oversize encode refusal (data only — control
        /// refusals surface through the peer's retry machinery instead).
        pub(crate) fn refused_msg(&self, conn: u32, msg: &Msg) {
            if let Msg::Data(data) = msg {
                let f = &data.fragment;
                self.record(
                    EventKind::SendRefused,
                    conn,
                    f.window,
                    f.frame as u32,
                    data_detail(f.frag, f.retransmit),
                );
            }
        }

        pub(crate) fn ack_received(&self, conn: u32, window: u64, ack_seq: u64) {
            self.record(
                EventKind::AckReceived,
                conn,
                window,
                FRAME_NONE,
                ack_seq as u32,
            );
        }

        pub(crate) fn nack_received(&self, conn: u32, window: u64, frame: u32) {
            self.record(EventKind::NackReceived, conn, window, frame, 0);
        }

        pub(crate) fn ack_timeout(&self, conn: u32, window: u64, attempts: u32) {
            self.record(EventKind::AckTimeout, conn, window, FRAME_NONE, attempts);
        }

        /// Records an intentional overload shed of `frame` — nothing was
        /// (or will be) sent for it this round.
        pub(crate) fn shed(&self, conn: u32, window: u64, frame: u32) {
            self.record(EventKind::Shed, conn, window, frame, 0);
        }

        // ── client hooks ────────────────────────────────────────────

        pub(crate) fn delivered(
            &self,
            conn: u32,
            window: u64,
            frame: u32,
            frag: u16,
            retransmit: bool,
        ) {
            self.record(
                EventKind::Delivered,
                conn,
                window,
                frame,
                data_detail(frag, retransmit),
            );
        }

        pub(crate) fn bad_fragment(&self, conn: u32, window: u64, frame: u32, frag: u16) {
            self.record(
                EventKind::BadFragment,
                conn,
                window,
                frame,
                data_detail(frag, false),
            );
        }

        pub(crate) fn ignored(
            &self,
            conn: u32,
            window: u64,
            frame: u32,
            frag: u16,
            retransmit: bool,
        ) {
            self.record(
                EventKind::Ignored,
                conn,
                window,
                frame,
                data_detail(frag, retransmit),
            );
        }

        pub(crate) fn reassembled(&self, conn: u32, window: u64, frame: u32, frags_total: u16) {
            self.record(
                EventKind::Reassembled,
                conn,
                window,
                frame,
                u32::from(frags_total),
            );
        }

        pub(crate) fn abandoned(&self, conn: u32, window: u64, frame: u32) {
            self.record(EventKind::Abandoned, conn, window, frame, 0);
        }

        pub(crate) fn window_closed(&self, conn: u32, window: u64, frames_total: u32) {
            self.record(
                EventKind::WindowClosed,
                conn,
                window,
                FRAME_NONE,
                frames_total,
            );
        }

        pub(crate) fn ack_sent(&self, conn: u32, window: u64, ack_seq: u64) {
            self.record(EventKind::AckSent, conn, window, FRAME_NONE, ack_seq as u32);
        }

        pub(crate) fn nack_sent(&self, conn: u32, window: u64, frame: u32, round: u32) {
            self.record(EventKind::NackSent, conn, window, frame, round);
        }

        pub(crate) fn decode_error(&self, conn: u32) {
            self.record(EventKind::DecodeError, conn, WINDOW_NONE, FRAME_NONE, 0);
        }

        // ── proxy hooks ─────────────────────────────────────────────

        #[inline]
        fn data_event(&self, kind: EventKind, labels: DataLabels) {
            self.record(
                kind,
                labels.conn,
                labels.window,
                u32::from(labels.frame),
                data_detail(labels.frag, labels.retransmit),
            );
        }

        pub(crate) fn forwarded_data(&self, labels: DataLabels) {
            self.data_event(EventKind::ForwardedData, labels);
        }

        pub(crate) fn dropped_data(&self, labels: DataLabels) {
            self.data_event(EventKind::DroppedData, labels);
        }

        pub(crate) fn dropped_control(&self, conn: u32, type_byte: u8) {
            self.record(
                EventKind::DroppedControl,
                conn,
                WINDOW_NONE,
                FRAME_NONE,
                u32::from(type_byte),
            );
        }

        pub(crate) fn duplicated(&self, labels: DataLabels) {
            self.data_event(EventKind::Duplicated, labels);
        }

        pub(crate) fn reordered(&self, labels: DataLabels) {
            self.data_event(EventKind::Reordered, labels);
        }

        /// Records a byte-flip on a surviving datagram; `labels` are the
        /// *pre-mangle* labels when the victim was a data datagram.
        pub(crate) fn corrupted(&self, labels: Option<DataLabels>, conn: u32) {
            match labels {
                Some(l) => self.data_event(EventKind::Corrupted, l),
                None => self.record(EventKind::Corrupted, conn, WINDOW_NONE, FRAME_NONE, 0),
            }
        }

        /// Records a truncation; same labelling rules as [`corrupted`].
        pub(crate) fn truncated(&self, labels: Option<DataLabels>, conn: u32) {
            match labels {
                Some(l) => self.data_event(EventKind::Truncated, l),
                None => self.record(EventKind::Truncated, conn, WINDOW_NONE, FRAME_NONE, 0),
            }
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use crate::wire::{DataLabels, Msg};

    /// No-op stand-in; see the `telemetry`-feature variant.
    #[derive(Debug, Clone, Default)]
    pub struct SessionRecorder;

    impl SessionRecorder {
        /// A recorder hook that records nothing (the only kind in this
        /// feature state).
        pub fn disabled() -> Self {
            SessionRecorder
        }

        /// Always `false` without the `telemetry` feature.
        pub fn is_enabled(&self) -> bool {
            false
        }

        #[inline(always)]
        pub(crate) fn queued(&self, _conn: u32, _window: u64, _frame: u32, _slot: u32) {}
        #[inline(always)]
        pub(crate) fn sent_msg(&self, _conn: u32, _msg: &Msg) {}
        #[inline(always)]
        pub(crate) fn refused_msg(&self, _conn: u32, _msg: &Msg) {}
        #[inline(always)]
        pub(crate) fn ack_received(&self, _conn: u32, _window: u64, _ack_seq: u64) {}
        #[inline(always)]
        pub(crate) fn nack_received(&self, _conn: u32, _window: u64, _frame: u32) {}
        #[inline(always)]
        pub(crate) fn ack_timeout(&self, _conn: u32, _window: u64, _attempts: u32) {}
        #[inline(always)]
        pub(crate) fn shed(&self, _conn: u32, _window: u64, _frame: u32) {}
        #[inline(always)]
        pub(crate) fn delivered(&self, _c: u32, _w: u64, _f: u32, _frag: u16, _retx: bool) {}
        #[inline(always)]
        pub(crate) fn bad_fragment(&self, _conn: u32, _window: u64, _frame: u32, _frag: u16) {}
        #[inline(always)]
        pub(crate) fn ignored(&self, _c: u32, _w: u64, _f: u32, _frag: u16, _retx: bool) {}
        #[inline(always)]
        pub(crate) fn reassembled(&self, _conn: u32, _window: u64, _frame: u32, _frags: u16) {}
        #[inline(always)]
        pub(crate) fn abandoned(&self, _conn: u32, _window: u64, _frame: u32) {}
        #[inline(always)]
        pub(crate) fn window_closed(&self, _conn: u32, _window: u64, _frames_total: u32) {}
        #[inline(always)]
        pub(crate) fn ack_sent(&self, _conn: u32, _window: u64, _ack_seq: u64) {}
        #[inline(always)]
        pub(crate) fn nack_sent(&self, _conn: u32, _window: u64, _frame: u32, _round: u32) {}
        #[inline(always)]
        pub(crate) fn decode_error(&self, _conn: u32) {}
        #[inline(always)]
        pub(crate) fn forwarded_data(&self, _labels: DataLabels) {}
        #[inline(always)]
        pub(crate) fn dropped_data(&self, _labels: DataLabels) {}
        #[inline(always)]
        pub(crate) fn dropped_control(&self, _conn: u32, _type_byte: u8) {}
        #[inline(always)]
        pub(crate) fn duplicated(&self, _labels: DataLabels) {}
        #[inline(always)]
        pub(crate) fn reordered(&self, _labels: DataLabels) {}
        #[inline(always)]
        pub(crate) fn corrupted(&self, _labels: Option<DataLabels>, _conn: u32) {}
        #[inline(always)]
        pub(crate) fn truncated(&self, _labels: Option<DataLabels>, _conn: u32) {}
    }
}

pub use imp::SessionRecorder;
