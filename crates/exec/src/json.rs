//! Deterministic JSON rendering for sweep result artifacts.
//!
//! The acceptance bar for the parallel executor is *byte-identical*
//! `results/*.json` across worker counts, so the writer must be fully
//! deterministic: objects keep insertion order, floats render with Rust's
//! shortest-roundtrip `Display` (platform-independent), and nothing
//! depends on hash iteration order. Non-finite floats render as `null`
//! (JSON has no NaN/Inf).

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (rendered without a fraction).
    Int(i64),
    /// A double; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped per RFC 8259).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object in **insertion order** — no sorting, no hashing.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(entries) => entries.push((key.to_string(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Renders to a compact single-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation and a trailing newline —
    /// the format of the `results/*.json` artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_f64(*f, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest-roundtrip Display is deterministic across
    // platforms. Force a fraction so integral floats stay typed as
    // floats on re-read.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let mut obj = Json::object();
        obj.push("name", "fig11").push("cells", 27usize).push(
            "values",
            Json::Array(vec![Json::Float(0.5), Json::Int(-3), Json::Null]),
        );
        assert_eq!(
            obj.render(),
            r#"{"name":"fig11","cells":27,"values":[0.5,-3,null]}"#
        );
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut obj = Json::object();
        obj.push("z", 1usize).push("a", 2usize);
        assert_eq!(obj.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn floats_round_trip_and_stay_floats() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(0.1).render(), "0.1");
        assert_eq!(Json::Float(1.5e3).render(), "1500.0");
        assert_eq!(Json::Float(-0.25).render(), "-0.25");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn pretty_rendering() {
        let mut inner = Json::object();
        inner.push("x", 1usize);
        let mut obj = Json::object();
        obj.push(
            "rows",
            Json::Array(vec![Json::Object(match inner {
                Json::Object(e) => e,
                _ => unreachable!(),
            })]),
        );
        obj.push("empty", Json::Array(Vec::new()));
        let expected = "{\n  \"rows\": [\n    {\n      \"x\": 1\n    }\n  ],\n  \"empty\": []\n}\n";
        assert_eq!(obj.render_pretty(), expected);
    }
}
