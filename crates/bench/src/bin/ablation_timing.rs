//! Ablation — timing variation of the recovery schemes.
//!
//! The abstract's motivation for error spreading: classical error handling
//! "introduc\[es\] timing variations, which is unacceptable for isochronous
//! traffic". This experiment measures per-frame delivery latency and
//! jitter for each Fig. 4 block: spreading is a pure reordering inside an
//! already-buffered window (no added per-frame delay variance at the
//! playout point), while retransmission visibly stretches the latency tail
//! of exactly the frames it rescues.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin ablation_timing -- --jobs 4
//! ```

use espread_bench::{paper_source, sweep};
use espread_exec::Json;
use espread_protocol::{Ordering, ProtocolConfig, Recovery, Session};

fn main() {
    println!("Per-frame delivery timing by scheme (Pbad=0.7, 60 windows, seed 11)\n");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>8} {:>9}",
        "scheme", "mean lat ms", "max lat ms", "jitter ms", "late", "mean CLF"
    );
    let blocks: [(&str, Ordering, Recovery); 4] = [
        ("in-order, none", Ordering::InOrder, Recovery::None),
        (
            "in-order + retransmit",
            Ordering::InOrder,
            Recovery::Retransmit,
        ),
        ("spread, none", Ordering::spread(), Recovery::None),
        (
            "spread + retransmit",
            Ordering::spread(),
            Recovery::Retransmit,
        ),
    ];

    let grid: Vec<(Ordering, Recovery)> = blocks
        .iter()
        .map(|&(_, ordering, recovery)| (ordering, recovery))
        .collect();
    let reports = sweep::executor("ablation_timing").run(grid, |_, (ordering, recovery)| {
        let cfg = ProtocolConfig::paper(0.7, 11)
            .with_ordering(ordering)
            .with_recovery(recovery);
        Session::new(cfg, paper_source(2, 60, 1)).run()
    });

    let mut rows = Vec::new();
    for ((name, _, _), report) in blocks.into_iter().zip(&reports) {
        let t = &report.timing;
        let mean_clf = report.summary().mean_clf;
        println!(
            "{name:<26} {:>12.1} {:>12.1} {:>12.1} {:>8} {:>9.2}",
            t.mean_latency_us / 1000.0,
            t.max_latency_us as f64 / 1000.0,
            t.jitter_us / 1000.0,
            t.late_frames,
            mean_clf
        );
        let mut row = Json::object();
        row.push("scheme", name)
            .push("mean_latency_us", t.mean_latency_us)
            .push("max_latency_us", t.max_latency_us)
            .push("jitter_us", t.jitter_us)
            .push("late_frames", t.late_frames)
            .push("mean_clf", mean_clf);
        rows.push(row);
    }
    println!("\nreading: spreading changes *which* frames a burst hits, not *when* frames");
    println!("arrive — its jitter matches the in-order baseline, while retransmission");
    println!("adds a latency tail (the recovered frames complete a NACK round later).");
    println!("All schemes stay inside the one-window start-up delay, so nothing is late.");

    sweep::write_results(
        "ablation_timing",
        &sweep::results_doc("ablation_timing", rows),
    );
    espread_bench::write_telemetry_snapshot("ablation_timing");
}
