//! The case runner behind the [`crate::proptest!`] macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::TestRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
///
/// Returned (not panicked) from the generated test body so that `?` and
/// early `return Err(...)` work inside `proptest!` bodies, matching the
/// upstream crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be regenerated.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a, for deriving a stable per-test seed from its name.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `f` until `config.cases` cases pass.
///
/// `f` receives the case RNG and a scratch string it must fill with a
/// human-readable description of the generated inputs *before* running the
/// test body; on failure that description and the case seed are printed
/// before the test panics. Cases rejected via `prop_assume!` do not count,
/// up to a bounded rejection budget.
pub fn run<F>(config: &ProptestConfig, name: &str, f: F)
where
    F: Fn(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejections = config.cases.saturating_mul(16).max(1024);
    let mut case = 0u64;
    while passed < config.cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        case += 1;
        let mut rng = TestRng::new(seed);
        let mut desc = String::new();
        match catch_unwind(AssertUnwindSafe(|| f(&mut rng, &mut desc))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejections,
                    "proptest '{name}': too many prop_assume! rejections \
                     ({rejected} after {passed} passing cases)"
                );
            }
            Ok(Err(TestCaseError::Fail(reason))) => {
                panic!(
                    "proptest '{name}' failed at case {case} (seed {seed:#018x}): {reason}\n\
                     minimal failing input (unshrunk): {desc}"
                );
            }
            Err(payload) => {
                eprintln!(
                    "proptest '{name}' failed at case {case} (seed {seed:#018x})\n\
                     minimal failing input (unshrunk): {desc}"
                );
                resume_unwind(payload);
            }
        }
    }
}
