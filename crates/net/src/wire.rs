//! The versioned binary wire codec.
//!
//! Every datagram starts with a 10-byte header — magic (4), version (1),
//! message type (1), connection id (4) — followed by a type-specific body.
//! All integers are big-endian. Decoding is fully length-checked: a
//! malformed, truncated, or alien datagram yields a [`WireError`], never a
//! panic, so a hostile peer cannot crash the server or client.
//!
//! | type | message | body |
//! |---|---|---|
//! | 0 | [`Msg::Hello`] | nonce u64, buffer u64, startup ms u64, ordering u8 |
//! | 1 | [`Msg::Accept`] | nonce u64, frames/window u16, windows u32, packet u32, fps u32, layer sizes (u8 count × u16), critical frames (u16 count × u16) |
//! | 2 | [`Msg::Reject`] | nonce u64, reason (u16 len × utf-8) |
//! | 3 | [`Msg::Begin`] | — |
//! | 4 | [`Msg::Data`] | window u64, frame u16, frag u16, frags u16, layer u8, slot u16, flags u8, ldu bytes u32, payload (u16 len × bytes) |
//! | 5 | [`Msg::WindowEnd`] | window u64, sent-at µs u64, last u8 |
//! | 6 | [`Msg::WindowAck`] | ack seq u64, window u64, echo µs u64, bursts (u8 count × u16) |
//! | 7 | [`Msg::CriticalNack`] | window u64, missing (u16 count × u16) |
//! | 8 | [`Msg::Bye`] | reason u8 |
//! | 9 | [`Msg::ByeAck`] | — |
//! | 10 | [`Msg::Parity`] | window u64, group u32, m u8, parity index u8, shard bytes u16, members (u8 count × (frame u16, frag u16, frags u16)), payload (shard bytes) |
//! | 11 | [`Msg::Busy`] | retry-after ms u32 |
//!
//! # Wire limits
//!
//! Every counted field has a hard ceiling fixed by its wire width. The
//! encoder *refuses* anything larger with [`WireError::Oversize`] — it
//! never silently truncates a list or narrows an index, because a peer
//! that decodes a *different* session config than the one offered fails
//! in ways no checksum catches.
//!
//! | field | limit | constant |
//! |---|---|---|
//! | `Data` frame index | 65 535 | [`MAX_FRAME_INDEX`] |
//! | `Accept` layer sizes | 255 entries | [`MAX_LAYERS`] |
//! | `Accept` critical frames | 65 535 entries | [`MAX_CRITICAL_FRAMES`] |
//! | `Reject` reason | 65 535 bytes | [`MAX_REASON_BYTES`] |
//! | `WindowAck` per-layer bursts | 255 entries | [`MAX_BURST_ENTRIES`] |
//! | `CriticalNack` missing frames | 65 535 entries | [`MAX_NACK_ENTRIES`] |
//! | `Parity` group members | 255 entries | [`MAX_PARITY_MEMBERS`] |
//!
//! Session negotiation enforces the same ceilings up front
//! (`NetServerConfig::validate` rejects `frames_per_window > 65 535`), so
//! a well-configured stack never trips them; [`try_encode`] is the
//! last-line guard for untrusted or computed sizes.

use std::error::Error;
use std::fmt;

use espread_protocol::{Fragment, Ldu, Ordering};

/// The protocol magic, `"ESPR"` as a big-endian u32.
pub const MAGIC: u32 = 0x4553_5052;

/// Wire protocol version this codec speaks.
pub const VERSION: u8 = 1;

/// Size of the fixed datagram header in bytes.
pub const HEADER_BYTES: usize = 10;

/// Connection id used before a session exists (handshake datagrams).
pub const CONN_NONE: u32 = 0;

/// Largest frame index a [`Msg::Data`] datagram can carry (u16 on the
/// wire), and therefore the largest legal `frames_per_window - 1`.
pub const MAX_FRAME_INDEX: usize = u16::MAX as usize;

/// Largest layer-size list an [`Msg::Accept`] can carry (u8 count).
pub const MAX_LAYERS: usize = u8::MAX as usize;

/// Largest critical-frame list an [`Msg::Accept`] can carry (u16 count).
pub const MAX_CRITICAL_FRAMES: usize = u16::MAX as usize;

/// Largest [`Msg::Reject`] reason length in bytes (u16 length prefix).
pub const MAX_REASON_BYTES: usize = u16::MAX as usize;

/// Largest per-layer burst list a [`Msg::WindowAck`] can carry (u8 count).
pub const MAX_BURST_ENTRIES: usize = u8::MAX as usize;

/// Largest missing-frame list a [`Msg::CriticalNack`] can carry (u16
/// count).
pub const MAX_NACK_ENTRIES: usize = u16::MAX as usize;

/// Largest member list a [`Msg::Parity`] can carry (u8 count) — also the
/// erasure code's `k` ceiling, matching GF(256)'s symbol budget.
pub const MAX_PARITY_MEMBERS: usize = u8::MAX as usize;

/// Codec failures; each names the malformed-datagram class it rejects.
/// All but [`WireError::Oversize`] are decode-side; `Oversize` is the
/// encode-side refusal to narrow a field past its wire width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The datagram is shorter than the fixed header.
    ShortHeader {
        /// Bytes actually present.
        have: usize,
    },
    /// The magic number is not [`MAGIC`] — an alien datagram.
    BadMagic(u32),
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// The message-type byte names no known message.
    UnknownType(u8),
    /// The body ends before a fixed-width field or counted list.
    Truncated {
        /// Bytes the field needs.
        need: usize,
        /// Bytes remaining in the datagram.
        have: usize,
    },
    /// A length field claims more payload than the datagram carries.
    Overlength {
        /// Bytes the length field declares.
        declared: usize,
        /// Bytes remaining in the datagram.
        have: usize,
    },
    /// Bytes remain after a complete message.
    TrailingBytes(usize),
    /// A field decoded but holds a semantically invalid value.
    BadValue(&'static str),
    /// Encode-side refusal: a field or list does not fit its wire width.
    /// Encoding it anyway would silently truncate — the sender and
    /// receiver would disagree about what was sent.
    Oversize {
        /// Which field overflowed.
        field: &'static str,
        /// The field's wire ceiling (see the module-level limits table).
        max: usize,
        /// The value or list length actually supplied.
        actual: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::ShortHeader { have } => {
                write!(f, "short header: {have} bytes < {HEADER_BYTES}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::Truncated { need, have } => {
                write!(f, "truncated body: need {need} bytes, have {have}")
            }
            WireError::Overlength { declared, have } => {
                write!(
                    f,
                    "overlength field: declares {declared} bytes, have {have}"
                )
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadValue(what) => write!(f, "invalid field value: {what}"),
            WireError::Oversize { field, max, actual } => {
                write!(f, "oversize {field}: {actual} exceeds wire limit {max}")
            }
        }
    }
}

impl Error for WireError {}

/// The client's opening handshake datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Client-chosen nonce identifying this connection attempt (retries
    /// reuse it, so the server can answer duplicates idempotently).
    pub nonce: u64,
    /// Client decoder/reassembly buffer in bytes (§4.1 sizing check).
    pub buffer_bytes: u64,
    /// Largest tolerated start-up delay in milliseconds.
    pub max_startup_delay_ms: u64,
    /// Requested transmission ordering.
    pub ordering: Ordering,
}

/// The server's acceptance: the negotiated session shape the client needs
/// to size its per-layer slot tables and reassembly state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accept {
    /// Echo of the client's nonce.
    pub nonce: u64,
    /// Frames (LDUs) per buffer window.
    pub frames_per_window: u16,
    /// Total buffer windows the stream will carry.
    pub windows_total: u32,
    /// Negotiated packet payload size in bytes.
    pub packet_bytes: u32,
    /// Stream frame rate.
    pub fps: u32,
    /// Per-window layer sizes, most critical first.
    pub layer_sizes: Vec<u16>,
    /// Playout indices of the critical (anchor) frames per window.
    pub critical_frames: Vec<u16>,
}

/// The server's refusal, carrying the negotiation error text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// Echo of the client's nonce.
    pub nonce: u64,
    /// Human-readable refusal reason.
    pub reason: String,
}

/// One media fragment on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataMsg {
    /// The fragment's protocol labelling (window, frame, layer, slot, …).
    pub fragment: Fragment,
    /// The whole LDU this fragment belongs to (validated non-zero via
    /// [`Ldu::try_new`] on decode).
    pub ldu: Ldu,
    /// Bytes of media payload carried after the header.
    pub payload_len: u16,
}

/// End-of-window marker; also the RTT probe (the client echoes
/// `sent_at_us` in its ACK).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowEnd {
    /// The window just finished.
    pub window: u64,
    /// Server session clock at send time, in microseconds.
    pub sent_at_us: u64,
    /// Whether this was the stream's final window.
    pub last: bool,
}

/// The sequence-numbered end-of-window ACK (§4.2) with per-layer burst
/// observations and the RTT echo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowAckMsg {
    /// Monotone ACK sequence number; the server keeps only the highest.
    pub ack_seq: u64,
    /// Window the feedback describes.
    pub window: u64,
    /// Echo of the triggering [`WindowEnd::sent_at_us`].
    pub echo_us: u64,
    /// Largest run of lost transmission slots per layer.
    pub per_layer_burst: Vec<u16>,
}

/// Reactive report of critical frames still missing at window end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalNackMsg {
    /// Window the NACK describes.
    pub window: u64,
    /// Missing critical frame indices (playout positions).
    pub missing: Vec<u16>,
}

/// One member fragment of a parity group — enough labelling for the
/// client to identify (and, after recovery, reconstruct) the shard even
/// when the member's data datagram never arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityMember {
    /// Frame index within the window.
    pub frame: u16,
    /// Fragment index within the frame.
    pub frag: u16,
    /// The frame's total fragment count (lets the client size the
    /// frame's reassembly bitmap for wholly lost frames).
    pub frags_total: u16,
}

/// A parity shard over a transmission-order group of data fragments.
///
/// The server emits `m` of these after every `group_k` in-scope
/// fragments; the member list names exactly which fragments the shard
/// protects, in transmission order. Like [`DataMsg`], the parity payload
/// is zero-filled on encode and discarded on decode — the traces carry
/// sizes, not content, so the wire stays byte-accurate (the bandwidth
/// overhead the frontier bench charts is real) without shipping bytes
/// the simulator never had.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityMsg {
    /// Window the group belongs to.
    pub window: u64,
    /// Group sequence number within the window (transmission order).
    pub group: u32,
    /// Parity shards in this group (`m` of the `(k, m)` code).
    pub m: u8,
    /// Which of the `m` shards this datagram carries (`0..m`).
    pub parity_index: u8,
    /// Shard length in bytes — every member fragment is padded to this
    /// for the GF(256) arithmetic, and the payload is exactly this long.
    pub shard_bytes: u16,
    /// The protected fragments, in transmission order (`k` entries).
    pub members: Vec<ParityMember>,
}

/// Why a [`Msg::Bye`] was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByeReason {
    /// The stream completed normally.
    Complete,
    /// The sender is tearing the session down early.
    Aborted,
}

/// Every message the transport speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → server connection request.
    Hello(Hello),
    /// Server → client handshake acceptance.
    Accept(Accept),
    /// Server → client handshake refusal.
    Reject(Reject),
    /// Client → server: handshake complete, start streaming.
    Begin,
    /// Server → client media fragment.
    Data(DataMsg),
    /// Server → client end-of-window marker.
    WindowEnd(WindowEnd),
    /// Client → server window feedback.
    WindowAck(WindowAckMsg),
    /// Client → server critical-recovery request.
    CriticalNack(CriticalNackMsg),
    /// Graceful teardown.
    Bye(ByeReason),
    /// Teardown acknowledgement.
    ByeAck,
    /// Server → client erasure-code parity shard.
    Parity(ParityMsg),
    /// Server → client admission refusal: the server is at its session
    /// cap. Unlike [`Msg::Reject`] (a negotiation failure the client
    /// should not retry), `Busy` is transient — the client may retry
    /// after `retry_after_ms` milliseconds (plus jitter of its own).
    Busy {
        /// Server's suggested wait before the next Hello, in ms.
        retry_after_ms: u32,
    },
}

impl Msg {
    /// The message's wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Msg::Hello(_) => 0,
            Msg::Accept(_) => 1,
            Msg::Reject(_) => 2,
            Msg::Begin => 3,
            Msg::Data(_) => 4,
            Msg::WindowEnd(_) => 5,
            Msg::WindowAck(_) => 6,
            Msg::CriticalNack(_) => 7,
            Msg::Bye(_) => 8,
            Msg::ByeAck => 9,
            Msg::Parity(_) => 10,
            Msg::Busy { .. } => 11,
        }
    }

    /// Whether this is a media-data datagram (the class the proxy's
    /// Gilbert–Elliott loss process applies to).
    pub fn is_data(&self) -> bool {
        matches!(self, Msg::Data(_))
    }
}

fn ordering_to_byte(ordering: Ordering) -> u8 {
    match ordering {
        Ordering::InOrder => 0,
        Ordering::Spread { adaptive: true } => 1,
        Ordering::Spread { adaptive: false } => 2,
        Ordering::Ibo => 3,
    }
}

fn ordering_from_byte(b: u8) -> Result<Ordering, WireError> {
    match b {
        0 => Ok(Ordering::InOrder),
        1 => Ok(Ordering::Spread { adaptive: true }),
        2 => Ok(Ordering::Spread { adaptive: false }),
        3 => Ok(Ordering::Ibo),
        _ => Err(WireError::BadValue("unknown ordering code")),
    }
}

/// Rejects `actual` values past a field's wire ceiling.
fn fits(field: &'static str, actual: usize, max: usize) -> Result<(), WireError> {
    if actual > max {
        return Err(WireError::Oversize { field, max, actual });
    }
    Ok(())
}

/// Encodes `msg` for connection `conn_id`, refusing any field that does
/// not fit its wire width (see the module-level limits table).
///
/// Data payload bytes are zero-filled: the simulator's traces carry frame
/// *sizes*, not content, so the wire stays byte-accurate without shipping
/// fake media.
///
/// # Errors
///
/// Returns [`WireError::Oversize`] naming the offending field — never
/// silently truncates a list or narrows an index.
pub fn try_encode(conn_id: u32, msg: &Msg) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(64);
    try_encode_into(conn_id, msg, &mut out)?;
    Ok(out)
}

/// Encodes `msg` into `out`, clearing it first — the reusable-buffer
/// variant of [`try_encode`] for hot send paths (one scratch buffer per
/// event loop instead of an allocation per datagram). `out` keeps its
/// capacity across calls; on error it is left cleared.
///
/// # Errors
///
/// Returns [`WireError::Oversize`] naming the offending field — never
/// silently truncates a list or narrows an index.
pub fn try_encode_into(conn_id: u32, msg: &Msg, out: &mut Vec<u8>) -> Result<(), WireError> {
    out.clear();
    try_encode_append(conn_id, msg, out)?;
    Ok(())
}

/// Encodes `msg` *appended* to `out` without clearing it, returning the
/// byte range of the new datagram — the scatter-buffer variant of
/// [`try_encode_into`] for batching a whole window of datagrams into one
/// buffer. On error `out` is truncated back to its prior length, so a
/// refused message never leaves half-written bytes in the batch.
///
/// # Errors
///
/// Returns [`WireError::Oversize`] naming the offending field — never
/// silently truncates a list or narrows an index.
pub fn try_encode_append(
    conn_id: u32,
    msg: &Msg,
    out: &mut Vec<u8>,
) -> Result<std::ops::Range<usize>, WireError> {
    let start = out.len();
    match encode_body(conn_id, msg, out) {
        Ok(()) => Ok(start..out.len()),
        Err(e) => {
            out.truncate(start);
            Err(e)
        }
    }
}

fn encode_body(conn_id: u32, msg: &Msg, out: &mut Vec<u8>) -> Result<(), WireError> {
    match msg {
        Msg::Accept(a) => {
            fits("accept.layer_sizes", a.layer_sizes.len(), MAX_LAYERS)?;
            fits(
                "accept.critical_frames",
                a.critical_frames.len(),
                MAX_CRITICAL_FRAMES,
            )?;
        }
        Msg::Reject(r) => fits("reject.reason", r.reason.len(), MAX_REASON_BYTES)?,
        Msg::Data(d) => fits("data.frame", d.fragment.frame, MAX_FRAME_INDEX)?,
        Msg::WindowAck(a) => fits(
            "window_ack.per_layer_burst",
            a.per_layer_burst.len(),
            MAX_BURST_ENTRIES,
        )?,
        Msg::CriticalNack(n) => fits("critical_nack.missing", n.missing.len(), MAX_NACK_ENTRIES)?,
        Msg::Parity(p) => fits("parity.members", p.members.len(), MAX_PARITY_MEMBERS)?,
        Msg::Hello(_)
        | Msg::Begin
        | Msg::WindowEnd(_)
        | Msg::Bye(_)
        | Msg::ByeAck
        | Msg::Busy { .. } => {}
    }
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.push(VERSION);
    out.push(msg.type_byte());
    out.extend_from_slice(&conn_id.to_be_bytes());
    match msg {
        Msg::Hello(h) => {
            out.extend_from_slice(&h.nonce.to_be_bytes());
            out.extend_from_slice(&h.buffer_bytes.to_be_bytes());
            out.extend_from_slice(&h.max_startup_delay_ms.to_be_bytes());
            out.push(ordering_to_byte(h.ordering));
        }
        Msg::Accept(a) => {
            out.extend_from_slice(&a.nonce.to_be_bytes());
            out.extend_from_slice(&a.frames_per_window.to_be_bytes());
            out.extend_from_slice(&a.windows_total.to_be_bytes());
            out.extend_from_slice(&a.packet_bytes.to_be_bytes());
            out.extend_from_slice(&a.fps.to_be_bytes());
            out.push(a.layer_sizes.len() as u8);
            for &s in &a.layer_sizes {
                out.extend_from_slice(&s.to_be_bytes());
            }
            out.extend_from_slice(&(a.critical_frames.len() as u16).to_be_bytes());
            for &f in &a.critical_frames {
                out.extend_from_slice(&f.to_be_bytes());
            }
        }
        Msg::Reject(r) => {
            out.extend_from_slice(&r.nonce.to_be_bytes());
            let bytes = r.reason.as_bytes();
            out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
            out.extend_from_slice(bytes);
        }
        Msg::Begin | Msg::ByeAck => {}
        Msg::Data(d) => {
            let f = &d.fragment;
            out.extend_from_slice(&f.window.to_be_bytes());
            out.extend_from_slice(&(f.frame as u16).to_be_bytes());
            out.extend_from_slice(&f.frag.to_be_bytes());
            out.extend_from_slice(&f.frags_total.to_be_bytes());
            out.push(f.layer);
            out.extend_from_slice(&f.layer_slot.to_be_bytes());
            out.push(u8::from(f.retransmit));
            out.extend_from_slice(&d.ldu.size_bytes.to_be_bytes());
            out.extend_from_slice(&d.payload_len.to_be_bytes());
            out.resize(out.len() + usize::from(d.payload_len), 0);
        }
        Msg::WindowEnd(e) => {
            out.extend_from_slice(&e.window.to_be_bytes());
            out.extend_from_slice(&e.sent_at_us.to_be_bytes());
            out.push(u8::from(e.last));
        }
        Msg::WindowAck(a) => {
            out.extend_from_slice(&a.ack_seq.to_be_bytes());
            out.extend_from_slice(&a.window.to_be_bytes());
            out.extend_from_slice(&a.echo_us.to_be_bytes());
            out.push(a.per_layer_burst.len() as u8);
            for &b in &a.per_layer_burst {
                out.extend_from_slice(&b.to_be_bytes());
            }
        }
        Msg::CriticalNack(n) => {
            out.extend_from_slice(&n.window.to_be_bytes());
            out.extend_from_slice(&(n.missing.len() as u16).to_be_bytes());
            for &f in &n.missing {
                out.extend_from_slice(&f.to_be_bytes());
            }
        }
        Msg::Bye(reason) => {
            out.push(match reason {
                ByeReason::Complete => 0,
                ByeReason::Aborted => 1,
            });
        }
        Msg::Parity(p) => {
            out.extend_from_slice(&p.window.to_be_bytes());
            out.extend_from_slice(&p.group.to_be_bytes());
            out.push(p.m);
            out.push(p.parity_index);
            out.extend_from_slice(&p.shard_bytes.to_be_bytes());
            out.push(p.members.len() as u8);
            for member in &p.members {
                out.extend_from_slice(&member.frame.to_be_bytes());
                out.extend_from_slice(&member.frag.to_be_bytes());
                out.extend_from_slice(&member.frags_total.to_be_bytes());
            }
            out.resize(out.len() + usize::from(p.shard_bytes), 0);
        }
        Msg::Busy { retry_after_ms } => {
            out.extend_from_slice(&retry_after_ms.to_be_bytes());
        }
    }
    Ok(())
}

/// Encodes `msg` for connection `conn_id` into a fresh datagram buffer.
///
/// Infallible convenience for messages whose sizes are known to respect
/// the wire limits (session negotiation enforces them). Send paths that
/// handle untrusted or computed sizes use [`try_encode`] and count
/// refusals instead.
///
/// # Panics
///
/// Panics if a field exceeds its wire limit — the bug the limits table
/// exists to catch. Use [`try_encode`] where that is reachable.
pub fn encode(conn_id: u32, msg: &Msg) -> Vec<u8> {
    match try_encode(conn_id, msg) {
        Ok(bytes) => bytes,
        Err(e) => panic!("wire::encode on oversize message: {e}"),
    }
}

/// Bounds-checked big-endian reader over a datagram body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `count`-element list of u16s into `out`, checking the
    /// length *before* reserving so a hostile count cannot balloon memory.
    fn u16_list_into(&mut self, count: usize, out: &mut Vec<u16>) -> Result<(), WireError> {
        if self.remaining() < count * 2 {
            return Err(WireError::Truncated {
                need: count * 2,
                have: self.remaining(),
            });
        }
        out.reserve(count);
        for _ in 0..count {
            out.push(self.u16()?);
        }
        Ok(())
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            Err(WireError::TrailingBytes(self.remaining()))
        } else {
            Ok(())
        }
    }
}

/// Peeks at a datagram's message-type byte without a full decode — the
/// proxy uses this to classify data vs. control traffic. Returns `None`
/// for anything that is not a well-formed header of ours.
pub fn peek_type(datagram: &[u8]) -> Option<u8> {
    if datagram.len() < HEADER_BYTES {
        return None;
    }
    let magic = u32::from_be_bytes([datagram[0], datagram[1], datagram[2], datagram[3]]);
    if magic != MAGIC || datagram[4] != VERSION {
        return None;
    }
    Some(datagram[5])
}

/// Peeks at a datagram's connection id without a full decode. Returns
/// `None` for anything that is not a well-formed header of ours.
pub fn peek_conn(datagram: &[u8]) -> Option<u32> {
    peek_type(datagram)?;
    Some(u32::from_be_bytes([
        datagram[6],
        datagram[7],
        datagram[8],
        datagram[9],
    ]))
}

/// The addressing labels of a data datagram, peeked without decoding the
/// payload — what the fault proxy stamps on its flight-recorder events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataLabels {
    /// Connection id from the header.
    pub conn: u32,
    /// Window index.
    pub window: u64,
    /// Frame index within the window.
    pub frame: u16,
    /// Fragment index within the frame.
    pub frag: u16,
    /// Whether the retransmit flag is set.
    pub retransmit: bool,
}

/// Peeks the labels of a `Msg::Data` datagram (fixed offsets; no payload
/// parse). Returns `None` for control datagrams, aliens, or anything too
/// short to carry the full label block.
pub fn peek_data_labels(datagram: &[u8]) -> Option<DataLabels> {
    if peek_type(datagram)? != 4 {
        return None;
    }
    // Header (10) + window u64 + frame u16 + frag u16 + frags u16 +
    // layer u8 + slot u16 + flags u8 = 28 bytes minimum.
    if datagram.len() < HEADER_BYTES + 18 {
        return None;
    }
    let b = |i: usize| datagram[HEADER_BYTES + i];
    Some(DataLabels {
        conn: u32::from_be_bytes([datagram[6], datagram[7], datagram[8], datagram[9]]),
        window: u64::from_be_bytes([b(0), b(1), b(2), b(3), b(4), b(5), b(6), b(7)]),
        frame: u16::from_be_bytes([b(8), b(9)]),
        frag: u16::from_be_bytes([b(10), b(11)]),
        retransmit: b(17) & 1 != 0,
    })
}

/// Reusable buffer pools for the decode hot path.
///
/// `decode` allocates fresh `Vec`s and `String`s for every counted field
/// — fine for handshakes, wasteful per-datagram. A long-lived receive loop
/// keeps one `DecodeScratch`, decodes with [`decode_with`], and hands each
/// fully-consumed message back via [`DecodeScratch::recycle`]; the owned
/// buffers inside return to the pools and the next decode reuses their
/// capacity instead of allocating.
///
/// Ownership rule: the buffers inside a decoded [`Msg`] belong to the
/// message until `recycle` is called — there is no aliasing, so dropping a
/// message instead of recycling it is always safe (the pool just stays
/// colder). Pools are bounded ([`DecodeScratch::MAX_POOLED`] per kind), so
/// a recycle storm cannot grow memory without limit.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    u16s: Vec<Vec<u16>>,
    members: Vec<Vec<ParityMember>>,
    strings: Vec<String>,
}

impl DecodeScratch {
    /// Most spare buffers kept per pool; further recycles are dropped.
    pub const MAX_POOLED: usize = 8;

    fn take_u16s(&mut self) -> Vec<u16> {
        self.u16s.pop().unwrap_or_default()
    }

    fn take_members(&mut self) -> Vec<ParityMember> {
        self.members.pop().unwrap_or_default()
    }

    fn take_string(&mut self) -> String {
        self.strings.pop().unwrap_or_default()
    }

    /// Returns a consumed message's owned buffers to the pools so the next
    /// [`decode_with`] reuses their capacity. Messages with no heap fields
    /// are dropped unchanged.
    pub fn recycle(&mut self, msg: Msg) {
        match msg {
            Msg::Accept(a) => {
                self.pool_u16s(a.layer_sizes);
                self.pool_u16s(a.critical_frames);
            }
            Msg::Reject(r) => {
                if self.strings.len() < Self::MAX_POOLED {
                    let mut s = r.reason;
                    s.clear();
                    self.strings.push(s);
                }
            }
            Msg::WindowAck(a) => self.pool_u16s(a.per_layer_burst),
            Msg::CriticalNack(n) => self.pool_u16s(n.missing),
            Msg::Parity(p) => {
                if self.members.len() < Self::MAX_POOLED {
                    let mut m = p.members;
                    m.clear();
                    self.members.push(m);
                }
            }
            Msg::Hello(_)
            | Msg::Begin
            | Msg::Data(_)
            | Msg::WindowEnd(_)
            | Msg::Bye(_)
            | Msg::ByeAck
            | Msg::Busy { .. } => {}
        }
    }

    fn pool_u16s(&mut self, mut v: Vec<u16>) {
        if self.u16s.len() < Self::MAX_POOLED {
            v.clear();
            self.u16s.push(v);
        }
    }
}

/// Decodes one datagram into `(conn_id, message)`.
///
/// # Errors
///
/// Returns a [`WireError`] naming the malformed-datagram class; never
/// panics, whatever the input bytes.
pub fn decode(datagram: &[u8]) -> Result<(u32, Msg), WireError> {
    decode_with(datagram, &mut DecodeScratch::default())
}

/// [`decode`] drawing counted-field buffers from a caller-owned
/// [`DecodeScratch`] — the zero-steady-state-allocation form for receive
/// loops. Behavior is byte-for-byte identical to [`decode`]; only where
/// the `Vec`/`String` capacity comes from differs.
///
/// # Errors
///
/// Returns a [`WireError`] naming the malformed-datagram class; never
/// panics, whatever the input bytes.
pub fn decode_with(datagram: &[u8], scratch: &mut DecodeScratch) -> Result<(u32, Msg), WireError> {
    if datagram.len() < HEADER_BYTES {
        return Err(WireError::ShortHeader {
            have: datagram.len(),
        });
    }
    let magic = u32::from_be_bytes([datagram[0], datagram[1], datagram[2], datagram[3]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if datagram[4] != VERSION {
        return Err(WireError::BadVersion(datagram[4]));
    }
    let type_byte = datagram[5];
    let conn_id = u32::from_be_bytes([datagram[6], datagram[7], datagram[8], datagram[9]]);
    let mut c = Cursor::new(&datagram[HEADER_BYTES..]);
    let msg = match type_byte {
        0 => {
            let nonce = c.u64()?;
            let buffer_bytes = c.u64()?;
            let max_startup_delay_ms = c.u64()?;
            let ordering = ordering_from_byte(c.u8()?)?;
            Msg::Hello(Hello {
                nonce,
                buffer_bytes,
                max_startup_delay_ms,
                ordering,
            })
        }
        1 => {
            let nonce = c.u64()?;
            let frames_per_window = c.u16()?;
            let windows_total = c.u32()?;
            let packet_bytes = c.u32()?;
            let fps = c.u32()?;
            let n_layers = usize::from(c.u8()?);
            let mut layer_sizes = scratch.take_u16s();
            c.u16_list_into(n_layers, &mut layer_sizes)?;
            let n_critical = usize::from(c.u16()?);
            let mut critical_frames = scratch.take_u16s();
            c.u16_list_into(n_critical, &mut critical_frames)?;
            Msg::Accept(Accept {
                nonce,
                frames_per_window,
                windows_total,
                packet_bytes,
                fps,
                layer_sizes,
                critical_frames,
            })
        }
        2 => {
            let nonce = c.u64()?;
            let len = usize::from(c.u16()?);
            if c.remaining() < len {
                return Err(WireError::Overlength {
                    declared: len,
                    have: c.remaining(),
                });
            }
            let bytes = c.take(len)?;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadValue("reject reason is not utf-8"))?;
            let mut reason = scratch.take_string();
            reason.push_str(text);
            Msg::Reject(Reject { nonce, reason })
        }
        3 => Msg::Begin,
        4 => {
            let window = c.u64()?;
            let frame = usize::from(c.u16()?);
            let frag = c.u16()?;
            let frags_total = c.u16()?;
            let layer = c.u8()?;
            let layer_slot = c.u16()?;
            let flags = c.u8()?;
            let ldu_bytes = c.u32()?;
            let ldu = Ldu::try_new(ldu_bytes).map_err(|_| WireError::BadValue("zero LDU size"))?;
            if frags_total == 0 {
                return Err(WireError::BadValue("zero fragment count"));
            }
            if frag >= frags_total {
                return Err(WireError::BadValue("fragment index out of range"));
            }
            let payload_len = c.u16()?;
            if c.remaining() < usize::from(payload_len) {
                return Err(WireError::Overlength {
                    declared: usize::from(payload_len),
                    have: c.remaining(),
                });
            }
            let _payload = c.take(usize::from(payload_len))?;
            Msg::Data(DataMsg {
                fragment: Fragment {
                    window,
                    frame,
                    frag,
                    frags_total,
                    layer,
                    layer_slot,
                    retransmit: flags & 1 != 0,
                },
                ldu,
                payload_len,
            })
        }
        5 => {
            let window = c.u64()?;
            let sent_at_us = c.u64()?;
            let last = c.u8()? != 0;
            Msg::WindowEnd(WindowEnd {
                window,
                sent_at_us,
                last,
            })
        }
        6 => {
            let ack_seq = c.u64()?;
            let window = c.u64()?;
            let echo_us = c.u64()?;
            let n = usize::from(c.u8()?);
            let mut per_layer_burst = scratch.take_u16s();
            c.u16_list_into(n, &mut per_layer_burst)?;
            Msg::WindowAck(WindowAckMsg {
                ack_seq,
                window,
                echo_us,
                per_layer_burst,
            })
        }
        7 => {
            let window = c.u64()?;
            let n = usize::from(c.u16()?);
            let mut missing = scratch.take_u16s();
            c.u16_list_into(n, &mut missing)?;
            Msg::CriticalNack(CriticalNackMsg { window, missing })
        }
        8 => Msg::Bye(match c.u8()? {
            0 => ByeReason::Complete,
            1 => ByeReason::Aborted,
            _ => return Err(WireError::BadValue("unknown bye reason")),
        }),
        9 => Msg::ByeAck,
        10 => {
            let window = c.u64()?;
            let group = c.u32()?;
            let m = c.u8()?;
            let parity_index = c.u8()?;
            let shard_bytes = c.u16()?;
            let count = usize::from(c.u8()?);
            if m == 0 {
                return Err(WireError::BadValue("zero parity count"));
            }
            if parity_index >= m {
                return Err(WireError::BadValue("parity index out of range"));
            }
            if count == 0 {
                return Err(WireError::BadValue("empty parity group"));
            }
            // Length-check the whole member block before reading it so a
            // hostile count cannot balloon the allocation.
            if c.remaining() < count * 6 {
                return Err(WireError::Truncated {
                    need: count * 6,
                    have: c.remaining(),
                });
            }
            let mut members = scratch.take_members();
            members.reserve(count);
            for _ in 0..count {
                let frame = c.u16()?;
                let frag = c.u16()?;
                let frags_total = c.u16()?;
                if frags_total == 0 {
                    return Err(WireError::BadValue("zero fragment count"));
                }
                if frag >= frags_total {
                    return Err(WireError::BadValue("fragment index out of range"));
                }
                members.push(ParityMember {
                    frame,
                    frag,
                    frags_total,
                });
            }
            if c.remaining() < usize::from(shard_bytes) {
                return Err(WireError::Overlength {
                    declared: usize::from(shard_bytes),
                    have: c.remaining(),
                });
            }
            let _payload = c.take(usize::from(shard_bytes))?;
            Msg::Parity(ParityMsg {
                window,
                group,
                m,
                parity_index,
                shard_bytes,
                members,
            })
        }
        11 => Msg::Busy {
            retry_after_ms: c.u32()?,
        },
        other => return Err(WireError::UnknownType(other)),
    };
    c.finish()?;
    Ok((conn_id, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Msg {
        Msg::Data(DataMsg {
            fragment: Fragment {
                window: 3,
                frame: 17,
                frag: 1,
                frags_total: 3,
                layer: 4,
                layer_slot: 9,
                retransmit: true,
            },
            ldu: Ldu::new(5000),
            payload_len: 904,
        })
    }

    fn all_messages() -> Vec<Msg> {
        vec![
            Msg::Hello(Hello {
                nonce: 0xDEAD_BEEF,
                buffer_bytes: 1024 * 1024,
                max_startup_delay_ms: 2000,
                ordering: Ordering::spread(),
            }),
            Msg::Accept(Accept {
                nonce: 0xDEAD_BEEF,
                frames_per_window: 24,
                windows_total: 20,
                packet_bytes: 2048,
                fps: 24,
                layer_sizes: vec![2, 2, 2, 2, 16],
                critical_frames: vec![0, 3, 6, 9, 12, 15, 18, 21],
            }),
            Msg::Reject(Reject {
                nonce: 1,
                reason: "client buffer too small".into(),
            }),
            Msg::Begin,
            sample_data(),
            Msg::WindowEnd(WindowEnd {
                window: 7,
                sent_at_us: 123_456,
                last: true,
            }),
            Msg::WindowAck(WindowAckMsg {
                ack_seq: 9,
                window: 7,
                echo_us: 123_456,
                per_layer_burst: vec![1, 0, 2, 0, 5],
            }),
            Msg::CriticalNack(CriticalNackMsg {
                window: 7,
                missing: vec![0, 12],
            }),
            Msg::Bye(ByeReason::Complete),
            Msg::ByeAck,
            sample_parity(),
            Msg::Busy {
                retry_after_ms: 250,
            },
        ]
    }

    fn sample_parity() -> Msg {
        Msg::Parity(ParityMsg {
            window: 7,
            group: 3,
            m: 2,
            parity_index: 1,
            shard_bytes: 904,
            members: vec![
                ParityMember {
                    frame: 0,
                    frag: 0,
                    frags_total: 2,
                },
                ParityMember {
                    frame: 0,
                    frag: 1,
                    frags_total: 2,
                },
                ParityMember {
                    frame: 3,
                    frag: 0,
                    frags_total: 1,
                },
            ],
        })
    }

    #[test]
    fn roundtrip_every_message_type() {
        for msg in all_messages() {
            let bytes = encode(42, &msg);
            let (conn, decoded) = decode(&bytes).expect("decode");
            assert_eq!(conn, 42);
            assert_eq!(decoded, msg, "type {}", msg.type_byte());
        }
    }

    #[test]
    fn data_payload_travels_as_zeroes_of_declared_length() {
        let bytes = encode(1, &sample_data());
        // Header + body fields + 904 payload bytes.
        assert_eq!(
            bytes.len(),
            HEADER_BYTES + 8 + 2 + 2 + 2 + 1 + 2 + 1 + 4 + 2 + 904
        );
        assert!(bytes[bytes.len() - 904..].iter().all(|&b| b == 0));
    }

    #[test]
    fn short_header_rejected() {
        for len in 0..HEADER_BYTES {
            let bytes = vec![0u8; len];
            assert_eq!(decode(&bytes), Err(WireError::ShortHeader { have: len }));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(1, &Msg::Begin);
        bytes[0] = 0xFF;
        assert!(matches!(decode(&bytes), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(1, &Msg::Begin);
        bytes[4] = VERSION + 1;
        assert_eq!(decode(&bytes), Err(WireError::BadVersion(VERSION + 1)));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = encode(1, &Msg::Begin);
        bytes[5] = 200;
        assert_eq!(decode(&bytes), Err(WireError::UnknownType(200)));
    }

    #[test]
    fn truncated_body_rejected() {
        for msg in all_messages() {
            let bytes = encode(5, &msg);
            for cut in HEADER_BYTES..bytes.len() {
                let err = decode(&bytes[..cut]).expect_err("truncation must fail");
                assert!(
                    matches!(
                        err,
                        WireError::Truncated { .. } | WireError::Overlength { .. }
                    ),
                    "type {} cut at {cut}: {err}",
                    msg.type_byte()
                );
            }
        }
    }

    #[test]
    fn overlength_payload_field_rejected() {
        let mut bytes = encode(1, &sample_data());
        // Inflate the declared payload length past the datagram end.
        let len_at = bytes.len() - 904 - 2;
        bytes[len_at] = 0xFF;
        bytes[len_at + 1] = 0xFF;
        assert!(matches!(decode(&bytes), Err(WireError::Overlength { .. })));
    }

    #[test]
    fn zero_ldu_size_rejected_not_panicking() {
        let mut bytes = encode(1, &sample_data());
        // ldu_bytes sits just before the payload length field.
        let at = bytes.len() - 904 - 2 - 4;
        for b in &mut bytes[at..at + 4] {
            *b = 0;
        }
        assert_eq!(decode(&bytes), Err(WireError::BadValue("zero LDU size")));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(1, &Msg::Begin);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn peek_type_classifies_and_ignores_aliens() {
        assert_eq!(peek_type(&encode(1, &sample_data())), Some(4));
        assert_eq!(peek_type(&encode(1, &Msg::Begin)), Some(3));
        assert_eq!(peek_type(&[0u8; 4]), None);
        assert_eq!(peek_type(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn peek_data_labels_matches_the_full_decode() {
        let msg = sample_data();
        let bytes = encode(9, &msg);
        let labels = peek_data_labels(&bytes).unwrap();
        let Msg::Data(data) = &msg else {
            unreachable!()
        };
        assert_eq!(labels.conn, 9);
        assert_eq!(labels.window, data.fragment.window);
        assert_eq!(usize::from(labels.frame), data.fragment.frame);
        assert_eq!(labels.frag, data.fragment.frag);
        assert_eq!(labels.retransmit, data.fragment.retransmit);
        assert_eq!(peek_conn(&bytes), Some(9));
        // Control datagrams and short/alien inputs peek to None.
        assert_eq!(peek_data_labels(&encode(9, &Msg::Begin)), None);
        assert_eq!(peek_data_labels(&bytes[..20]), None);
        assert_eq!(peek_data_labels(b"alien"), None);
        assert_eq!(peek_conn(b"alien"), None);
    }

    #[test]
    fn error_display_names_each_class() {
        let cases: Vec<(WireError, &str)> = vec![
            (WireError::ShortHeader { have: 3 }, "short header"),
            (WireError::BadMagic(7), "bad magic"),
            (WireError::BadVersion(9), "version"),
            (WireError::UnknownType(77), "unknown message type"),
            (WireError::Truncated { need: 8, have: 2 }, "truncated"),
            (
                WireError::Overlength {
                    declared: 900,
                    have: 3,
                },
                "overlength",
            ),
            (WireError::TrailingBytes(4), "trailing"),
            (WireError::BadValue("x"), "invalid field"),
            (
                WireError::Oversize {
                    field: "data.frame",
                    max: 65535,
                    actual: 65536,
                },
                "oversize data.frame",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    fn data_with_frame(frame: usize) -> Msg {
        Msg::Data(DataMsg {
            fragment: Fragment {
                window: 0,
                frame,
                frag: 0,
                frags_total: 1,
                layer: 0,
                layer_slot: 0,
                retransmit: false,
            },
            ldu: Ldu::new(1),
            payload_len: 0,
        })
    }

    /// The last legal frame index round-trips exactly; one past it is a
    /// typed refusal, never a silent wrap to frame 0.
    #[test]
    fn frame_index_boundary() {
        let msg = data_with_frame(MAX_FRAME_INDEX);
        let bytes = try_encode(1, &msg).expect("at the limit encodes");
        let (_, decoded) = decode(&bytes).expect("decodes");
        assert_eq!(decoded, msg);

        let err = try_encode(1, &data_with_frame(MAX_FRAME_INDEX + 1)).unwrap_err();
        assert_eq!(
            err,
            WireError::Oversize {
                field: "data.frame",
                max: MAX_FRAME_INDEX,
                actual: MAX_FRAME_INDEX + 1,
            }
        );
    }

    /// 255 layers fit; 256 are refused instead of dropping the last one.
    #[test]
    fn accept_layer_count_boundary() {
        let accept = |layers: usize| {
            Msg::Accept(Accept {
                nonce: 1,
                frames_per_window: 4,
                windows_total: 1,
                packet_bytes: 1024,
                fps: 24,
                layer_sizes: vec![1; layers],
                critical_frames: vec![0],
            })
        };
        let msg = accept(MAX_LAYERS);
        let bytes = try_encode(1, &msg).expect("255 layers encode");
        assert_eq!(decode(&bytes).expect("decodes").1, msg);

        let err = try_encode(1, &accept(MAX_LAYERS + 1)).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Oversize {
                    field: "accept.layer_sizes",
                    actual: 256,
                    ..
                }
            ),
            "{err}"
        );
    }

    /// Maximal critical-frame and NACK lists round-trip; one entry more
    /// is refused instead of shrinking the list on the wire.
    #[test]
    fn u16_counted_list_boundaries() {
        let full: Vec<u16> = (0..u16::MAX).collect(); // 65 535 entries
        let accept_full = Msg::Accept(Accept {
            nonce: 1,
            frames_per_window: u16::MAX,
            windows_total: 1,
            packet_bytes: 1024,
            fps: 24,
            layer_sizes: vec![u16::MAX],
            critical_frames: full.clone(),
        });
        let bytes = try_encode(1, &accept_full).expect("maximal critical list encodes");
        assert_eq!(decode(&bytes).expect("decodes").1, accept_full);

        let nack_full = Msg::CriticalNack(CriticalNackMsg {
            window: 0,
            missing: full.clone(),
        });
        let bytes = try_encode(1, &nack_full).expect("maximal NACK encodes");
        assert_eq!(decode(&bytes).expect("decodes").1, nack_full);

        let mut over = full;
        over.push(0);
        let err = try_encode(
            1,
            &Msg::CriticalNack(CriticalNackMsg {
                window: 0,
                missing: over.clone(),
            }),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Oversize {
                    field: "critical_nack.missing",
                    ..
                }
            ),
            "{err}"
        );
        let err = try_encode(
            1,
            &Msg::Accept(Accept {
                nonce: 1,
                frames_per_window: u16::MAX,
                windows_total: 1,
                packet_bytes: 1024,
                fps: 24,
                layer_sizes: vec![u16::MAX],
                critical_frames: over,
            }),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Oversize {
                    field: "accept.critical_frames",
                    ..
                }
            ),
            "{err}"
        );
    }

    /// 255 parity members fit; 256 are refused instead of dropping one —
    /// a parity whose member list shrank silently would "recover" the
    /// wrong fragment.
    #[test]
    fn parity_member_boundary() {
        let parity = |n: usize| {
            Msg::Parity(ParityMsg {
                window: 1,
                group: 0,
                m: 1,
                parity_index: 0,
                shard_bytes: 8,
                members: vec![
                    ParityMember {
                        frame: 2,
                        frag: 0,
                        frags_total: 1,
                    };
                    n
                ],
            })
        };
        let msg = parity(MAX_PARITY_MEMBERS);
        let bytes = try_encode(1, &msg).expect("255 members encode");
        assert_eq!(decode(&bytes).expect("decodes").1, msg);
        assert_eq!(
            try_encode(1, &parity(MAX_PARITY_MEMBERS + 1)).unwrap_err(),
            WireError::Oversize {
                field: "parity.members",
                max: MAX_PARITY_MEMBERS,
                actual: MAX_PARITY_MEMBERS + 1,
            }
        );
    }

    /// Hostile parity datagrams are rejected with typed errors, never a
    /// panic or a bogus recovery: zero m, out-of-range parity index,
    /// empty groups, invalid member geometry, and payloads shorter than
    /// the declared shard size.
    #[test]
    fn hostile_parity_rejected() {
        let valid = match sample_parity() {
            Msg::Parity(p) => p,
            _ => unreachable!(),
        };
        let encode_raw = |p: &ParityMsg| encode(1, &Msg::Parity(p.clone()));

        let mut zero_m = valid.clone();
        zero_m.m = 0;
        zero_m.parity_index = 0;
        assert_eq!(
            decode(&encode_raw(&zero_m)),
            Err(WireError::BadValue("zero parity count"))
        );

        let mut bad_index = valid.clone();
        bad_index.parity_index = bad_index.m;
        assert_eq!(
            decode(&encode_raw(&bad_index)),
            Err(WireError::BadValue("parity index out of range"))
        );

        let mut empty = valid.clone();
        empty.members.clear();
        assert_eq!(
            decode(&encode_raw(&empty)),
            Err(WireError::BadValue("empty parity group"))
        );

        let mut zero_frags = valid.clone();
        zero_frags.members[1].frags_total = 0;
        assert_eq!(
            decode(&encode_raw(&zero_frags)),
            Err(WireError::BadValue("zero fragment count"))
        );

        let mut frag_oob = valid.clone();
        frag_oob.members[1].frag = frag_oob.members[1].frags_total;
        assert_eq!(
            decode(&encode_raw(&frag_oob)),
            Err(WireError::BadValue("fragment index out of range"))
        );

        // Declared shard size larger than the bytes behind it.
        let mut bytes = encode_raw(&valid);
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            decode(&bytes),
            Err(WireError::Overlength { .. } | WireError::Truncated { .. })
        ));

        // A hostile member count with no member block behind it must be
        // length-checked before any allocation.
        let lean = ParityMsg {
            members: vec![valid.members[0]],
            shard_bytes: 0,
            ..valid
        };
        let mut bytes = encode(1, &Msg::Parity(lean));
        let count_at = bytes.len() - 6 - 1; // one 6-byte member behind the count
        bytes[count_at] = 255;
        assert!(matches!(decode(&bytes), Err(WireError::Truncated { .. })));
    }

    /// 255 burst entries fit a WindowAck; 256 are refused.
    #[test]
    fn window_ack_burst_boundary() {
        let ack = |n: usize| {
            Msg::WindowAck(WindowAckMsg {
                ack_seq: 1,
                window: 0,
                echo_us: 0,
                per_layer_burst: vec![7; n],
            })
        };
        let msg = ack(MAX_BURST_ENTRIES);
        let bytes = try_encode(1, &msg).expect("255 bursts encode");
        assert_eq!(decode(&bytes).expect("decodes").1, msg);
        assert!(matches!(
            try_encode(1, &ack(MAX_BURST_ENTRIES + 1)).unwrap_err(),
            WireError::Oversize {
                field: "window_ack.per_layer_burst",
                ..
            }
        ));
    }

    /// A reject reason at the u16 limit survives intact; past it the
    /// encoder refuses rather than cutting the text mid-way.
    #[test]
    fn reject_reason_boundary() {
        let msg = Msg::Reject(Reject {
            nonce: 1,
            reason: "x".repeat(MAX_REASON_BYTES),
        });
        let bytes = try_encode(1, &msg).expect("maximal reason encodes");
        assert_eq!(decode(&bytes).expect("decodes").1, msg);
        assert!(matches!(
            try_encode(
                1,
                &Msg::Reject(Reject {
                    nonce: 1,
                    reason: "x".repeat(MAX_REASON_BYTES + 1),
                })
            )
            .unwrap_err(),
            WireError::Oversize {
                field: "reject.reason",
                ..
            }
        ));
    }

    /// The infallible wrapper panics (with the limits error) rather than
    /// truncating — reachable only from code that skipped validation.
    #[test]
    #[should_panic(expected = "oversize data.frame")]
    fn encode_panics_on_oversize_instead_of_truncating() {
        let _ = encode(1, &data_with_frame(MAX_FRAME_INDEX + 1));
    }

    /// `decode_with` + `recycle` over one scratch matches the allocating
    /// decode exactly for every message type, across repeated laps (so
    /// recycled buffers demonstrably carry no stale state).
    #[test]
    fn decode_with_scratch_matches_decode() {
        let mut scratch = DecodeScratch::default();
        for _ in 0..3 {
            for msg in all_messages() {
                let bytes = encode(8, &msg);
                let (conn, pooled) = decode_with(&bytes, &mut scratch).expect("decode_with");
                assert_eq!((conn, &pooled), (8, &msg), "type {}", msg.type_byte());
                assert_eq!(decode(&bytes).unwrap().1, pooled);
                scratch.recycle(pooled);
            }
        }
    }

    /// Recycle pools are bounded: a recycle storm never retains more than
    /// `MAX_POOLED` spare buffers per kind.
    #[test]
    fn recycle_pools_are_bounded() {
        let mut scratch = DecodeScratch::default();
        for _ in 0..100 {
            scratch.recycle(Msg::CriticalNack(CriticalNackMsg {
                window: 0,
                missing: vec![1, 2, 3],
            }));
            scratch.recycle(Msg::Reject(Reject {
                nonce: 0,
                reason: "no".into(),
            }));
            scratch.recycle(sample_parity());
        }
        assert!(scratch.u16s.len() <= DecodeScratch::MAX_POOLED);
        assert!(scratch.strings.len() <= DecodeScratch::MAX_POOLED);
        assert!(scratch.members.len() <= DecodeScratch::MAX_POOLED);
    }

    /// Appending every message into one scatter buffer yields ranges that
    /// each decode to the original message, and an oversize refusal
    /// truncates back to the batch's prior end.
    #[test]
    fn encode_append_batches_into_one_buffer() {
        let mut batch = Vec::new();
        let mut spans = Vec::new();
        for msg in all_messages() {
            spans.push(try_encode_append(6, &msg, &mut batch).expect("append"));
        }
        for (msg, span) in all_messages().into_iter().zip(spans) {
            let (conn, decoded) = decode(&batch[span]).expect("decode span");
            assert_eq!((conn, decoded), (6, msg));
        }
        let before = batch.len();
        let err = try_encode_append(6, &data_with_frame(MAX_FRAME_INDEX + 1), &mut batch);
        assert!(err.is_err());
        assert_eq!(batch.len(), before, "refusal leaves the batch intact");
    }

    /// One scratch buffer encodes every message type back-to-back,
    /// byte-identical to the allocating path, and comes back cleared
    /// (never half-written) after an oversize refusal.
    #[test]
    fn encode_into_reuses_one_buffer_across_messages() {
        let mut buf = Vec::new();
        for msg in all_messages() {
            try_encode_into(3, &msg, &mut buf).expect("encode into");
            assert_eq!(buf, try_encode(3, &msg).unwrap());
            let (conn, decoded) = decode(&buf).expect("decode");
            assert_eq!(conn, 3);
            assert_eq!(decoded, msg);
        }
        let err = try_encode_into(1, &data_with_frame(MAX_FRAME_INDEX + 1), &mut buf);
        assert!(err.is_err());
        assert!(buf.is_empty());
    }
}
