//! A drop-tail bottleneck queue with cross traffic.
//!
//! The paper attributes bursty Internet loss to "the drop-tail queuing
//! discipline adopted in many Internet routers" (§1, citing \[4\]): when a
//! congested router's buffer fills, *runs* of arriving packets are dropped
//! until the queue drains. [`DropTailQueue`] models that mechanism
//! directly — a finite buffer drained at the bottleneck rate and shared
//! with bursty on/off cross traffic — giving an alternative loss process
//! to the two-state Markov abstraction of Fig. 7, used to check that error
//! spreading's benefit is not an artifact of the Gilbert model.

use crate::rng::DetRng;
use crate::time::SimTime;

/// Configuration of a drop-tail bottleneck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropTailConfig {
    /// Queue capacity in bytes.
    pub capacity_bytes: u64,
    /// Bottleneck drain rate in bits per second.
    pub drain_bps: u64,
    /// Cross-traffic rate while its source is ON, in bits per second.
    pub cross_bps: u64,
    /// Probability the cross source stays ON each millisecond.
    pub p_stay_on: f64,
    /// Probability the cross source stays OFF each millisecond.
    pub p_stay_off: f64,
}

impl DropTailConfig {
    /// A bottleneck loosely matching the paper's setting: a 1.2 Mbps
    /// drain and a 16 KiB buffer overloaded in bursts by an on/off cross
    /// source (mean ON ≈ 0.3 s, OFF ≈ 0.6 s). At the paper's media pacing
    /// this yields ≈ 15 % packet loss in runs of ≈ 8 packets — the same
    /// ballpark as the Fig. 7 channel at `P_bad = 0.6`, but produced by
    /// the queueing mechanism itself.
    pub fn paper_like() -> Self {
        DropTailConfig {
            capacity_bytes: 16 * 1024,
            drain_bps: 1_200_000,
            cross_bps: 1_500_000,
            p_stay_on: 0.9967,
            p_stay_off: 0.9983,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 {
            return Err("queue capacity must be positive".into());
        }
        if self.drain_bps == 0 {
            return Err("drain rate must be positive".into());
        }
        for (name, p) in [
            ("p_stay_on", self.p_stay_on),
            ("p_stay_off", self.p_stay_off),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability"));
            }
        }
        Ok(())
    }
}

/// The queue state: backlog drained continuously, cross traffic added in
/// 1 ms steps of an on/off Markov source, media packets admitted iff they
/// fit.
#[derive(Debug, Clone)]
pub struct DropTailQueue {
    config: DropTailConfig,
    backlog_bytes: f64,
    cross_on: bool,
    last_update: SimTime,
    rng: DetRng,
    drops: u64,
    admissions: u64,
}

impl DropTailQueue {
    /// Creates a queue, initially empty with the cross source OFF.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: DropTailConfig, seed: u64) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid drop-tail configuration: {e}");
        }
        DropTailQueue {
            config,
            backlog_bytes: 0.0,
            cross_on: false,
            last_update: SimTime::ZERO,
            rng: DetRng::seed_from(seed),
            drops: 0,
            admissions: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> DropTailConfig {
        self.config
    }

    /// Current backlog in bytes.
    pub fn backlog_bytes(&self) -> f64 {
        self.backlog_bytes
    }

    /// Packets dropped / admitted so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.drops, self.admissions)
    }

    /// Advances the fluid queue model to `now`: drains the backlog and
    /// adds cross traffic in 1 ms steps.
    fn advance_to(&mut self, now: SimTime) {
        let mut t = self.last_update;
        if now <= t {
            return;
        }
        let drain_per_us = self.config.drain_bps as f64 / 8e6;
        let cross_per_us = self.config.cross_bps as f64 / 8e6;
        while t < now {
            let step_us = (now.as_micros() - t.as_micros()).min(1_000);
            // Cross source toggles per millisecond boundary.
            let stay = self.rng.next_f64();
            self.cross_on = if self.cross_on {
                stay < self.config.p_stay_on
            } else {
                stay >= self.config.p_stay_off
            };
            let inflow = if self.cross_on {
                cross_per_us * step_us as f64
            } else {
                0.0
            };
            self.backlog_bytes = (self.backlog_bytes + inflow - drain_per_us * step_us as f64)
                .clamp(0.0, self.config.capacity_bytes as f64);
            t = SimTime::from_micros(t.as_micros() + step_us);
        }
        self.last_update = now;
    }

    /// Offers one media packet of `size_bytes` at time `now`; returns
    /// whether it was **admitted** (not dropped).
    pub fn offer(&mut self, now: SimTime, size_bytes: u32) -> bool {
        self.advance_to(now);
        if self.backlog_bytes + f64::from(size_bytes) > self.config.capacity_bytes as f64 {
            self.drops += 1;
            false
        } else {
            self.backlog_bytes += f64::from(size_bytes);
            self.admissions += 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn quiet_config() -> DropTailConfig {
        DropTailConfig {
            capacity_bytes: 10_000,
            drain_bps: 1_000_000,
            cross_bps: 0,
            p_stay_on: 0.0,
            p_stay_off: 1.0,
        }
    }

    #[test]
    fn empty_quiet_queue_admits_everything() {
        let mut q = DropTailQueue::new(quiet_config(), 1);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            assert!(q.offer(t, 1000));
            t += SimDuration::from_millis(10); // 1000 B drain per ms
        }
        assert_eq!(q.counters(), (0, 100));
    }

    #[test]
    fn saturating_queue_drops_in_runs() {
        // Offer packets faster than the drain with no spacing: the queue
        // fills, then every subsequent packet is dropped until it drains.
        let mut q = DropTailQueue::new(quiet_config(), 1);
        let mut outcomes = Vec::new();
        for _ in 0..30 {
            outcomes.push(q.offer(SimTime::ZERO, 1000));
        }
        let admitted = outcomes.iter().filter(|&&a| a).count();
        assert_eq!(admitted, 10); // 10 × 1000 B fill the 10 000 B buffer
                                  // The drops are a single run at the tail: drop-tail burstiness.
        assert!(outcomes[..10].iter().all(|&a| a));
        assert!(outcomes[10..].iter().all(|&a| !a));
    }

    #[test]
    fn queue_drains_over_time() {
        let mut q = DropTailQueue::new(quiet_config(), 1);
        for _ in 0..10 {
            let _ = q.offer(SimTime::ZERO, 1000);
        }
        assert!(!q.offer(SimTime::ZERO, 1000)); // full
                                                // After 40 ms the 1 Mbps drain clears 5000 B.
        assert!(q.offer(SimTime::ZERO + SimDuration::from_millis(40), 1000));
        assert!(q.backlog_bytes() <= 7_000.0);
    }

    #[test]
    fn cross_traffic_causes_bursty_drops() {
        let config = DropTailConfig::paper_like();
        let mut q = DropTailQueue::new(config, 7);
        let mut outcomes = Vec::new();
        let mut t = SimTime::ZERO;
        for _ in 0..4000 {
            outcomes.push(q.offer(t, 2048));
            t += SimDuration::from_millis(14); // ≈ packet pacing at 1.2 Mbps
        }
        let drops = outcomes.iter().filter(|&&a| !a).count();
        assert!(drops > 0, "overloaded bottleneck must drop");
        // Loss runs exist (burstiness) — find at least one run ≥ 2.
        let mut max_run = 0;
        let mut cur = 0;
        for &a in &outcomes {
            if a {
                cur = 0;
            } else {
                cur += 1;
                max_run = max_run.max(cur);
            }
        }
        assert!(
            max_run >= 2,
            "drop-tail losses must be bursty, got {max_run}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut q = DropTailQueue::new(DropTailConfig::paper_like(), seed);
            let mut t = SimTime::ZERO;
            (0..500)
                .map(|_| {
                    let a = q.offer(t, 2048);
                    t += SimDuration::from_millis(10);
                    a
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "invalid drop-tail configuration")]
    fn invalid_config_rejected() {
        let mut c = quiet_config();
        c.capacity_bytes = 0;
        let _ = DropTailQueue::new(c, 0);
    }

    #[test]
    fn config_validation_messages() {
        let mut c = DropTailConfig::paper_like();
        assert!(c.validate().is_ok());
        c.drain_bps = 0;
        assert!(c.validate().unwrap_err().contains("drain"));
        let mut c = DropTailConfig::paper_like();
        c.p_stay_on = 2.0;
        assert!(c.validate().unwrap_err().contains("p_stay_on"));
    }
}
