//! Proves the codec's steady-state encode/recover path never touches
//! the heap.
//!
//! Same pattern as `crates/obs/tests/zero_alloc.rs`: a counting
//! `#[global_allocator]` wraps the system allocator; after one warm-up
//! group has sized the scratch buffers, a thousand further groups —
//! encode, erase, recover — must perform **zero** allocations, because
//! every buffer (parity outputs, syndromes, the elimination matrix, the
//! recovered shards) is resized within retained capacity.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use espread_fec::{Codec, Scratch};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the test thread's allocations count — libtest's own threads
    /// (output capture, timing) may allocate during the measured window.
    static MEASURED: Cell<bool> = const { Cell::new(false) };
}

fn count() {
    // `try_with`: the allocator can be called during TLS teardown.
    let _ = MEASURED.try_with(|m| {
        if m.get() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const K: usize = 6;
const M: usize = 3;
const SHARD: usize = 512;

fn run_group(
    codec: &Codec,
    round: u64,
    data: &mut [Vec<u8>],
    parity: &mut [Vec<u8>],
    scratch: &mut Scratch,
) {
    for (j, shard) in data.iter_mut().enumerate() {
        shard.clear();
        shard.extend((0..SHARD).map(|i| (i as u8) ^ (j as u8) ^ (round as u8)));
    }
    codec.encode_into(data, parity).unwrap();
    // Erase a round-dependent set of up to M shards and recover them.
    let mut present = [true; K];
    for i in 0..M {
        present[(round as usize + i * 2) % K] = false;
    }
    let recovered = codec
        .recover_into(SHARD, data, &present, parity, &[true; M], scratch)
        .unwrap();
    assert_eq!(recovered, M);
}

#[test]
fn steady_state_encode_and_recover_allocate_nothing() {
    let codec = Codec::new(K, M).unwrap();
    let mut scratch = Scratch::new();
    let mut data: Vec<Vec<u8>> = (0..K).map(|_| Vec::with_capacity(SHARD)).collect();
    let mut parity: Vec<Vec<u8>> = (0..M).map(|_| Vec::with_capacity(SHARD)).collect();

    // Warm up: the first group grows the parity outputs and the
    // syndrome/matrix scratch exactly once.
    run_group(&codec, 0, &mut data, &mut parity, &mut scratch);

    MEASURED.with(|m| m.set(true));
    for round in 1..1001 {
        run_group(&codec, round, &mut data, &mut parity, &mut scratch);
    }
    MEASURED.with(|m| m.set(false));

    assert_eq!(
        ALLOCATIONS.load(Ordering::SeqCst),
        0,
        "encode/recover allocated on the steady-state path"
    );
}
