//! Synthetic MPEG traces calibrated to the paper's movie statistics.
//!
//! The paper's evaluation streams the UMass MPEG-1 traces
//! (`ftp://gaia.cs.umass.edu/pub/zhzhang/`), quoting their **maximum GOP
//! sizes in bits** (§4.1): Jurassic Park 62 776, Silence of the Lambs
//! 462 056, Star Wars 932 710, Terminator 407 512, Beauty and the Beast
//! 769 376. Those traces are no longer obtainable, so this module
//! substitutes a **deterministic synthetic generator** calibrated to the
//! published statistics (see `DESIGN.md` §2.3): every run reproduces the
//! per-frame-type size ratios of the MPEG-1 traces (I : P : B ≈ 5 : 2 : 1),
//! log-normal-shaped size variation, and GOP sizes bounded by the quoted
//! maxima. The protocol and all metrics depend only on frame counts, types
//! and sizes, which is exactly what is reproduced.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::frame::{Frame, FrameType};
use crate::gop::GopPattern;

/// The five movies whose trace statistics the paper quotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Movie {
    /// Jurassic Park — the clip used for the paper's experiments
    /// (GOP 12, 24 fps).
    JurassicPark,
    /// The Silence of the Lambs.
    SilenceOfTheLambs,
    /// Star Wars (largest GOPs of the set).
    StarWars,
    /// Terminator 2.
    Terminator,
    /// Beauty and the Beast.
    BeautyAndTheBeast,
}

impl Movie {
    /// All five movies.
    pub const ALL: [Movie; 5] = [
        Movie::JurassicPark,
        Movie::SilenceOfTheLambs,
        Movie::StarWars,
        Movie::Terminator,
        Movie::BeautyAndTheBeast,
    ];

    /// Maximum GOP size in **bits**, as quoted in §4.1 of the paper.
    pub fn max_gop_bits(self) -> u64 {
        match self {
            Movie::JurassicPark => 62_776,
            Movie::SilenceOfTheLambs => 462_056,
            Movie::StarWars => 932_710,
            Movie::Terminator => 407_512,
            Movie::BeautyAndTheBeast => 769_376,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Movie::JurassicPark => "Jurassic Park",
            Movie::SilenceOfTheLambs => "Silence of the Lambs",
            Movie::StarWars => "Star Wars",
            Movie::Terminator => "Terminator",
            Movie::BeautyAndTheBeast => "Beauty and the Beast",
        }
    }
}

impl std::fmt::Display for Movie {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A calibrated synthetic MPEG trace source.
///
/// # Example
///
/// ```
/// use espread_trace::{Movie, MpegTrace};
///
/// let trace = MpegTrace::new(Movie::JurassicPark, 7);
/// let frames = trace.frames(24); // two GOP-12 groups
/// assert_eq!(frames.len(), 24);
/// assert_eq!(frames[0].frame_type, espread_trace::FrameType::I);
/// // Deterministic: the same seed yields the same trace.
/// assert_eq!(frames, MpegTrace::new(Movie::JurassicPark, 7).frames(24));
/// ```
#[derive(Debug, Clone)]
pub struct MpegTrace {
    movie: Movie,
    pattern: GopPattern,
    fps: u32,
    seed: u64,
    /// Mean sizes per frame type, in bytes.
    mean_i: f64,
    mean_p: f64,
    mean_b: f64,
    /// Hard cap on GOP size in bytes (from the paper's quoted maxima).
    max_gop_bytes: u64,
}

/// MPEG-1 trace size ratios (I : P : B) used for calibration; the UMass
/// MPEG-1 traces cluster around 5 : 2 : 1.
const RATIO_I: f64 = 5.0;
const RATIO_P: f64 = 2.0;
const RATIO_B: f64 = 1.0;

/// Mean GOP size as a fraction of the quoted maximum (traces' mean/max GOP
/// ratio is typically 0.5–0.7).
const MEAN_TO_MAX: f64 = 0.6;

/// Coefficient of variation of individual frame sizes.
const SIZE_CV: f64 = 0.25;

impl MpegTrace {
    /// A trace for `movie` with the paper's GOP 12 pattern at 24 fps,
    /// deterministic in `seed`.
    pub fn new(movie: Movie, seed: u64) -> Self {
        Self::with_pattern(movie, GopPattern::gop12(), 24, seed)
    }

    /// A trace with an explicit GOP pattern and frame rate.
    ///
    /// # Panics
    ///
    /// Panics if `fps == 0`.
    pub fn with_pattern(movie: Movie, pattern: GopPattern, fps: u32, seed: u64) -> Self {
        assert!(fps > 0, "frame rate must be positive");
        let max_gop_bytes = movie.max_gop_bits() / 8;
        let mean_gop = max_gop_bytes as f64 * MEAN_TO_MAX;
        // Solve mean frame sizes from the GOP composition and ratios.
        let i_count = 1.0;
        let p_count = (pattern.anchors().count() - 1) as f64;
        let b_count = pattern.b_frames() as f64;
        let unit = mean_gop / (i_count * RATIO_I + p_count * RATIO_P + b_count * RATIO_B);
        MpegTrace {
            movie,
            pattern,
            fps,
            seed,
            mean_i: unit * RATIO_I,
            mean_p: unit * RATIO_P,
            mean_b: unit * RATIO_B,
            max_gop_bytes,
        }
    }

    /// The movie this trace models.
    pub fn movie(&self) -> Movie {
        self.movie
    }

    /// The GOP pattern.
    pub fn pattern(&self) -> &GopPattern {
        &self.pattern
    }

    /// Frames per second.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Mean size in bytes for a frame type.
    pub fn mean_size(&self, t: FrameType) -> f64 {
        match t {
            FrameType::I => self.mean_i,
            FrameType::P => self.mean_p,
            FrameType::B => self.mean_b,
        }
    }

    /// Generates the first `count` frames of the trace, in display order.
    ///
    /// Sizes are log-normal-shaped around the calibrated per-type means,
    /// clipped so that no GOP exceeds the movie's quoted maximum GOP size.
    /// Deterministic in the trace seed.
    pub fn frames(&self, count: usize) -> Vec<Frame> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut frames = Vec::with_capacity(count);
        let gop_len = self.pattern.len();
        let mut gop_bytes: u64 = 0;
        for index in 0..count {
            let pos = index % gop_len;
            if pos == 0 {
                gop_bytes = 0;
            }
            let frame_type = self.pattern.frame_type(pos);
            let mean = self.mean_size(frame_type);
            let size = sample_lognormal(&mut rng, mean, SIZE_CV);
            // Remaining budget so the GOP never exceeds the quoted maximum:
            // reserve one mean B-frame per remaining slot.
            let remaining_slots = (gop_len - pos - 1) as f64;
            let reserve = (remaining_slots * self.mean_b * 0.5) as u64;
            let budget = self.max_gop_bytes.saturating_sub(gop_bytes + reserve);
            let size = (size as u64).clamp(1, budget.max(1)) as u32;
            gop_bytes += u64::from(size);
            frames.push(Frame {
                index,
                frame_type,
                size_bytes: size,
            });
        }
        frames
    }

    /// Generates `w` whole GOPs of frames (`w × pattern.len()` frames).
    pub fn gops(&self, w: usize) -> Vec<Frame> {
        self.frames(w * self.pattern.len())
    }
}

/// Draws a log-normal-shaped sample with the given mean and coefficient of
/// variation, using a Box–Muller normal derived from the supplied RNG.
fn sample_lognormal(rng: &mut StdRng, mean: f64, cv: f64) -> f64 {
    // For a log-normal with mean m and CV c: sigma² = ln(1 + c²),
    // mu = ln(m) − sigma²/2.
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    let z = standard_normal(rng);
    (mu + sigma2.sqrt() * z).exp()
}

/// A standard normal deviate via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_gop_bits_match_paper() {
        assert_eq!(Movie::JurassicPark.max_gop_bits(), 62_776);
        assert_eq!(Movie::SilenceOfTheLambs.max_gop_bits(), 462_056);
        assert_eq!(Movie::StarWars.max_gop_bits(), 932_710);
        assert_eq!(Movie::Terminator.max_gop_bits(), 407_512);
        assert_eq!(Movie::BeautyAndTheBeast.max_gop_bits(), 769_376);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MpegTrace::new(Movie::StarWars, 42).frames(100);
        let b = MpegTrace::new(Movie::StarWars, 42).frames(100);
        assert_eq!(a, b);
        let c = MpegTrace::new(Movie::StarWars, 43).frames(100);
        assert_ne!(a, c);
    }

    #[test]
    fn frame_types_follow_pattern() {
        let frames = MpegTrace::new(Movie::JurassicPark, 1).frames(30);
        let pattern = GopPattern::gop12();
        for f in &frames {
            assert_eq!(f.frame_type, pattern.frame_type(f.index % 12));
        }
    }

    #[test]
    fn gop_sizes_never_exceed_quoted_maximum() {
        for movie in Movie::ALL {
            let trace = MpegTrace::new(movie, 9);
            let frames = trace.gops(50);
            let max_bytes = movie.max_gop_bits() / 8;
            for gop in frames.chunks(12) {
                let total: u64 = gop.iter().map(|f| u64::from(f.size_bytes)).sum();
                assert!(
                    total <= max_bytes,
                    "{movie:?}: GOP of {total} B exceeds {max_bytes} B"
                );
            }
        }
    }

    #[test]
    fn size_ordering_i_over_p_over_b() {
        let trace = MpegTrace::new(Movie::Terminator, 5);
        let frames = trace.gops(100);
        let mean = |t: FrameType| {
            let sel: Vec<f64> = frames
                .iter()
                .filter(|f| f.frame_type == t)
                .map(|f| f.size_bytes as f64)
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        let (mi, mp, mb) = (mean(FrameType::I), mean(FrameType::P), mean(FrameType::B));
        assert!(mi > mp, "I mean {mi} must exceed P mean {mp}");
        assert!(mp > mb, "P mean {mp} must exceed B mean {mb}");
        // Ratios should be in the right ballpark (±40 %).
        assert!((mi / mb) > 2.5 && (mi / mb) < 8.0, "I/B ratio {}", mi / mb);
    }

    #[test]
    fn mean_gop_size_near_calibration_target() {
        let movie = Movie::SilenceOfTheLambs;
        let trace = MpegTrace::new(movie, 3);
        let frames = trace.gops(200);
        let mean_gop: f64 = frames
            .chunks(12)
            .map(|g| g.iter().map(|f| f.size_bytes as f64).sum::<f64>())
            .sum::<f64>()
            / 200.0;
        let target = movie.max_gop_bits() as f64 / 8.0 * MEAN_TO_MAX;
        let ratio = mean_gop / target;
        assert!(
            (0.7..=1.15).contains(&ratio),
            "mean GOP {mean_gop} vs target {target} (ratio {ratio})"
        );
    }

    #[test]
    fn gops_yields_whole_gops() {
        let trace = MpegTrace::new(Movie::JurassicPark, 2);
        assert_eq!(trace.gops(3).len(), 36);
        assert_eq!(trace.gops(0).len(), 0);
    }

    #[test]
    fn accessors() {
        let trace = MpegTrace::new(Movie::JurassicPark, 2);
        assert_eq!(trace.movie(), Movie::JurassicPark);
        assert_eq!(trace.fps(), 24);
        assert_eq!(trace.pattern().len(), 12);
        assert!(trace.mean_size(FrameType::I) > trace.mean_size(FrameType::B));
        assert_eq!(Movie::StarWars.to_string(), "Star Wars");
    }

    #[test]
    #[should_panic(expected = "frame rate must be positive")]
    fn zero_fps_rejected() {
        let _ = MpegTrace::with_pattern(Movie::StarWars, GopPattern::gop15(), 0, 1);
    }

    #[test]
    fn lognormal_sampler_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean_target = 1000.0;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_lognormal(&mut rng, mean_target, 0.25))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean / mean_target - 1.0).abs() < 0.05, "mean {mean}");
        assert!(samples.iter().all(|&s| s > 0.0));
    }
}
