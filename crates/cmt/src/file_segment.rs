//! The cmFileSegment object: reads the stream, stages one buffer cycle of
//! frames into the common buffer.

use espread_trace::{Frame, MpegTrace};

use crate::buffer::PriorityBuffer;

/// Reads an MPEG trace one buffer cycle (a fixed number of GOPs) at a
/// time, staging decoded frames into a [`PriorityBuffer`] with playout
/// deadlines derived from the frame rate.
///
/// # Example
///
/// ```
/// use espread_cmt::FileSegment;
/// use espread_trace::{Movie, MpegTrace};
///
/// let trace = MpegTrace::new(Movie::JurassicPark, 1);
/// let mut fs = FileSegment::new(trace, 2, 10); // 2 GOPs/cycle, 10 cycles
/// let mut staged = 0;
/// while let Some(buffer) = fs.next_cycle() {
///     staged += buffer.len();
/// }
/// assert_eq!(staged, 240);
/// ```
#[derive(Debug, Clone)]
pub struct FileSegment {
    frames: Vec<Frame>,
    frames_per_cycle: usize,
    cycle_us: u64,
    next_cycle: usize,
    total_cycles: usize,
}

impl FileSegment {
    /// Prepares `cycles` buffer cycles of `gops_per_cycle` GOPs each from
    /// the trace.
    ///
    /// # Panics
    ///
    /// Panics if `gops_per_cycle == 0`.
    pub fn new(trace: MpegTrace, gops_per_cycle: usize, cycles: usize) -> Self {
        assert!(gops_per_cycle > 0, "cycle must hold at least one GOP");
        let frames_per_cycle = trace.pattern().len() * gops_per_cycle;
        let frames = trace.frames(frames_per_cycle * cycles);
        let cycle_us = frames_per_cycle as u64 * 1_000_000 / u64::from(trace.fps());
        FileSegment {
            frames,
            frames_per_cycle,
            cycle_us,
            next_cycle: 0,
            total_cycles: cycles,
        }
    }

    /// Frames per buffer cycle.
    pub fn frames_per_cycle(&self) -> usize {
        self.frames_per_cycle
    }

    /// Duration of one buffer cycle in microseconds (the LTS cycle time
    /// the paper tunes to vary the window size).
    pub fn cycle_us(&self) -> u64 {
        self.cycle_us
    }

    /// Stages the next cycle's frames into a fresh priority buffer, or
    /// `None` when the stream is exhausted.
    ///
    /// Each frame's deadline is the end of the *following* cycle (one
    /// buffer of client-side start-up delay, as in §4.1).
    pub fn next_cycle(&mut self) -> Option<PriorityBuffer> {
        if self.next_cycle >= self.total_cycles {
            return None;
        }
        let start = self.next_cycle * self.frames_per_cycle;
        let mut buffer = PriorityBuffer::new();
        let playout_offset = (self.next_cycle as u64 + 2) * self.cycle_us;
        for frame in &self.frames[start..start + self.frames_per_cycle] {
            buffer.push(*frame, playout_offset);
        }
        self.next_cycle += 1;
        Some(buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espread_trace::Movie;

    #[test]
    fn cycles_partition_the_trace() {
        let trace = MpegTrace::new(Movie::JurassicPark, 7);
        let mut fs = FileSegment::new(trace, 2, 3);
        assert_eq!(fs.frames_per_cycle(), 24);
        assert_eq!(fs.cycle_us(), 1_000_000); // 24 frames @ 24 fps
        let mut seen = 0;
        let mut cycles = 0;
        while let Some(buf) = fs.next_cycle() {
            seen += buf.len();
            cycles += 1;
        }
        assert_eq!(cycles, 3);
        assert_eq!(seen, 72);
        assert!(fs.next_cycle().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one GOP")]
    fn zero_gops_rejected() {
        let trace = MpegTrace::new(Movie::JurassicPark, 7);
        let _ = FileSegment::new(trace, 0, 1);
    }
}
