//! Loopback network experiment — the simulator's spread-vs-in-order
//! comparison (Figure 8's question) replayed over **real UDP sockets**
//! through the fault-injecting proxy.
//!
//! ```sh
//! cargo run -p espread-bench --bin net_loopback
//! ```
//!
//! Each ordering streams the same Jurassic Park windows through a proxy
//! whose seeded Gilbert–Elliott channel drops only data datagrams, in
//! arrival order — so both orderings face the identical per-slot loss
//! realisation and the artifact in `results/net_loopback.json` is
//! deterministic. Wall-clock throughput goes to stdout only.

use std::time::Instant;

use espread_bench::sweep;
use espread_exec::Json;
use espread_net::{
    FaultPolicy, FaultProxy, NetClient, NetClientConfig, NetServer, NetServerConfig,
};
use espread_protocol::{FecPolicy, Ordering, ProtocolConfig, SessionOffer, StreamSource};
use espread_trace::{GopPattern, Movie, MpegTrace};

const WINDOWS: usize = 12;
const GOPS_PER_WINDOW: usize = 2;
const CHANNEL_SEED: u64 = 42;
const P_BAD: f64 = 0.6;

struct Run {
    name: &'static str,
    mean_clf: f64,
    clf: Vec<usize>,
    lost_frames: usize,
    dropped_data: u64,
    bytes_rx: u64,
    elapsed_ms: f64,
}

fn run_once(name: &'static str, ordering: Ordering) -> Run {
    let trace = MpegTrace::new(Movie::JurassicPark, 1);
    let offer = SessionOffer {
        gop_pattern: GopPattern::gop12(),
        gops_per_window: GOPS_PER_WINDOW,
        open_gop: false,
        fps: 24,
        packet_bytes: 2048,
        max_frame_bytes: 62_776 / 8,
        fec: FecPolicy::off(),
    };
    let config = NetServerConfig::new(
        ProtocolConfig::paper(P_BAD, 1),
        offer,
        StreamSource::mpeg(&trace, GOPS_PER_WINDOW, WINDOWS, false),
    );
    let mut server = NetServer::bind("127.0.0.1:0", config).expect("bind server");
    let mut proxy = FaultProxy::spawn(
        server.local_addr(),
        FaultPolicy::transparent().gilbert_data_loss(0.92, P_BAD, CHANNEL_SEED),
        FaultPolicy::transparent(),
    )
    .expect("spawn proxy");

    let started = Instant::now();
    let client = NetClient::connect(
        proxy.client_addr(),
        NetClientConfig {
            ordering,
            ..NetClientConfig::default()
        },
    )
    .expect("connect");
    let report = client.stream().expect("stream");
    let elapsed = started.elapsed();
    let stats = proxy.stats();
    proxy.shutdown();
    server.shutdown();

    assert_eq!(report.windows_completed, WINDOWS, "{name}: incomplete");
    Run {
        name,
        mean_clf: report.series.summary().mean_clf,
        clf: report.series.clf_values().collect(),
        lost_frames: report.patterns.iter().map(|p| p.lost()).sum(),
        dropped_data: stats.dropped_data,
        bytes_rx: report.bytes_rx,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
    }
}

fn main() {
    // The loopback run is inherently serial; the flag is accepted (for
    // script uniformity) and ignored.
    let _ = sweep::jobs_from_args();
    println!(
        "Loopback UDP: {WINDOWS} windows of Jurassic Park through a seeded \
         Gilbert-Elliott proxy (P_good=0.92, P_bad={P_BAD}, seed {CHANNEL_SEED})\n"
    );

    let runs = [
        run_once("in-order", Ordering::InOrder),
        run_once("spread", Ordering::spread()),
    ];

    println!(
        "{:<10} {:>9} {:>12} {:>13} {:>12} {:>11}",
        "ordering", "mean CLF", "lost frames", "dropped data", "rx MB", "throughput"
    );
    let mut rows = Vec::new();
    for run in &runs {
        let mb = run.bytes_rx as f64 / 1e6;
        println!(
            "{:<10} {:>9.3} {:>12} {:>13} {:>12.2} {:>8.1} MB/s",
            run.name,
            run.mean_clf,
            run.lost_frames,
            run.dropped_data,
            mb,
            mb / (run.elapsed_ms / 1e3),
        );
        // Deterministic fields only: no timings, no control-plane counts
        // (retry cadence is wall-clock-dependent).
        let mut row = Json::object();
        row.push("ordering", run.name)
            .push("windows", WINDOWS as i64)
            .push("mean_clf", run.mean_clf)
            .push(
                "clf",
                Json::Array(run.clf.iter().map(|&c| Json::Int(c as i64)).collect()),
            )
            .push("lost_frames", run.lost_frames as i64)
            .push("dropped_data_datagrams", run.dropped_data as i64);
        rows.push(row);
    }
    let (inorder, spread) = (&runs[0], &runs[1]);
    assert_eq!(
        inorder.dropped_data, spread.dropped_data,
        "both orderings must face the identical loss realisation"
    );
    println!(
        "\nsame channel realisation ({} data datagrams dropped in both runs): \
         spreading cuts mean CLF {:.3} -> {:.3}",
        inorder.dropped_data, inorder.mean_clf, spread.mean_clf
    );

    sweep::write_results("net_loopback", &sweep::results_doc("net_loopback", rows));
    espread_bench::write_telemetry_snapshot("net_loopback");
}
