//! Receiver-side error concealment modelling.
//!
//! The paper's taxonomy (§1, §4.3) lists **error concealment** — "some
//! form of reconstruction … at the receiver to minimize the impact of
//! missing data" (reference \[16\]) — as one of the schemes error
//! spreading composes with. Concealment works by interpolating a missing
//! LDU from its neighbours, which is only possible when those neighbours
//! arrived: an *isolated* loss is concealable, a loss inside a run is not.
//!
//! That asymmetry is precisely why spreading helps concealment: it turns
//! runs (unconcealable) into isolated losses (concealable) without
//! changing the loss count. [`Concealment`] quantifies the effect.

use crate::loss::LossPattern;
use crate::metrics::ContinuityMetrics;

/// A neighbour-interpolation concealment model.
///
/// A lost LDU is **concealable** when at least `neighbours` adjacent LDUs
/// on *each* side were delivered (1 for simple freeze/interpolate
/// concealment, 2 for motion-compensated interpolation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Concealment {
    neighbours: usize,
}

impl Concealment {
    /// Simple concealment: one delivered neighbour on each side suffices
    /// (frame repetition / linear interpolation).
    pub fn simple() -> Self {
        Concealment { neighbours: 1 }
    }

    /// Creates a model requiring `neighbours` delivered LDUs on each side.
    ///
    /// # Panics
    ///
    /// Panics if `neighbours == 0` (that would conceal everything).
    pub fn new(neighbours: usize) -> Self {
        assert!(neighbours > 0, "concealment needs at least one neighbour");
        Concealment { neighbours }
    }

    /// Required delivered neighbours per side.
    pub fn neighbours(self) -> usize {
        self.neighbours
    }

    /// Whether the loss at `index` in `pattern` is concealable.
    ///
    /// Window edges count as delivered context (the previous window's tail
    /// and next window's head are assumed available).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or not a loss.
    pub fn is_concealable(self, pattern: &LossPattern, index: usize) -> bool {
        assert!(pattern.is_lost(index), "index {index} is not a loss");
        let n = pattern.len();
        for d in 1..=self.neighbours {
            if index >= d && pattern.is_lost(index - d) {
                return false;
            }
            if index + d < n && pattern.is_lost(index + d) {
                return false;
            }
        }
        true
    }

    /// The pattern after concealment: concealable losses become received.
    ///
    /// Concealment is evaluated against the *original* pattern (a repaired
    /// neighbour does not enable further repairs — interpolated data is
    /// not a prediction source).
    pub fn apply(self, pattern: &LossPattern) -> LossPattern {
        let mut out = pattern.clone();
        for index in pattern.lost_indices() {
            if self.is_concealable(pattern, index) {
                out.mark_received(index);
            }
        }
        out
    }

    /// Fraction of losses that are concealable (1.0 when nothing was
    /// lost — vacuously fine).
    pub fn concealable_fraction(self, pattern: &LossPattern) -> f64 {
        let lost = pattern.lost_indices();
        if lost.is_empty() {
            return 1.0;
        }
        let concealable = lost
            .iter()
            .filter(|&&i| self.is_concealable(pattern, i))
            .count();
        concealable as f64 / lost.len() as f64
    }

    /// Continuity metrics of the concealed stream.
    pub fn effective_metrics(self, pattern: &LossPattern) -> ContinuityMetrics {
        ContinuityMetrics::of(&self.apply(pattern))
    }
}

impl Default for Concealment {
    fn default() -> Self {
        Self::simple()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_losses_concealable_runs_not() {
        // .X..XX.
        let p = LossPattern::from_lost_indices(7, [1, 4, 5]);
        let c = Concealment::simple();
        assert!(c.is_concealable(&p, 1));
        assert!(!c.is_concealable(&p, 4));
        assert!(!c.is_concealable(&p, 5));
        assert!((c.concealable_fraction(&p) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn apply_repairs_only_isolated() {
        let p = LossPattern::from_lost_indices(7, [1, 4, 5]);
        let repaired = Concealment::simple().apply(&p);
        assert_eq!(repaired.lost_indices(), vec![4, 5]);
        let m = Concealment::simple().effective_metrics(&p);
        assert_eq!(m.clf(), 2);
        assert_eq!(m.lost(), 2);
    }

    #[test]
    fn repairs_do_not_cascade() {
        // X.X — both isolated vs the ORIGINAL pattern; both conceal.
        let p = LossPattern::from_lost_indices(3, [0, 2]);
        let repaired = Concealment::simple().apply(&p);
        assert_eq!(repaired.lost(), 0);
        // XX — neither conceals even though repairing one would free the
        // other's neighbour: interpolation needs true data.
        let p = LossPattern::from_lost_indices(2, [0, 1]);
        assert_eq!(Concealment::simple().apply(&p).lost(), 2);
    }

    #[test]
    fn wider_context_requirement() {
        // .X.X. — each loss has one good neighbour each side, but its
        // second neighbour on one side is lost.
        let p = LossPattern::from_lost_indices(5, [1, 3]);
        assert!(Concealment::simple().is_concealable(&p, 1));
        assert!(!Concealment::new(2).is_concealable(&p, 1));
    }

    #[test]
    fn edges_count_as_context() {
        let p = LossPattern::from_lost_indices(3, [0]);
        assert!(Concealment::simple().is_concealable(&p, 0));
        let p = LossPattern::from_lost_indices(3, [2]);
        assert!(Concealment::new(2).is_concealable(&p, 2));
    }

    #[test]
    fn spreading_makes_losses_concealable() {
        // The paper's synergy in miniature: same 3 losses, bursty vs
        // spread.
        let bursty = LossPattern::from_lost_indices(9, [3, 4, 5]);
        let spread = LossPattern::from_lost_indices(9, [1, 4, 7]);
        let c = Concealment::simple();
        assert_eq!(c.concealable_fraction(&bursty), 0.0);
        assert_eq!(c.concealable_fraction(&spread), 1.0);
        assert_eq!(c.effective_metrics(&spread).lost(), 0);
        assert_eq!(c.effective_metrics(&bursty).lost(), 3);
    }

    #[test]
    fn clean_window_is_fully_concealable() {
        let p = LossPattern::all_received(4);
        assert_eq!(Concealment::simple().concealable_fraction(&p), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one neighbour")]
    fn zero_neighbours_rejected() {
        let _ = Concealment::new(0);
    }

    #[test]
    #[should_panic(expected = "is not a loss")]
    fn concealing_received_slot_panics() {
        let p = LossPattern::all_received(3);
        let _ = Concealment::simple().is_concealable(&p, 1);
    }
}
