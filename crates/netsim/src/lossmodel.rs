//! Unified per-packet loss processes for links.
//!
//! Two interchangeable models of bursty loss:
//!
//! * [`GilbertModel`] — the paper's two-state Markov abstraction (Fig. 7),
//!   stepped once per packet regardless of timing;
//! * [`DropTailQueue`] — the *mechanism* the paper blames for burstiness
//!   (§1): a finite router buffer shared with cross traffic, where drops
//!   depend on packet size and timing.

use crate::droptail::DropTailQueue;
use crate::gilbert::GilbertModel;
use crate::time::SimTime;

/// A per-packet loss decision process.
#[derive(Debug, Clone)]
pub enum LossProcess {
    /// Two-state Markov loss (Fig. 7).
    Gilbert(GilbertModel),
    /// Drop-tail bottleneck queue with cross traffic.
    DropTail(DropTailQueue),
    /// Replays a recorded per-packet loss trace (`true` = delivered);
    /// packets beyond the trace are delivered. Lets experiments rerun a
    /// captured loss realisation exactly.
    Replay(ReplayTrace),
}

/// A recorded per-packet delivery trace for [`LossProcess::Replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayTrace {
    delivered: Vec<bool>,
    next: usize,
}

impl ReplayTrace {
    /// Wraps a per-packet delivery record (`true` = delivered).
    pub fn new(delivered: Vec<bool>) -> Self {
        ReplayTrace { delivered, next: 0 }
    }

    /// Packets consumed so far.
    pub fn position(&self) -> usize {
        self.next
    }

    fn step(&mut self) -> bool {
        let outcome = self.delivered.get(self.next).copied().unwrap_or(true);
        self.next += 1;
        outcome
    }
}

impl LossProcess {
    /// Decides whether a packet of `size_bytes` entering the path at
    /// `now` is delivered.
    pub fn step_delivers(&mut self, now: SimTime, size_bytes: u32) -> bool {
        match self {
            LossProcess::Gilbert(g) => g.step_delivers(),
            LossProcess::DropTail(q) => q.offer(now, size_bytes),
            LossProcess::Replay(r) => r.step(),
        }
    }
}

impl From<ReplayTrace> for LossProcess {
    fn from(r: ReplayTrace) -> Self {
        LossProcess::Replay(r)
    }
}

impl From<GilbertModel> for LossProcess {
    fn from(g: GilbertModel) -> Self {
        LossProcess::Gilbert(g)
    }
}

impl From<DropTailQueue> for LossProcess {
    fn from(q: DropTailQueue) -> Self {
        LossProcess::DropTail(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::droptail::DropTailConfig;

    #[test]
    fn gilbert_conversion_and_stepping() {
        let mut p: LossProcess = GilbertModel::new(1.0, 0.0, 1).into();
        assert!(p.step_delivers(SimTime::ZERO, 1000));
    }

    #[test]
    fn replay_follows_trace_then_delivers() {
        let mut p: LossProcess = ReplayTrace::new(vec![true, false, true]).into();
        assert!(p.step_delivers(SimTime::ZERO, 1));
        assert!(!p.step_delivers(SimTime::ZERO, 1));
        assert!(p.step_delivers(SimTime::ZERO, 1));
        // Beyond the recording: delivered.
        assert!(p.step_delivers(SimTime::ZERO, 1));
        if let LossProcess::Replay(r) = &p {
            assert_eq!(r.position(), 4);
        }
    }

    #[test]
    fn droptail_conversion_and_stepping() {
        let mut p: LossProcess = DropTailQueue::new(
            DropTailConfig {
                capacity_bytes: 100,
                drain_bps: 8,
                cross_bps: 0,
                p_stay_on: 0.0,
                p_stay_off: 1.0,
            },
            0,
        )
        .into();
        assert!(p.step_delivers(SimTime::ZERO, 100)); // fits exactly
        assert!(!p.step_delivers(SimTime::ZERO, 100)); // queue full
    }
}
