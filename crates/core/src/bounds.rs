//! Theorem 1: provable bounds on the minimum supportable CLF.
//!
//! Theorem 1 of the paper (proved in the authors' companion reports
//! \[19, 20\]) characterises the minimum CLF `k*(n, b)` any fixed
//! transmission order can guarantee for a window of `n` LDUs against a
//! single bursty loss of up to `b` slots. The statement in the available
//! text is OCR-damaged, so this module implements the **provable
//! reconstruction** documented in `DESIGN.md` §2.1:
//!
//! * `b ≤ 1` ⟹ `k* = min(b, 1)` — a burst of one slot is a 1-run under
//!   any order;
//! * `b ≥ n` ⟹ `k* = n` — the entire window is lost;
//! * `b² ≤ n` ⟹ `k* = 1` — achieved by the cyclic stride-`b` order
//!   ([`stride_achieves_one`] gives the exact achievability condition,
//!   which is strictly wider: the paper's own Table 1 has `b² > n` and
//!   still reaches CLF 1);
//! * in general `k* ≥ ⌈b / (n − b + 1)⌉` ([`clf_lower_bound`]) because a
//!   window with `n − b` received slots has at most `n − b + 1` loss runs.
//!
//! The exact optimum for concrete parameters is computed by
//! [`calculate_permutation`](crate::cpo::calculate_permutation); property
//! tests verify it always falls between these bounds.

/// The information-theoretic lower bound on the worst-case CLF of **any**
/// transmission order: `⌈b / (n − b + 1)⌉` for `0 < b < n`, `n` for
/// `b ≥ n`, and `0` for `b = 0`.
///
/// # Example
///
/// ```
/// use espread_core::bounds::clf_lower_bound;
///
/// assert_eq!(clf_lower_bound(17, 5), 1);
/// assert_eq!(clf_lower_bound(10, 9), 5);  // 9 losses, ≤ 2 runs
/// assert_eq!(clf_lower_bound(10, 10), 10);
/// assert_eq!(clf_lower_bound(10, 0), 0);
/// ```
pub fn clf_lower_bound(n: usize, b: usize) -> usize {
    if n == 0 || b == 0 {
        return 0;
    }
    if b >= n {
        return n;
    }
    // b lost slots split into at most (n - b + 1) maximal runs, so the
    // longest run is at least ⌈b / (n - b + 1)⌉.
    b.div_ceil(n - b + 1)
}

/// Whether the cyclic stride-`b` order provably keeps the CLF at 1 for a
/// window of `n` and burst bound `b` (with `2 ≤ b < n`).
///
/// For `gcd(b, n) = 1` the order is the arithmetic progression
/// `π(t) = t·b mod n`, a burst of `b` slots loses
/// `{x + i·b mod n : 0 ≤ i < b}`, and two lost playout indices are adjacent
/// iff `i·b ≡ ±1 (mod n)` for some `1 ≤ i ≤ b − 1`; the predicate checks
/// that no such `i` exists. This holds in particular whenever `b² ≤ n`, but
/// also for many larger bursts — e.g. the paper's Table 1 case
/// `(n, b) = (17, 5)`.
///
/// For `gcd(b, n) > 1` the coset-traversal order is not a single
/// progression; two same-walk losses can never be playout-adjacent (they
/// differ by a multiple of the gcd), but adjacencies across walk seams
/// depend on fine number-theoretic structure (e.g. `n = 4, b = 2` fails
/// via the seam pair `(1, 2)` even though `b² ≤ n`). In the non-coprime
/// case the predicate therefore decides by **exact evaluation** of the
/// witness order — still cheap (`O(n · b log b)`) and, unlike a closed
/// form, correct by construction.
///
/// # Example
///
/// ```
/// use espread_core::bounds::stride_achieves_one;
///
/// assert!(stride_achieves_one(17, 5)); // Table 1 (b² > n but coprime-safe)
/// assert!(stride_achieves_one(25, 5)); // b² ≤ n
/// assert!(!stride_achieves_one(7, 5));
/// assert!(!stride_achieves_one(8, 4)); // non-coprime, n < b²: CLF 2
/// assert!(!stride_achieves_one(4, 2)); // non-coprime seam adjacency
/// ```
pub fn stride_achieves_one(n: usize, b: usize) -> bool {
    if b < 2 || b >= n {
        return b < 2 && b < n;
    }
    if gcd(b, n) == 1 {
        (1..b).all(|i| {
            let r = (i * b) % n;
            r != 1 && r != n - 1
        })
    } else {
        crate::burst::worst_case_clf(&crate::cpo::stride_permutation(n, b), b) == 1
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The reconstructed Theorem 1: bounds on the minimum supportable CLF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TheoremOneBound {
    /// Lower bound on the optimal worst-case CLF.
    pub lower: usize,
    /// Upper bound on the optimal worst-case CLF (witnessed by a concrete
    /// constructible order).
    pub upper: usize,
}

impl TheoremOneBound {
    /// Whether the bounds pin the optimum exactly.
    pub fn is_tight(self) -> bool {
        self.lower == self.upper
    }
}

/// Evaluates the reconstructed Theorem 1 for a window of `n` and burst
/// bound `b`, **without** running the full permutation search.
///
/// The upper bound is always witnessed by a concrete constructible order:
/// the stride-`b` order when [`stride_achieves_one`] holds (`CLF = 1`),
/// otherwise the better of the identity (`CLF = b`) and a `⌈√n⌉`-row block
/// interleaver whose exact worst-case CLF is evaluated directly.
///
/// # Example
///
/// ```
/// use espread_core::bounds::theorem_one;
///
/// let bound = theorem_one(17, 5);
/// assert_eq!(bound.lower, 1);
/// assert_eq!(bound.upper, 1);
/// assert!(bound.is_tight());
/// ```
pub fn theorem_one(n: usize, b: usize) -> TheoremOneBound {
    let lower = clf_lower_bound(n, b);
    if n == 0 || b == 0 {
        return TheoremOneBound { lower: 0, upper: 0 };
    }
    if b >= n {
        return TheoremOneBound { lower: n, upper: n };
    }
    let upper = if b == 1 || stride_achieves_one(n, b) {
        1
    } else {
        // Structured witnesses, scored exactly: block interleavers at the
        // classical spreading depths ⌈√n⌉ and b (plain and reversed-row).
        let r = ((n as f64).sqrt().ceil() as usize).max(1);
        [
            crate::interleave::block_interleaver(n, r),
            crate::interleave::block_interleaver_reversed(n, r),
            crate::interleave::block_interleaver(n, b),
            crate::interleave::block_interleaver_reversed(n, b),
        ]
        .iter()
        .map(|w| crate::burst::worst_case_clf(w, b))
        .min()
        .expect("non-empty witness set")
        .min(b)
    };
    TheoremOneBound { lower, upper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::worst_case_clf;
    use crate::cpo::{calculate_permutation, stride_permutation};

    #[test]
    fn lower_bound_edge_cases() {
        assert_eq!(clf_lower_bound(0, 0), 0);
        assert_eq!(clf_lower_bound(0, 5), 0);
        assert_eq!(clf_lower_bound(5, 0), 0);
        assert_eq!(clf_lower_bound(5, 5), 5);
        assert_eq!(clf_lower_bound(5, 9), 5);
        assert_eq!(clf_lower_bound(2, 1), 1);
    }

    #[test]
    fn lower_bound_from_run_counting() {
        // n=10, b=8: at most 3 runs → longest ≥ ⌈8/3⌉ = 3.
        assert_eq!(clf_lower_bound(10, 8), 3);
        // n=10, b=5: at most 6 runs → ≥ 1.
        assert_eq!(clf_lower_bound(10, 5), 1);
        // n=4, b=3: at most 2 runs → ≥ 2.
        assert_eq!(clf_lower_bound(4, 3), 2);
    }

    #[test]
    fn stride_achievability_exact_for_coprime() {
        for n in 3..40 {
            for b in 2..n {
                if gcd(b, n) != 1 {
                    continue;
                }
                let exact = worst_case_clf(&stride_permutation(n, b), b);
                if stride_achieves_one(n, b) {
                    assert_eq!(exact, 1, "predicate claims 1 but exact={exact} n={n} b={b}");
                } else {
                    assert!(exact > 1, "predicate missed achievable 1 at n={n} b={b}");
                }
            }
        }
    }

    #[test]
    fn stride_achievability_sound_for_non_coprime() {
        // For gcd > 1 the predicate is conservative: whenever it claims 1,
        // the exact evaluation must agree.
        for n in 3..60 {
            for b in 2..n {
                if gcd(b, n) == 1 {
                    continue;
                }
                if stride_achieves_one(n, b) {
                    let exact = worst_case_clf(&stride_permutation(n, b), b);
                    assert_eq!(exact, 1, "unsound claim at n={n} b={b}: exact={exact}");
                }
            }
        }
    }

    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }

    #[test]
    fn b_squared_le_n_implies_one() {
        // The reconstruction: b² ≤ n ⟹ k* = 1. For coprime (b, n) the
        // stride witness proves it in closed form; in every case one of
        // theorem_one's witnesses must reach CLF 1.
        for b in 2..8 {
            for n in (b * b)..(b * b + 6) {
                if gcd(b, n) == 1 {
                    assert!(stride_achieves_one(n, b), "n={n} b={b}");
                }
                assert_eq!(theorem_one(n, b).upper, 1, "n={n} b={b}");
            }
        }
    }

    #[test]
    fn theorem_brackets_true_optimum() {
        for n in 2..20 {
            for b in 0..=n + 2 {
                let bound = theorem_one(n, b);
                let exact = calculate_permutation(n, b).worst_clf;
                assert!(
                    bound.lower <= exact,
                    "lower bound broken at n={n} b={b}: {} > {exact}",
                    bound.lower
                );
                assert!(
                    exact <= bound.upper,
                    "upper bound broken at n={n} b={b}: {exact} > {}",
                    bound.upper
                );
            }
        }
    }

    #[test]
    fn table1_bound_is_tight() {
        let bound = theorem_one(17, 5);
        assert_eq!(bound, TheoremOneBound { lower: 1, upper: 1 });
        assert!(bound.is_tight());
    }

    #[test]
    fn degenerate_bursts() {
        assert_eq!(theorem_one(10, 0), TheoremOneBound { lower: 0, upper: 0 });
        assert_eq!(
            theorem_one(10, 10),
            TheoremOneBound {
                lower: 10,
                upper: 10
            }
        );
        assert_eq!(theorem_one(10, 1), TheoremOneBound { lower: 1, upper: 1 });
        assert_eq!(theorem_one(0, 3), TheoremOneBound { lower: 0, upper: 0 });
    }
}
