//! The PktSrc object: resource-aware transmission with prioritised frame
//! dropping, a pluggable B-frame ordering, and optional Cyclic-UDP
//! resending.
//!
//! CMT's pktSrc "picks up frames from the common buffer, decides which
//! frames in the buffer are to be sent using its estimated measure of …
//! bandwidth and propagation delay" and "can drop a set of low priority
//! frames if it estimates that it can not deliver all of the frames in the
//! buffer on time" (§4.4). Anchors travel first (I then P, playout order);
//! the B set is ordered by the plug-in ([`BFrameOrdering`]): stock CMT
//! uses IBO, the paper swaps in k-CPO.
//!
//! The underlying transport CMT used is Brian Smith's **Cyclic-UDP**
//! (reference \[27\]): a priority-driven best-effort protocol that, while
//! cycle time remains, resends the not-yet-acknowledged frames in priority
//! order. [`SendStrategy::CyclicUdp`] reproduces that behaviour.

use espread_netsim::{Delivery, Link, Packet, SimTime};
use espread_qos::ContinuityMetrics;

use crate::buffer::PriorityBuffer;
use crate::ordering::BFrameOrdering;
use crate::pkt_dest::PktDest;

/// How PktSrc uses leftover cycle time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SendStrategy {
    /// Send each staged frame once (pure best-effort).
    Single,
    /// Cyclic-UDP: after each pass, resend the frames the receiver has
    /// not acknowledged, in priority order, until the deadline or the
    /// round limit — trading leftover bandwidth for reliability of the
    /// high-priority frames.
    CyclicUdp {
        /// Maximum number of passes over the unacknowledged set.
        max_rounds: u32,
    },
}

impl std::fmt::Display for SendStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendStrategy::Single => f.write_str("single-shot"),
            SendStrategy::CyclicUdp { max_rounds } => {
                write!(f, "cyclic-UDP (≤{max_rounds} rounds)")
            }
        }
    }
}

/// Outcome of transmitting one buffer cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleOutcome {
    /// Playout-order delivery pattern of the cycle's frames.
    pub pattern: espread_qos::LossPattern,
    /// Continuity metrics of the cycle.
    pub metrics: ContinuityMetrics,
    /// Frames dropped at the sender for lack of estimated resources
    /// (never transmitted at all).
    pub dropped: usize,
    /// Frames transmitted at least once but never received.
    pub network_lost: usize,
    /// Extra (repeat) frame transmissions made by Cyclic-UDP rounds.
    pub resends: u64,
}

/// The sending object.
#[derive(Debug)]
pub struct PktSrc {
    link: Link,
    ordering: BFrameOrdering,
    packet_bytes: u32,
    header_bytes: u32,
}

impl PktSrc {
    /// Creates a PktSrc sending over `link` with the given B-frame
    /// ordering and packetisation.
    ///
    /// # Panics
    ///
    /// Panics if `packet_bytes == 0`.
    pub fn new(link: Link, ordering: BFrameOrdering, packet_bytes: u32, header_bytes: u32) -> Self {
        assert!(packet_bytes > 0, "packet size must be positive");
        PktSrc {
            link,
            ordering,
            packet_bytes,
            header_bytes,
        }
    }

    /// The B-frame ordering plug-in in use.
    pub fn ordering(&self) -> BFrameOrdering {
        self.ordering
    }

    /// Transmits one staged buffer cycle starting at `now` with a single
    /// pass (see [`PktSrc::send_cycle_with`]).
    pub fn send_cycle(
        &mut self,
        buffer: &mut PriorityBuffer,
        now: SimTime,
        deadline: SimTime,
    ) -> CycleOutcome {
        self.send_cycle_with(buffer, now, deadline, SendStrategy::Single)
    }

    /// Transmits one staged buffer cycle starting at `now`, with all
    /// packets required to depart by `deadline`, under the given strategy.
    ///
    /// Frames are considered in priority order; a frame whose packets
    /// cannot all depart by the deadline is skipped (lowest-priority
    /// frames sit at the tail, so they are dropped first). With
    /// [`SendStrategy::CyclicUdp`], unacknowledged frames are resent in
    /// priority order while cycle time remains.
    pub fn send_cycle_with(
        &mut self,
        buffer: &mut PriorityBuffer,
        now: SimTime,
        deadline: SimTime,
        strategy: SendStrategy,
    ) -> CycleOutcome {
        let _cycle_span = crate::telem::span("cmt.pkt_src.send_cycle_ns");
        // Order: anchors (classes 0 and 1) in playout order, then the B
        // class under the plug-in ordering.
        let anchors: Vec<_> = buffer
            .of_class(0)
            .into_iter()
            .chain(buffer.of_class(1))
            .collect();
        let bs = buffer.of_class(2);
        let frames: Vec<_> = {
            let _span = crate::telem::span("cmt.pkt_src.permute_ns");
            let b_order = self.ordering.permutation(bs.len());
            let ordered_bs = b_order.as_slice().iter().map(|&i| bs[i]);
            anchors.into_iter().chain(ordered_bs).collect()
        };

        let mut dest = PktDest::new(frames.iter().map(|f| f.frame.index).collect());
        let mut attempted = vec![false; frames.len()];
        let rounds = match strategy {
            SendStrategy::Single => 1,
            SendStrategy::CyclicUdp { max_rounds } => max_rounds.max(1),
        };

        let mut resends = 0u64;
        let mut seq = 0u64;
        'rounds: for round in 0..rounds {
            let mut sent_this_round = false;
            for (idx, staged) in frames.iter().enumerate() {
                // Cyclic-UDP: skip frames the receiver already has.
                if dest.arrival_of(staged.frame.index).is_some() {
                    continue;
                }
                let size = staged.frame.size_bytes.max(1);
                let frags = size.div_ceil(self.packet_bytes);
                let wire_total = size + frags * self.header_bytes;
                if self.link.earliest_departure(now, wire_total) > deadline {
                    // No room for this frame; smaller later frames may
                    // still fit, so keep scanning this round.
                    continue;
                }
                sent_this_round = true;
                if round > 0 || attempted[idx] {
                    resends += 1;
                }
                attempted[idx] = true;
                let mut all_arrived = true;
                let mut last_arrival = now;
                for frag in 0..frags {
                    let payload = if frag + 1 < frags {
                        self.packet_bytes
                    } else {
                        size - self.packet_bytes * (frags - 1)
                    };
                    match self
                        .link
                        .transmit(
                            now,
                            Packet::new(seq, payload + self.header_bytes, now, staged.frame.index),
                        )
                        .delivered()
                    {
                        Some(d) => last_arrival = last_arrival.max(d.arrived_at),
                        None => all_arrived = false,
                    }
                    seq += 1;
                }
                if all_arrived {
                    dest.accept(&Delivery {
                        arrived_at: last_arrival,
                        packet: Packet::new(seq, 1, now, staged.frame.index),
                    });
                }
            }
            if !sent_this_round {
                break 'rounds; // deadline exhausted or everything delivered
            }
        }

        let pattern = {
            let _span = crate::telem::span("cmt.pkt_dest.depermute_ns");
            dest.pattern()
        };
        let dropped = attempted.iter().filter(|&&a| !a).count();
        let network_lost = frames
            .iter()
            .enumerate()
            .filter(|(idx, f)| attempted[*idx] && dest.arrival_of(f.frame.index).is_none())
            .count();
        let _ = buffer.drain_prioritised(); // the cycle is consumed
        crate::telem::count_n("cmt.pkt_src.frames_dropped", dropped as u64);
        crate::telem::count_n("cmt.pkt_src.frames_network_lost", network_lost as u64);
        crate::telem::count_n("cmt.pkt_src.resends", resends);

        CycleOutcome {
            metrics: ContinuityMetrics::of(&pattern),
            pattern,
            dropped,
            network_lost,
            resends,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espread_netsim::{GilbertModel, SimDuration};
    use espread_trace::{Frame, FrameType};

    fn staged_buffer(b_count: usize) -> PriorityBuffer {
        let mut buf = PriorityBuffer::new();
        buf.push(
            Frame {
                index: 0,
                frame_type: FrameType::I,
                size_bytes: 1000,
            },
            u64::MAX,
        );
        for i in 0..b_count {
            buf.push(
                Frame {
                    index: i + 1,
                    frame_type: FrameType::B,
                    size_bytes: 300,
                },
                u64::MAX,
            );
        }
        buf
    }

    fn lossless_link() -> Link {
        Link::new(
            1_000_000,
            SimDuration::from_millis(5),
            GilbertModel::new(1.0, 0.0, 0),
        )
    }

    #[test]
    fn lossless_cycle_is_clean() {
        let mut src = PktSrc::new(lossless_link(), BFrameOrdering::Ibo, 2048, 28);
        let mut buf = staged_buffer(7);
        let out = src.send_cycle(&mut buf, SimTime::ZERO, SimTime::from_micros(10_000_000));
        assert_eq!(out.metrics.clf(), 0);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.network_lost, 0);
        assert_eq!(out.resends, 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn deadline_pressure_drops_b_frames_first() {
        // 8 kbps link: 1000 B I-frame ≈ 1.03 s; B frames won't fit a 1.5 s
        // deadline after it.
        let link = Link::new(8_000, SimDuration::ZERO, GilbertModel::new(1.0, 0.0, 0));
        let mut src = PktSrc::new(link, BFrameOrdering::Ibo, 2048, 28);
        let mut buf = staged_buffer(4);
        let out = src.send_cycle(&mut buf, SimTime::ZERO, SimTime::from_micros(1_500_000));
        assert!(out.dropped > 0);
        // The I frame (playout 0) made it.
        assert!(out.pattern.is_received(0));
    }

    #[test]
    fn bursty_loss_hits_interleavers_less_than_in_order() {
        // Bursty channel: both interleavers (IBO and CPO) must beat the
        // unscrambled order on mean CLF, and CPO must stay within noise of
        // IBO (their single-burst worst cases are compared exactly in
        // `ordering::tests::cpo_never_worse_than_ibo`).
        let run = |ordering: BFrameOrdering, seed: u64| {
            let link = Link::new(
                10_000_000,
                SimDuration::ZERO,
                GilbertModel::new(0.85, 0.75, seed),
            );
            let mut src = PktSrc::new(link, ordering, 2048, 28);
            let mut buf = staged_buffer(16);
            src.send_cycle(&mut buf, SimTime::ZERO, SimTime::from_micros(60_000_000))
                .metrics
                .clf()
        };
        let mut in_order_total = 0usize;
        let mut ibo_total = 0usize;
        let mut cpo_total = 0usize;
        for seed in 0..40 {
            in_order_total += run(BFrameOrdering::InOrder, seed);
            ibo_total += run(BFrameOrdering::Ibo, seed);
            cpo_total += run(BFrameOrdering::Cpo { burst: 4 }, seed);
        }
        assert!(
            cpo_total < in_order_total,
            "CPO {cpo_total} vs in-order {in_order_total}"
        );
        assert!(
            ibo_total < in_order_total,
            "IBO {ibo_total} vs in-order {in_order_total}"
        );
        assert!(
            cpo_total as f64 <= ibo_total as f64 * 1.2,
            "CPO {cpo_total} vs IBO {ibo_total}"
        );
    }

    #[test]
    fn multi_fragment_frames_counted_once() {
        let dead = Link::new(1_000_000, SimDuration::ZERO, GilbertModel::new(0.0, 1.0, 0));
        let mut src = PktSrc::new(dead, BFrameOrdering::Ibo, 512, 28);
        let mut buf = staged_buffer(0); // just the 1000 B I-frame: 2 frags
        let out = src.send_cycle(&mut buf, SimTime::ZERO, SimTime::from_micros(10_000_000));
        assert_eq!(out.network_lost, 1);
        assert_eq!(out.pattern.lost(), 1);
    }

    #[test]
    fn cyclic_udp_recovers_with_leftover_bandwidth() {
        // A lossy channel with plenty of cycle time: Cyclic-UDP rounds
        // must strictly reduce residual loss versus single-shot.
        let run = |strategy: SendStrategy, seed: u64| {
            let link = Link::new(
                1_000_000,
                SimDuration::ZERO,
                GilbertModel::new(0.90, 0.5, seed),
            );
            let mut src = PktSrc::new(link, BFrameOrdering::Cpo { burst: 3 }, 2048, 28);
            let mut buf = staged_buffer(10);
            src.send_cycle_with(
                &mut buf,
                SimTime::ZERO,
                SimTime::from_micros(5_000_000),
                strategy,
            )
        };
        let mut single_lost = 0;
        let mut cyclic_lost = 0;
        let mut cyclic_resends = 0;
        for seed in 0..20 {
            single_lost += run(SendStrategy::Single, seed).pattern.lost();
            let out = run(SendStrategy::CyclicUdp { max_rounds: 4 }, seed);
            cyclic_lost += out.pattern.lost();
            cyclic_resends += out.resends;
        }
        assert!(
            cyclic_lost < single_lost,
            "cyclic {cyclic_lost} vs single {single_lost}"
        );
        assert!(cyclic_resends > 0);
    }

    #[test]
    fn cyclic_udp_respects_deadline() {
        // A starved link: rounds cannot exceed the cycle budget.
        let link = Link::new(8_000, SimDuration::ZERO, GilbertModel::new(0.0, 1.0, 0));
        let mut src = PktSrc::new(link, BFrameOrdering::Ibo, 2048, 28);
        let mut buf = staged_buffer(2);
        let out = src.send_cycle_with(
            &mut buf,
            SimTime::ZERO,
            SimTime::from_micros(1_100_000), // fits ~1 I frame
            SendStrategy::CyclicUdp { max_rounds: 10 },
        );
        // The B frames never fit; the I frame was attempted but lost.
        assert!(out.dropped >= 1);
        assert!(out.pattern.lost() >= 2);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(SendStrategy::Single.to_string(), "single-shot");
        assert_eq!(
            SendStrategy::CyclicUdp { max_rounds: 3 }.to_string(),
            "cyclic-UDP (≤3 rounds)"
        );
    }
}
