//! The causal timeline reconstructor.
//!
//! [`reconstruct`] merges the recordings of one or more sessions (each a
//! server + proxy + client trio) into per-frame verdicts keyed on
//! `(session, conn, window, frame)`:
//!
//! * every residual loss and every recovery round is **attributed** to a
//!   concrete [`Cause`] — Gilbert–Elliott loss at the proxy, a dropped
//!   control datagram, an oversize send refusal, retry exhaustion, …;
//! * **causality is checked** — a fragment delivered with no matching
//!   send, or timestamped at/before its first send on a shared clock, is
//!   a violation, as is a frame both reassembled and abandoned;
//! * per-window **burst/gap statistics and CLF** are recomputed from the
//!   reconstructed playout pattern with `espread-qos`, so callers can
//!   cross-check them against what the client itself measured on the very
//!   same realisation.
//!
//! The reconstructor *fails loudly*: anything it cannot attribute or that
//! breaks causality lands in [`TimelineReport::violations`]. Two
//! deliberate degradations keep legitimate chaos runs clean: when a ring
//! overflowed (`dropped > 0`) the early history is gone, so only counting
//! — not absence-based — checks run; and when the proxy corrupted or
//! truncated bytes, data labels can be forged in flight, so label-trusting
//! existence/timing checks are skipped (the mangling itself is attributed
//! via [`Cause::CorruptedInFlight`]).
//!
//! Everything in the report is a pure function of the recordings' *event
//! content* (never of wall-clock values), so reports over the same
//! realisation render identically across reruns and worker counts;
//! `latency_us` fields are the one timing-derived exception and are
//! excluded from deterministic artifacts by callers.

use std::collections::{BTreeMap, BTreeSet};

use espread_qos::{ContinuityMetrics, LossPattern};

use crate::event::{detail_frag, detail_retransmit, EventKind, ObsEvent, Role, WINDOW_NONE};
use crate::recorder::Recording;

/// Concrete cause of a residual loss (or of the recovery machinery
/// failing to prevent one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cause {
    /// The server's wire codec refused an oversize data message; the
    /// fragment was never sent.
    OversizeRefusal,
    /// The server shed the frame on purpose under overload — an
    /// enhancement-layer frame dropped to pay down pacing debt, or a
    /// stale retransmission skipped past its playout deadline.
    Shed,
    /// The client NACKed the frame and the server retransmitted, but the
    /// recovery rounds ran dry before a copy survived the channel.
    RetryExhaustion,
    /// The client NACKed the frame but the NACK (a control datagram) was
    /// dropped before the server could act on it.
    ControlDrop,
    /// The proxy's Gilbert–Elliott channel swallowed the fragment(s).
    GeLoss,
    /// The proxy corrupted or truncated the fragment's bytes in flight
    /// and the client could not use what arrived.
    CorruptedInFlight,
    /// The fragment reached the client but was discarded as stale — the
    /// window had already moved on.
    StaleDiscard,
    /// The client tracked a window the server never sent; only possible
    /// when the proxy forged labels by corrupting bytes.
    PhantomWindow,
    /// Sent (and forwarded, when the proxy saw it) but never delivered —
    /// lost in the kernel's socket buffers.
    SocketLoss,
}

/// Every cause, in attribution-priority order (most specific first).
pub const ALL_CAUSES: [Cause; 9] = [
    Cause::OversizeRefusal,
    Cause::Shed,
    Cause::RetryExhaustion,
    Cause::ControlDrop,
    Cause::GeLoss,
    Cause::CorruptedInFlight,
    Cause::StaleDiscard,
    Cause::PhantomWindow,
    Cause::SocketLoss,
];

impl Cause {
    /// Stable name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Cause::OversizeRefusal => "oversize_refusal",
            Cause::Shed => "shed",
            Cause::RetryExhaustion => "retry_exhaustion",
            Cause::ControlDrop => "control_drop",
            Cause::GeLoss => "ge_loss",
            Cause::CorruptedInFlight => "corrupted_in_flight",
            Cause::StaleDiscard => "stale_discard",
            Cause::PhantomWindow => "phantom_window",
            Cause::SocketLoss => "socket_loss",
        }
    }
}

impl std::fmt::Display for Cause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How one frame's story ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// Reassembled from the original transmission alone.
    Delivered,
    /// Reassembled, but only after at least one retransmission round.
    Recovered,
    /// Residual loss, attributed.
    Lost(Cause),
    /// Residual loss the reconstructor could not explain — always paired
    /// with a violation (unless a ring overflowed).
    LostUnattributed,
}

impl FrameOutcome {
    /// Stable name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FrameOutcome::Delivered => "delivered",
            FrameOutcome::Recovered => "recovered",
            FrameOutcome::Lost(cause) => cause.as_str(),
            FrameOutcome::LostUnattributed => "unattributed",
        }
    }

    /// Whether the frame reached playout.
    pub fn is_received(self) -> bool {
        matches!(self, FrameOutcome::Delivered | FrameOutcome::Recovered)
    }
}

/// One frame's reconstructed verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameVerdict {
    /// Frame index inside its window.
    pub frame: u32,
    /// The verdict.
    pub outcome: FrameOutcome,
    /// Original fragments the server sent.
    pub sent: u32,
    /// Retransmitted fragments the server sent.
    pub retransmit_sent: u32,
    /// Fragments of this frame the proxy's channel dropped.
    pub proxy_dropped: u32,
    /// Fragment deliveries the client accepted (duplicates included).
    pub delivered: u32,
    /// Whether the client NACKed this frame.
    pub nacked: bool,
    /// First-send → reassembly latency, when the recordings share an
    /// epoch and the frame was reassembled. Timing-derived: excluded
    /// from deterministic artifacts.
    pub latency_us: Option<u64>,
}

/// One window's reconstructed timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowTimeline {
    /// The window index.
    pub window: u64,
    /// Frames the window held (from the client's `window_closed` event).
    pub frames_total: usize,
    /// Frames that never reached playout.
    pub lost: usize,
    /// Longest run of consecutive losses in playout order — must equal
    /// the CLF `espread-qos` measured client-side on this realisation.
    pub clf: usize,
    /// Lengths of every loss burst, in playout order.
    pub burst_lengths: Vec<usize>,
    /// Lengths of every received gap between bursts, in playout order.
    pub gap_lengths: Vec<usize>,
    /// Critical-recovery rounds the client spent on this window.
    pub recovery_rounds: u32,
    /// Per-frame verdicts, frame 0 first.
    pub frames: Vec<FrameVerdict>,
}

/// Everything reconstructed for one `(session, conn)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTimeline {
    /// Caller-chosen session tag (see [`crate::trio`]).
    pub session: u32,
    /// The wire connection id.
    pub conn: u32,
    /// Closed windows, ascending.
    pub windows: Vec<WindowTimeline>,
    /// Windows the recordings mention that never closed (the session
    /// died mid-window); their frames carry no verdicts.
    pub unclosed_windows: Vec<u64>,
    /// Loss count per [`Cause`], in [`ALL_CAUSES`] order (zeros kept, so
    /// the report shape is stable).
    pub cause_totals: Vec<(Cause, usize)>,
    /// Control datagrams the proxy dropped during this session group.
    pub dropped_control: u64,
}

impl SessionTimeline {
    /// Per-window CLF values, window order — the cross-check against
    /// `espread-qos`'s client-side series.
    pub fn clf_values(&self) -> Vec<usize> {
        self.windows.iter().map(|w| w.clf).collect()
    }
}

/// The reconstructor's complete output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimelineReport {
    /// Per-`(session, conn)` timelines, ascending.
    pub sessions: Vec<SessionTimeline>,
    /// Every causality violation and unattributed loss, deterministic
    /// order. Empty = the timeline is fully explained.
    pub violations: Vec<String>,
    /// Whether any recording's ring overflowed (history incomplete;
    /// absence-based checks were skipped).
    pub overflowed: bool,
}

impl TimelineReport {
    /// Whether every loss was attributed and causality held everywhere.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total residual losses across all sessions.
    pub fn total_lost(&self) -> usize {
        self.sessions
            .iter()
            .flat_map(|s| &s.windows)
            .map(|w| w.lost)
            .sum()
    }

    /// Total frames that needed a retransmission round to survive.
    pub fn total_recovered(&self) -> usize {
        self.sessions
            .iter()
            .flat_map(|s| &s.windows)
            .flat_map(|w| &w.frames)
            .filter(|f| f.outcome == FrameOutcome::Recovered)
            .count()
    }
}

/// Per-frame accumulator while scanning a session group's events.
#[derive(Debug, Default)]
struct FrameAccum {
    sent_frags: BTreeSet<u16>,
    sent: u32,
    retransmit_sent: u32,
    first_sent_us: BTreeMap<u16, u64>,
    refused: u32,
    shed: u32,
    nack_received: bool,
    dropped_frags: BTreeSet<u16>,
    proxy_dropped: u32,
    forwarded_frags: BTreeSet<u16>,
    mangled: bool,
    delivered_frags: BTreeSet<u16>,
    delivered: u32,
    first_delivered_us: BTreeMap<u16, u64>,
    retransmit_delivered: bool,
    ignored_frags: BTreeSet<u16>,
    reassembled: bool,
    reassembled_us: Option<u64>,
    abandoned: bool,
    nack_sent: bool,
}

#[derive(Debug, Default)]
struct WindowAccum {
    frames: BTreeMap<u32, FrameAccum>,
    closed_with: Option<usize>,
    recovery_rounds: u32,
    server_touched: bool,
}

/// Rebuilds the causal timeline from any number of recordings (typically
/// one or two server/proxy/client trios). Recordings may arrive in any
/// order; sessions are separated by their `session` tag and connection
/// id.
pub fn reconstruct(recordings: &[Recording]) -> TimelineReport {
    let overflowed = recordings.iter().any(|r| r.dropped > 0);

    // session tag → its recordings.
    let mut groups: BTreeMap<u32, Vec<&Recording>> = BTreeMap::new();
    for rec in recordings {
        groups.entry(rec.session).or_default().push(rec);
    }

    let mut sessions = Vec::new();
    let mut violations = Vec::new();
    for (&session, group) in &groups {
        let timing_ok = group.iter().all(|r| r.shared_epoch);
        let mangled_total: u64 = group
            .iter()
            .filter(|r| r.role == Role::Proxy)
            .flat_map(|r| &r.events)
            .filter(|e| matches!(e.kind, EventKind::Corrupted | EventKind::Truncated))
            .count() as u64;
        let dropped_control: u64 = group
            .iter()
            .filter(|r| r.role == Role::Proxy)
            .flat_map(|r| &r.events)
            .filter(|e| e.kind == EventKind::DroppedControl)
            .count() as u64;

        // Connection ids with any labelled traffic.
        let conns: BTreeSet<u32> = group
            .iter()
            .flat_map(|r| &r.events)
            .filter(|e| e.window != WINDOW_NONE && e.conn != 0)
            .map(|e| e.conn)
            .collect();

        for &conn in &conns {
            let mut windows: BTreeMap<u64, WindowAccum> = BTreeMap::new();
            for rec in group {
                for e in &rec.events {
                    if e.conn != conn || e.window == WINDOW_NONE {
                        continue;
                    }
                    scan_event(rec.role, e, windows.entry(e.window).or_default());
                }
            }
            let label =
                |w: u64, f: u32| format!("session {session} conn {conn} window {w} frame {f}");
            let mut out_windows = Vec::new();
            let mut unclosed = Vec::new();
            let mut cause_counts: BTreeMap<Cause, usize> = BTreeMap::new();
            for (&w, acc) in &windows {
                let Some(frames_total) = acc.closed_with else {
                    unclosed.push(w);
                    continue;
                };
                let mut verdicts = Vec::with_capacity(frames_total);
                for f in 0..frames_total as u32 {
                    let fa = acc.frames.get(&f);
                    let verdict = frame_verdict(
                        f,
                        fa,
                        acc,
                        mangled_total,
                        dropped_control,
                        timing_ok,
                        overflowed,
                        |what| violations_push(&mut violations, &label(w, f), what),
                    );
                    if let FrameOutcome::Lost(cause) = verdict.outcome {
                        *cause_counts.entry(cause).or_default() += 1;
                    }
                    verdicts.push(verdict);
                }
                let pattern =
                    LossPattern::from_received(verdicts.iter().map(|v| v.outcome.is_received()));
                let clf = ContinuityMetrics::of(&pattern).clf();
                let (bursts, gaps) = burst_gap_lengths(&pattern);
                out_windows.push(WindowTimeline {
                    window: w,
                    frames_total,
                    lost: pattern.lost(),
                    clf,
                    burst_lengths: bursts,
                    gap_lengths: gaps,
                    recovery_rounds: acc.recovery_rounds,
                    frames: verdicts,
                });
            }
            sessions.push(SessionTimeline {
                session,
                conn,
                windows: out_windows,
                unclosed_windows: unclosed,
                cause_totals: ALL_CAUSES
                    .iter()
                    .map(|&c| (c, cause_counts.get(&c).copied().unwrap_or(0)))
                    .collect(),
                dropped_control,
            });
        }
    }
    TimelineReport {
        sessions,
        violations,
        overflowed,
    }
}

fn violations_push(violations: &mut Vec<String>, label: &str, what: String) {
    violations.push(format!("{label}: {what}"));
}

fn scan_event(role: Role, e: &ObsEvent, acc: &mut WindowAccum) {
    use EventKind::*;
    // Window-level events first (frame may be the sentinel).
    match (role, e.kind) {
        (Role::Client, WindowClosed) => {
            acc.closed_with = Some(e.detail as usize);
            return;
        }
        // Only server-*originated* events mark a window as known to the
        // server. `AckReceived` is the server echoing a client label, and
        // a corrupted datagram can forge that label — a phantom window's
        // ACK must not disguise it as a real one.
        (Role::Server, Queued | WindowEndSent | AckTimeout) => {
            acc.server_touched = true;
            return;
        }
        (Role::Server, AckReceived) => return,
        _ => {}
    }
    let frame = e.frame;
    let fa = acc.frames.entry(frame).or_default();
    let frag = detail_frag(e.detail);
    match (role, e.kind) {
        (Role::Server, Sent) => {
            acc.server_touched = true;
            fa.sent += 1;
            fa.sent_frags.insert(frag);
            fa.first_sent_us.entry(frag).or_insert(e.t_us);
        }
        (Role::Server, Retransmitted) => {
            acc.server_touched = true;
            fa.retransmit_sent += 1;
            fa.sent_frags.insert(frag);
            fa.first_sent_us.entry(frag).or_insert(e.t_us);
        }
        (Role::Server, SendRefused) => {
            acc.server_touched = true;
            fa.refused += 1;
        }
        (Role::Server, Shed) => {
            acc.server_touched = true;
            fa.shed += 1;
        }
        (Role::Server, NackReceived) => {
            fa.nack_received = true;
        }
        (Role::Proxy, DroppedData) => {
            fa.proxy_dropped += 1;
            fa.dropped_frags.insert(frag);
        }
        (Role::Proxy, ForwardedData) => {
            fa.forwarded_frags.insert(frag);
        }
        (Role::Proxy, Corrupted | Truncated) => {
            fa.mangled = true;
        }
        (Role::Client, Delivered) => {
            fa.delivered += 1;
            fa.delivered_frags.insert(frag);
            fa.first_delivered_us.entry(frag).or_insert(e.t_us);
            if detail_retransmit(e.detail) {
                fa.retransmit_delivered = true;
            }
        }
        (Role::Client, Ignored) => {
            fa.ignored_frags.insert(frag);
        }
        (Role::Client, Reassembled) => {
            fa.reassembled = true;
            fa.reassembled_us.get_or_insert(e.t_us);
        }
        (Role::Client, Abandoned) => {
            fa.abandoned = true;
        }
        (Role::Client, NackSent) => {
            fa.nack_sent = true;
            acc.recovery_rounds = acc.recovery_rounds.max(e.detail);
        }
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn frame_verdict(
    frame: u32,
    fa: Option<&FrameAccum>,
    win: &WindowAccum,
    mangled_total: u64,
    dropped_control: u64,
    timing_ok: bool,
    overflowed: bool,
    mut violate: impl FnMut(String),
) -> FrameVerdict {
    let never_seen = FrameAccum::default();
    let fa = fa.unwrap_or(&never_seen);
    let labels_trustworthy = mangled_total == 0;

    // ── causality checks ────────────────────────────────────────────
    if !overflowed {
        if fa.reassembled && fa.abandoned {
            violate("both reassembled and abandoned".into());
        }
        if labels_trustworthy {
            for &frag in &fa.delivered_frags {
                if !fa.sent_frags.contains(&frag) {
                    violate(format!("fragment {frag} delivered but never sent"));
                } else if timing_ok {
                    let sent = fa.first_sent_us.get(&frag);
                    let delivered = fa.first_delivered_us.get(&frag);
                    if let (Some(&s), Some(&d)) = (sent, delivered) {
                        if d < s {
                            violate(format!("fragment {frag} delivered before it was sent"));
                        }
                    }
                }
            }
        }
    }

    // ── outcome + attribution ───────────────────────────────────────
    let outcome = if fa.reassembled {
        if fa.retransmit_delivered || fa.retransmit_sent > 0 {
            FrameOutcome::Recovered
        } else {
            FrameOutcome::Delivered
        }
    } else {
        match attribute(fa, win, mangled_total, dropped_control) {
            Some(cause) => FrameOutcome::Lost(cause),
            None => {
                if !overflowed {
                    violate("residual loss unattributed".into());
                }
                FrameOutcome::LostUnattributed
            }
        }
    };

    let latency_us = if timing_ok && fa.reassembled {
        match (fa.first_sent_us.values().min(), fa.reassembled_us) {
            (Some(&s), Some(r)) => Some(r.saturating_sub(s)),
            _ => None,
        }
    } else {
        None
    };

    FrameVerdict {
        frame,
        outcome,
        sent: fa.sent,
        retransmit_sent: fa.retransmit_sent,
        proxy_dropped: fa.proxy_dropped,
        delivered: fa.delivered,
        nacked: fa.nack_sent,
        latency_us,
    }
}

/// The attribution ladder, most specific cause first.
fn attribute(
    fa: &FrameAccum,
    win: &WindowAccum,
    mangled_total: u64,
    dropped_control: u64,
) -> Option<Cause> {
    if fa.refused > 0 {
        return Some(Cause::OversizeRefusal);
    }
    // A shed frame was queued but deliberately never sent (or its only
    // recovery round was skipped as stale) — the loss is the server's own
    // overload decision, not the channel's.
    if fa.shed > 0 {
        return Some(Cause::Shed);
    }
    if fa.nack_sent {
        if fa.retransmit_sent > 0 || fa.nack_received {
            return Some(Cause::RetryExhaustion);
        }
        if dropped_control > 0 {
            return Some(Cause::ControlDrop);
        }
    }
    if fa.proxy_dropped > 0 {
        return Some(Cause::GeLoss);
    }
    if fa.mangled {
        return Some(Cause::CorruptedInFlight);
    }
    if !fa.ignored_frags.is_empty() {
        return Some(Cause::StaleDiscard);
    }
    if !win.server_touched && mangled_total > 0 {
        return Some(Cause::PhantomWindow);
    }
    if !fa.sent_frags.is_empty() {
        return Some(Cause::SocketLoss);
    }
    None
}

/// Burst (lost-run) and gap (received-run) lengths in playout order.
fn burst_gap_lengths(pattern: &LossPattern) -> (Vec<usize>, Vec<usize>) {
    let mut bursts = Vec::new();
    let mut gaps = Vec::new();
    let mut run = 0usize;
    let mut losing = None::<bool>;
    for i in 0..pattern.len() {
        let lost = pattern.is_lost(i);
        match losing {
            Some(prev) if prev == lost => run += 1,
            Some(prev) => {
                if prev {
                    bursts.push(run);
                } else {
                    gaps.push(run);
                }
                run = 1;
            }
            None => run = 1,
        }
        losing = Some(lost);
    }
    match losing {
        Some(true) => bursts.push(run),
        Some(false) => gaps.push(run),
        None => {}
    }
    (bursts, gaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::data_detail;
    use crate::recorder::{trio, FlightRecorder, Recording};

    /// One window, `frames` frames, one fragment each; `lost` frames are
    /// dropped by the proxy. Returns the trio's recordings.
    fn ge_session(frames: u32, lost: &[u32]) -> Vec<Recording> {
        let (server, proxy, client) = trio(256, 0);
        for f in 0..frames {
            server.record(EventKind::Queued, 1, 0, f, f);
        }
        for f in 0..frames {
            server.record(EventKind::Sent, 1, 0, f, data_detail(0, false));
            if lost.contains(&f) {
                proxy.record(EventKind::DroppedData, 1, 0, f, data_detail(0, false));
            } else {
                proxy.record(EventKind::ForwardedData, 1, 0, f, data_detail(0, false));
                client.record(EventKind::Delivered, 1, 0, f, data_detail(0, false));
                client.record(EventKind::Reassembled, 1, 0, f, 1);
            }
        }
        server.record(EventKind::WindowEndSent, 1, 0, u32::MAX, 0);
        for &f in lost {
            client.record(EventKind::Abandoned, 1, 0, f, 0);
        }
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, frames);
        client.record(EventKind::AckSent, 1, 0, u32::MAX, 1);
        vec![server.recording(), proxy.recording(), client.recording()]
    }

    #[test]
    fn clean_session_attributes_everything_and_matches_qos() {
        let report = reconstruct(&ge_session(8, &[2, 3, 6]));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(!report.overflowed);
        assert_eq!(report.sessions.len(), 1);
        let s = &report.sessions[0];
        assert_eq!((s.session, s.conn), (0, 1));
        assert_eq!(s.windows.len(), 1);
        let w = &s.windows[0];
        assert_eq!(w.frames_total, 8);
        assert_eq!(w.lost, 3);
        // Cross-check against espread-qos on the same pattern.
        let pattern = LossPattern::from_lost_indices(8, [2usize, 3, 6]);
        assert_eq!(w.clf, ContinuityMetrics::of(&pattern).clf());
        assert_eq!(w.clf, 2);
        assert_eq!(w.burst_lengths, vec![2, 1]);
        assert_eq!(w.gap_lengths, vec![2, 2, 1]);
        for f in [2u32, 3, 6] {
            assert_eq!(
                w.frames[f as usize].outcome,
                FrameOutcome::Lost(Cause::GeLoss),
                "frame {f}"
            );
        }
        assert_eq!(w.frames[0].outcome, FrameOutcome::Delivered);
        let ge_total = s
            .cause_totals
            .iter()
            .find(|(c, _)| *c == Cause::GeLoss)
            .unwrap()
            .1;
        assert_eq!(ge_total, 3);
        assert_eq!(report.total_lost(), 3);
    }

    #[test]
    fn latency_is_reported_on_shared_epochs() {
        let report = reconstruct(&ge_session(4, &[]));
        let w = &report.sessions[0].windows[0];
        assert!(w.frames.iter().all(|f| f.latency_us.is_some()));
    }

    #[test]
    fn recovery_is_recognised_and_exhaustion_attributed() {
        let (server, proxy, client) = trio(256, 0);
        // Frame 0: lost, NACKed, retransmitted, recovered.
        server.record(EventKind::Sent, 1, 0, 0, data_detail(0, false));
        proxy.record(EventKind::DroppedData, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::NackSent, 1, 0, 0, 1);
        server.record(EventKind::NackReceived, 1, 0, 0, 0);
        server.record(EventKind::Retransmitted, 1, 0, 0, data_detail(0, true));
        proxy.record(EventKind::ForwardedData, 1, 0, 0, data_detail(0, true));
        client.record(EventKind::Delivered, 1, 0, 0, data_detail(0, true));
        client.record(EventKind::Reassembled, 1, 0, 0, 1);
        // Frame 1: lost, NACKed, retransmitted, retransmission lost too.
        server.record(EventKind::Sent, 1, 0, 1, data_detail(0, false));
        proxy.record(EventKind::DroppedData, 1, 0, 1, data_detail(0, false));
        client.record(EventKind::NackSent, 1, 0, 1, 1);
        server.record(EventKind::NackReceived, 1, 0, 1, 0);
        server.record(EventKind::Retransmitted, 1, 0, 1, data_detail(0, true));
        proxy.record(EventKind::DroppedData, 1, 0, 1, data_detail(0, true));
        client.record(EventKind::Abandoned, 1, 0, 1, 0);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 2);
        let report = reconstruct(&[server.recording(), proxy.recording(), client.recording()]);
        assert!(report.is_clean(), "{:?}", report.violations);
        let w = &report.sessions[0].windows[0];
        assert_eq!(w.frames[0].outcome, FrameOutcome::Recovered);
        assert_eq!(
            w.frames[1].outcome,
            FrameOutcome::Lost(Cause::RetryExhaustion)
        );
        assert!(w.frames[1].nacked);
        assert_eq!(report.total_recovered(), 1);
    }

    #[test]
    fn lost_nack_is_attributed_to_the_control_drop() {
        let (server, proxy, client) = trio(256, 0);
        server.record(EventKind::Sent, 1, 0, 0, data_detail(0, false));
        proxy.record(EventKind::DroppedData, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::NackSent, 1, 0, 0, 1);
        proxy.record(EventKind::DroppedControl, 1, WINDOW_NONE, u32::MAX, 8);
        client.record(EventKind::Abandoned, 1, 0, 0, 0);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 1);
        let report = reconstruct(&[server.recording(), proxy.recording(), client.recording()]);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(
            report.sessions[0].windows[0].frames[0].outcome,
            FrameOutcome::Lost(Cause::ControlDrop)
        );
        assert_eq!(report.sessions[0].dropped_control, 1);
    }

    #[test]
    fn oversize_refusal_wins_the_attribution_ladder() {
        let (server, _proxy, client) = trio(64, 0);
        server.record(EventKind::SendRefused, 1, 0, 0, 0);
        client.record(EventKind::Abandoned, 1, 0, 0, 0);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 1);
        let report = reconstruct(&[server.recording(), client.recording()]);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(
            report.sessions[0].windows[0].frames[0].outcome,
            FrameOutcome::Lost(Cause::OversizeRefusal)
        );
    }

    #[test]
    fn shed_frames_are_attributed_to_the_server_s_own_decision() {
        let (server, _proxy, client) = trio(64, 0);
        // Frame 0: queued, then shed under overload — never sent at all.
        server.record(EventKind::Queued, 1, 0, 0, 0);
        server.record(EventKind::Shed, 1, 0, 0, 0);
        client.record(EventKind::Abandoned, 1, 0, 0, 0);
        // Frame 1: sent, lost, NACKed — but the recovery round was skipped
        // as stale. Shed must outrank RetryExhaustion in the ladder.
        server.record(EventKind::Sent, 1, 0, 1, data_detail(0, false));
        client.record(EventKind::NackSent, 1, 0, 1, 1);
        server.record(EventKind::NackReceived, 1, 0, 1, 0);
        server.record(EventKind::Shed, 1, 0, 1, 0);
        client.record(EventKind::Abandoned, 1, 0, 1, 0);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 2);
        let report = reconstruct(&[server.recording(), client.recording()]);
        assert!(report.is_clean(), "{:?}", report.violations);
        let w = &report.sessions[0].windows[0];
        assert_eq!(w.frames[0].outcome, FrameOutcome::Lost(Cause::Shed));
        assert_eq!(w.frames[1].outcome, FrameOutcome::Lost(Cause::Shed));
        let shed_total = report.sessions[0]
            .cause_totals
            .iter()
            .find(|(c, _)| *c == Cause::Shed)
            .unwrap()
            .1;
        assert_eq!(shed_total, 2);
    }

    #[test]
    fn socket_loss_is_the_forwarded_but_vanished_bucket() {
        let (server, proxy, client) = trio(64, 0);
        server.record(EventKind::Sent, 1, 0, 0, data_detail(0, false));
        proxy.record(EventKind::ForwardedData, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::Abandoned, 1, 0, 0, 0);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 1);
        let report = reconstruct(&[server.recording(), proxy.recording(), client.recording()]);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(
            report.sessions[0].windows[0].frames[0].outcome,
            FrameOutcome::Lost(Cause::SocketLoss)
        );
    }

    #[test]
    fn unattributed_loss_fails_loudly() {
        let (_server, _proxy, client) = trio(64, 0);
        // The client claims a loss but no other role saw the frame at all.
        client.record(EventKind::Abandoned, 1, 0, 0, 0);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 1);
        let report = reconstruct(&[client.recording()]);
        assert!(!report.is_clean());
        assert!(report.violations[0].contains("residual loss unattributed"));
        assert_eq!(
            report.sessions[0].windows[0].frames[0].outcome,
            FrameOutcome::LostUnattributed
        );
    }

    #[test]
    fn delivered_without_a_send_is_a_causality_violation() {
        let (server, _proxy, client) = trio(64, 0);
        server.record(EventKind::Queued, 1, 0, 0, 0); // window exists server-side
        client.record(EventKind::Delivered, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::Reassembled, 1, 0, 0, 1);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 1);
        let report = reconstruct(&[server.recording(), client.recording()]);
        assert!(!report.is_clean());
        assert!(report.violations[0].contains("delivered but never sent"));
    }

    #[test]
    fn delivered_before_sent_is_a_causality_violation() {
        // Hand-build recordings so the timestamps can be inverted.
        let (server, _proxy, client) = trio(64, 0);
        let mut srv = server.recording();
        let mut cli = client.recording();
        srv.events.push(ObsEvent {
            t_us: 100,
            conn: 1,
            window: 0,
            frame: 0,
            kind: EventKind::Sent,
            detail: data_detail(0, false),
        });
        cli.events.push(ObsEvent {
            t_us: 50,
            conn: 1,
            window: 0,
            frame: 0,
            kind: EventKind::Delivered,
            detail: data_detail(0, false),
        });
        cli.events.push(ObsEvent {
            t_us: 51,
            conn: 1,
            window: 0,
            frame: 0,
            kind: EventKind::Reassembled,
            detail: 1,
        });
        cli.events.push(ObsEvent {
            t_us: 60,
            conn: 1,
            window: 0,
            frame: u32::MAX,
            kind: EventKind::WindowClosed,
            detail: 1,
        });
        let report = reconstruct(&[srv, cli]);
        assert!(!report.is_clean());
        assert!(report.violations[0].contains("delivered before it was sent"));
    }

    #[test]
    fn overflow_degrades_instead_of_accusing() {
        let client = FlightRecorder::new(Role::Client, 2);
        client.record(EventKind::Delivered, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::Abandoned, 1, 0, 1, 0);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 2); // evicts the first
        let report = reconstruct(&[client.recording()]);
        assert!(report.overflowed);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(
            report.sessions[0].windows[0].frames[1].outcome,
            FrameOutcome::LostUnattributed
        );
    }

    #[test]
    fn corruption_disables_label_trusting_checks_and_is_attributed() {
        let (server, proxy, client) = trio(128, 0);
        server.record(EventKind::Sent, 1, 0, 0, data_detail(0, false));
        proxy.record(EventKind::Corrupted, 1, 0, 0, data_detail(0, false));
        proxy.record(EventKind::ForwardedData, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::DecodeError, 1, WINDOW_NONE, u32::MAX, 0);
        // Forged labels: a delivery the server never sent must NOT be a
        // violation while the proxy is known to mangle bytes.
        client.record(EventKind::Delivered, 1, 0, 3, data_detail(0, false));
        client.record(EventKind::Reassembled, 1, 0, 3, 1);
        client.record(EventKind::Abandoned, 1, 0, 0, 0);
        for f in [1u32, 2] {
            // More forged-label deliveries the server never sent.
            client.record(EventKind::Delivered, 1, 0, f, data_detail(0, false));
            client.record(EventKind::Reassembled, 1, 0, f, 1);
        }
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 4);
        let report = reconstruct(&[server.recording(), proxy.recording(), client.recording()]);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(
            report.sessions[0].windows[0].frames[0].outcome,
            FrameOutcome::Lost(Cause::CorruptedInFlight)
        );
    }

    #[test]
    fn phantom_window_needs_corruption_in_the_session() {
        let (server, proxy, client) = trio(128, 0);
        // A real window 0 so the session has server presence elsewhere.
        server.record(EventKind::Sent, 1, 0, 0, data_detail(0, false));
        proxy.record(EventKind::Corrupted, 1, 0, 0, data_detail(0, false));
        proxy.record(EventKind::ForwardedData, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::Delivered, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::Reassembled, 1, 0, 0, 1);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 1);
        // Window 7 exists only in the client's imagination (forged
        // WindowEnd): all frames lost, no server events for it.
        client.record(EventKind::Abandoned, 1, 7, 0, 0);
        client.record(EventKind::WindowClosed, 1, 7, u32::MAX, 1);
        let report = reconstruct(&[server.recording(), proxy.recording(), client.recording()]);
        assert!(report.is_clean(), "{:?}", report.violations);
        let w7 = report.sessions[0]
            .windows
            .iter()
            .find(|w| w.window == 7)
            .unwrap();
        assert_eq!(
            w7.frames[0].outcome,
            FrameOutcome::Lost(Cause::PhantomWindow)
        );
    }

    #[test]
    fn unclosed_windows_are_listed_not_judged() {
        let (server, _proxy, client) = trio(64, 0);
        server.record(EventKind::Sent, 1, 3, 0, data_detail(0, false));
        client.record(EventKind::Delivered, 1, 3, 0, data_detail(0, false));
        let report = reconstruct(&[server.recording(), client.recording()]);
        assert!(report.is_clean());
        assert_eq!(report.sessions[0].windows.len(), 0);
        assert_eq!(report.sessions[0].unclosed_windows, vec![3]);
    }

    #[test]
    fn sessions_and_conns_are_separated() {
        let mut recordings = ge_session(4, &[1]);
        let (server, proxy, client) = trio(64, 1);
        server.record(EventKind::Sent, 1, 0, 0, data_detail(0, false));
        proxy.record(EventKind::ForwardedData, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::Delivered, 1, 0, 0, data_detail(0, false));
        client.record(EventKind::Reassembled, 1, 0, 0, 1);
        client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 1);
        recordings.extend([server.recording(), proxy.recording(), client.recording()]);
        let report = reconstruct(&recordings);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.sessions[0].session, 0);
        assert_eq!(report.sessions[1].session, 1);
        assert_eq!(report.sessions[0].clf_values(), vec![1]);
        assert_eq!(report.sessions[1].clf_values(), vec![0]);
    }

    #[test]
    fn burst_gap_lengths_cover_the_edges() {
        let all_lost = LossPattern::all_lost(3);
        assert_eq!(burst_gap_lengths(&all_lost), (vec![3], vec![]));
        let none_lost = LossPattern::all_received(3);
        assert_eq!(burst_gap_lengths(&none_lost), (vec![], vec![3]));
        let empty = LossPattern::all_received(0);
        assert_eq!(burst_gap_lengths(&empty), (vec![], vec![]));
    }
}
