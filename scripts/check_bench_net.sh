#!/usr/bin/env bash
# Gates the event-loop server's session throughput against its committed
# baseline.
#
# Usage: scripts/check_bench_net.sh [baseline.json] [fresh.json]
#
# Compares `sessions_per_sec` (wave size over wall-clock; see net_c10k's
# docs) and fails when the fresh measurement regresses more than 20% past
# the committed BENCH_net.json. The wave is pacing/RTT-bound rather than
# CPU-bound, so the metric travels across hosts better than raw
# nanoseconds — but the committed baseline is still pinned conservatively
# below the reference measurement (see the "measured" field) to absorb
# runner-to-runner spread. Re-pin it when the CI runner class changes.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${1:-BENCH_net.json}
FRESH=${2:-results/net_c10k.json}
[[ -s $BASELINE ]] || { echo "error: missing baseline $BASELINE" >&2; exit 1; }
[[ -s $FRESH ]] || { echo "error: missing measurement $FRESH (run net_c10k first)" >&2; exit 1; }

python3 - "$BASELINE" "$FRESH" <<'EOF'
import json
import sys

baseline = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))
if fresh["completed"] != fresh["sessions"]:
    print(
        f"net_c10k: only {fresh['completed']}/{fresh['sessions']} "
        "sessions completed -> FAIL"
    )
    sys.exit(1)
base, new = baseline["sessions_per_sec"], fresh["sessions_per_sec"]
limit = base * 0.80
verdict = "ok" if new >= limit else "REGRESSION"
print(
    f"net_c10k sessions/sec: committed floor {base:.0f}, fresh {new:.0f} "
    f"({fresh['sessions']} sessions), limit {limit:.0f} -> {verdict}"
)
sys.exit(0 if new >= limit else 1)
EOF
