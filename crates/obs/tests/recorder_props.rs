//! Property tests for the ring buffer and for concurrent writers.

use std::thread;

use espread_obs::{EventKind, FlightRecorder, Role};
use proptest::prelude::*;

proptest! {
    /// The overflow counter is exact: retained + dropped always equals
    /// the number of record() calls, retention is capped at capacity, and
    /// the survivors are precisely the newest events, oldest first.
    #[test]
    fn overflow_accounting_is_exact(
        capacity in 1usize..128,
        total in 0u32..400,
    ) {
        let rec = FlightRecorder::new(Role::Client, capacity);
        for i in 0..total {
            rec.record(EventKind::Delivered, 1, 0, i, i);
        }
        let recording = rec.recording();
        prop_assert_eq!(recording.capacity, capacity);
        prop_assert_eq!(
            recording.events.len() as u64 + recording.dropped,
            u64::from(total)
        );
        prop_assert_eq!(recording.events.len(), (total as usize).min(capacity));
        let expect_first = total - recording.events.len() as u32;
        for (i, e) in recording.events.iter().enumerate() {
            prop_assert_eq!(e.frame, expect_first + i as u32);
        }
    }

    /// Concurrent writers: the merged recording holds every event that
    /// was not counted as dropped, and each thread's surviving events
    /// appear in that thread's program order (the ring is a single
    /// serialisation point, so per-thread order can never invert).
    #[test]
    fn merged_order_is_consistent_with_each_writer(
        counts in prop::collection::vec(0u32..150, 2..4),
        capacity in 16usize..256,
    ) {
        let rec = FlightRecorder::new(Role::Server, capacity);
        thread::scope(|scope| {
            for (t, &n) in counts.iter().enumerate() {
                let rec = rec.clone();
                scope.spawn(move || {
                    for i in 0..n {
                        // conn identifies the writer, frame its sequence.
                        rec.record(EventKind::Sent, t as u32, 0, i, 0);
                    }
                });
            }
        });
        let recording = rec.recording();
        let total: u32 = counts.iter().sum();
        prop_assert_eq!(
            recording.events.len() as u64 + recording.dropped,
            u64::from(total)
        );
        for (t, &n) in counts.iter().enumerate() {
            let frames: Vec<u32> = recording
                .events
                .iter()
                .filter(|e| e.conn == t as u32)
                .map(|e| e.frame)
                .collect();
            // Strictly increasing ⇒ consistent with program order, and
            // survivors are a suffix of what the thread wrote.
            prop_assert!(frames.windows(2).all(|w| w[0] < w[1]));
            if let Some(&last) = frames.last() {
                prop_assert_eq!(last, n - 1, "newest event of a writer survives");
            }
        }
        // Timestamps are globally monotonic in merged order.
        prop_assert!(recording
            .events
            .windows(2)
            .all(|w| w[0].t_us <= w[1].t_us));
    }
}
