//! Seeded fault-schedule derivation.
//!
//! One u64 seed deterministically expands into everything a chaos cell
//! does: which invariant regime it runs under ([`ChaosMode`]), the
//! session shape (windows, GOPs per window), the Gilbert–Elliott channel
//! parameters, and every proxy fault knob. The derivation is a pure
//! function of the seed — no wall clock, no thread identity — so a
//! violation's `REPRODUCER seed=…` line re-creates the exact same
//! schedule on any machine.

use std::fmt;

use espread_net::FaultPolicy;
use espread_netsim::rng::DetRng;

/// The invariant regime a cell's fault mix allows it to assert.
///
/// Chaos has a trade-off: the nastier the schedule, the weaker the
/// postcondition a run can be held to. Rather than water every check
/// down to the weakest, each seed draws one of three regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Bursty data loss only, recovery off — both orderings stream over
    /// the *identical* channel realisation (the paper's §5.1 same-channel
    /// methodology), so the cell can assert completion, conservation,
    /// equal drop counts, and spread CLF ≤ in-order CLF.
    Compare,
    /// Lossless data path under control-plane chaos (dropped handshake
    /// and ACK datagrams, duplicates, reorders). The retry machinery must
    /// fully absorb all of it: completion with zero frame loss.
    ControlChaos,
    /// Every knob at once — loss, control drops, duplication, reorder,
    /// corruption, truncation. The session may legitimately fail, but it
    /// must fail *well*: a typed error or completion, never a panic or a
    /// stall, with the proxy conservation law intact.
    FullChaos,
    /// Overload: a capacity-capped server under a handshake flood, a
    /// session swarm above `max_sessions`, and deliberately slow readers.
    /// The channel itself is clean — the "fault" is demand. Invariants:
    /// live sessions never exceed the cap, refusals are typed `Busy`
    /// replies, no critical frame is ever shed, and every admitted
    /// session ends in a typed outcome and is reaped. This regime is
    /// never drawn by [`FaultSchedule::derive`] (which would re-shuffle
    /// every existing seed's schedule); it has its own constructor and
    /// seed namespace via [`FaultSchedule::derive_overload`].
    Overload,
}

impl fmt::Display for ChaosMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChaosMode::Compare => "compare",
            ChaosMode::ControlChaos => "control",
            ChaosMode::FullChaos => "full",
            ChaosMode::Overload => "overload",
        })
    }
}

/// The full fault plan for one chaos cell, derived from a seed.
///
/// Knob fields use `0` for "off" so the summary line stays flat and the
/// struct needs no `Option` plumbing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// The seed this schedule was derived from.
    pub seed: u64,
    /// Which invariant regime the cell runs under.
    pub mode: ChaosMode,
    /// Buffer windows the stream carries.
    pub windows: usize,
    /// GOPs per buffer window (session-shape fuzzing: 1 or 2).
    pub gops_per_window: usize,
    /// Whether the data path runs through a Gilbert–Elliott channel.
    pub gilbert: bool,
    /// Gilbert–Elliott stay-good probability.
    pub p_good: f64,
    /// Gilbert–Elliott stay-bad probability.
    pub p_bad: f64,
    /// Seed pinning the channel's exact loss realisation.
    pub channel_seed: u64,
    /// Control datagrams dropped server→client before forwarding resumes.
    pub drop_control_down: u32,
    /// Control datagrams dropped client→server before forwarding resumes.
    pub drop_control_up: u32,
    /// Duplicate every nth surviving datagram (0 = off).
    pub duplicate_every: u64,
    /// Hold every nth surviving datagram back one slot (0 = off).
    pub reorder_every: u64,
    /// XOR one byte of every nth surviving datagram (0 = off).
    pub corrupt_every: u64,
    /// Halve every nth surviving datagram (0 = off).
    pub truncate_every: u64,
    /// Whether the client NACKs missing critical frames.
    pub recovery: bool,
    /// Server admission cap for the overload regime (0 = no cap).
    pub max_sessions: usize,
    /// Concurrent real clients launched above the cap (0 = none).
    pub swarm: usize,
    /// Raw distinct-nonce Hello datagrams flooded at the server (0 = none).
    pub flood_hellos: u32,
    /// Admitted sessions whose reader deliberately wedges after Begin
    /// (0 = none).
    pub slow_readers: usize,
}

impl FaultSchedule {
    /// Expands `seed` into a complete fault plan. Pure and stable: the
    /// same seed yields the same schedule on every platform and run.
    pub fn derive(seed: u64) -> Self {
        let mut rng = DetRng::seed_from(seed);
        let mode = match rng.below(3) {
            0 => ChaosMode::Compare,
            1 => ChaosMode::ControlChaos,
            _ => ChaosMode::FullChaos,
        };
        let mut s = FaultSchedule {
            seed,
            mode,
            windows: 3 + rng.below(3) as usize,
            gops_per_window: 1 + rng.below(2) as usize,
            gilbert: false,
            p_good: 0.90 + 0.02 * rng.below(4) as f64,
            p_bad: 0.50 + 0.10 * rng.below(3) as f64,
            channel_seed: rng.next_u64(),
            drop_control_down: 0,
            drop_control_up: 0,
            duplicate_every: 0,
            reorder_every: 0,
            corrupt_every: 0,
            truncate_every: 0,
            recovery: false,
            max_sessions: 0,
            swarm: 0,
            flood_hellos: 0,
            slow_readers: 0,
        };
        match mode {
            // Anything beyond pure data loss would perturb the matched
            // realisation the CLF comparison rests on.
            ChaosMode::Compare => s.gilbert = true,
            ChaosMode::ControlChaos => {
                // Capped at what the retry budget provably absorbs (the
                // e2e suite's bounds), so completion is a hard invariant.
                s.drop_control_down = rng.below(3) as u32;
                s.drop_control_up = rng.below(3) as u32;
                s.duplicate_every = 3 + rng.below(5);
                s.reorder_every = 3 + rng.below(5);
                s.recovery = rng.chance(0.5);
            }
            ChaosMode::FullChaos => {
                s.gilbert = true;
                s.drop_control_down = rng.below(3) as u32;
                s.drop_control_up = rng.below(3) as u32;
                if rng.chance(0.7) {
                    s.duplicate_every = 2 + rng.below(6);
                }
                if rng.chance(0.7) {
                    s.reorder_every = 2 + rng.below(6);
                }
                if rng.chance(0.7) {
                    s.corrupt_every = 2 + rng.below(8);
                }
                if rng.chance(0.7) {
                    s.truncate_every = 2 + rng.below(8);
                }
                s.recovery = rng.chance(0.5);
            }
            // The mode draw above is `below(3)`; widening it would
            // re-derive every existing seed's schedule, so overload
            // lives in its own constructor instead.
            ChaosMode::Overload => unreachable!("derive never draws the overload regime"),
        }
        s
    }

    /// Expands `seed` into an overload-regime plan. Deliberately a
    /// separate constructor with a salted stream: existing seeds passed
    /// to [`FaultSchedule::derive`] keep their byte-identical schedules,
    /// and overload seeds form their own namespace.
    pub fn derive_overload(seed: u64) -> Self {
        // "OVERLOAD" in ASCII — any fixed salt works; it only has to
        // decorrelate this stream from the plain derive() stream.
        let mut rng = DetRng::seed_from(seed ^ 0x4F56_4552_4C4F_4144);
        let max_sessions = 3 + rng.below(2) as usize;
        FaultSchedule {
            seed,
            mode: ChaosMode::Overload,
            windows: 2 + rng.below(2) as usize,
            gops_per_window: 1,
            gilbert: false,
            p_good: 1.0,
            p_bad: 0.0,
            channel_seed: 0,
            drop_control_down: 0,
            drop_control_up: 0,
            duplicate_every: 0,
            reorder_every: 0,
            corrupt_every: 0,
            truncate_every: 0,
            recovery: false,
            max_sessions,
            swarm: 2 * max_sessions,
            flood_hellos: 32 + rng.below(17) as u32,
            slow_readers: 1,
        }
    }

    /// The proxy policy for server→client traffic (the data path): the
    /// Gilbert channel plus every mangling knob lives here.
    pub fn to_client_policy(&self) -> FaultPolicy {
        let mut p = FaultPolicy::transparent();
        if self.gilbert {
            p = p.gilbert_data_loss(self.p_good, self.p_bad, self.channel_seed);
        }
        if self.drop_control_down > 0 {
            p = p.drop_first_control(self.drop_control_down);
        }
        if self.duplicate_every > 0 {
            p = p.duplicate_every(self.duplicate_every);
        }
        if self.reorder_every > 0 {
            p = p.reorder_every(self.reorder_every);
        }
        if self.corrupt_every > 0 {
            p = p.corrupt_every(self.corrupt_every);
        }
        if self.truncate_every > 0 {
            p = p.truncate_every(self.truncate_every);
        }
        p
    }

    /// The proxy policy for client→server traffic (the feedback path):
    /// control drops only, so ACK loss is exercised without desyncing the
    /// data channel realisation.
    pub fn to_server_policy(&self) -> FaultPolicy {
        let mut p = FaultPolicy::transparent();
        if self.drop_control_up > 0 {
            p = p.drop_first_control(self.drop_control_up);
        }
        p
    }

    /// One-line schedule description for reproducer lines and reports.
    /// Stable formatting — it is part of the byte-identical report
    /// surface.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "mode={} windows={} gops={}",
            self.mode, self.windows, self.gops_per_window
        );
        if self.gilbert {
            out.push_str(&format!(
                " ge=({:.2},{:.2})#{}",
                self.p_good, self.p_bad, self.channel_seed
            ));
        }
        if self.drop_control_down > 0 || self.drop_control_up > 0 {
            out.push_str(&format!(
                " ctrl=({},{})",
                self.drop_control_down, self.drop_control_up
            ));
        }
        for (name, every) in [
            ("dup", self.duplicate_every),
            ("reord", self.reorder_every),
            ("corr", self.corrupt_every),
            ("trunc", self.truncate_every),
        ] {
            if every > 0 {
                out.push_str(&format!(" {name}={every}"));
            }
        }
        if self.recovery {
            out.push_str(" rec");
        }
        if self.max_sessions > 0 {
            out.push_str(&format!(
                " cap={} swarm={} flood={} slow={}",
                self.max_sessions, self.swarm, self.flood_hellos, self.slow_readers
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        for seed in 0..64 {
            assert_eq!(FaultSchedule::derive(seed), FaultSchedule::derive(seed));
        }
    }

    #[test]
    fn every_mode_is_reachable() {
        let modes: Vec<ChaosMode> = (0..32).map(|s| FaultSchedule::derive(s).mode).collect();
        assert!(modes.contains(&ChaosMode::Compare));
        assert!(modes.contains(&ChaosMode::ControlChaos));
        assert!(modes.contains(&ChaosMode::FullChaos));
    }

    #[test]
    fn compare_mode_keeps_the_channel_clean() {
        for seed in 0..256 {
            let s = FaultSchedule::derive(seed);
            if s.mode == ChaosMode::Compare {
                assert!(s.gilbert);
                assert!(!s.recovery, "recovery would change data counts");
                assert_eq!(s.drop_control_down + s.drop_control_up, 0);
                assert_eq!(
                    s.duplicate_every + s.reorder_every + s.corrupt_every + s.truncate_every,
                    0,
                    "seed {seed}: mangling knobs would desync the realisation"
                );
            }
        }
    }

    #[test]
    fn control_mode_never_loses_data() {
        for seed in 0..256 {
            let s = FaultSchedule::derive(seed);
            if s.mode == ChaosMode::ControlChaos {
                assert!(!s.gilbert);
                assert_eq!(s.corrupt_every + s.truncate_every, 0);
                assert!(s.drop_control_down <= 2 && s.drop_control_up <= 2);
            }
        }
    }

    #[test]
    fn schedules_stay_in_bounds() {
        for seed in 0..256 {
            let s = FaultSchedule::derive(seed);
            assert!((3..=5).contains(&s.windows), "seed {seed}");
            assert!((1..=2).contains(&s.gops_per_window));
            assert!((0.90..=0.96).contains(&s.p_good));
            assert!((0.50..=0.70).contains(&s.p_bad));
        }
    }

    #[test]
    fn plain_derivation_never_draws_overload_and_keeps_its_knobs_off() {
        for seed in 0..512 {
            let s = FaultSchedule::derive(seed);
            assert_ne!(s.mode, ChaosMode::Overload, "seed {seed}");
            assert_eq!(
                s.max_sessions + s.swarm + s.slow_readers + s.flood_hellos as usize,
                0,
                "seed {seed}: overload knobs must stay off outside the regime"
            );
        }
    }

    #[test]
    fn overload_derivation_is_deterministic_and_in_bounds() {
        for seed in 0..64 {
            let s = FaultSchedule::derive_overload(seed);
            assert_eq!(s, FaultSchedule::derive_overload(seed));
            assert_eq!(s.mode, ChaosMode::Overload);
            assert!((3..=4).contains(&s.max_sessions), "seed {seed}");
            assert_eq!(s.swarm, 2 * s.max_sessions);
            assert!((32..=48).contains(&s.flood_hellos), "seed {seed}");
            assert_eq!(s.slow_readers, 1);
            assert!((2..=3).contains(&s.windows));
            // The channel stays clean: demand is the only fault.
            assert!(!s.gilbert);
            assert_eq!(s.drop_control_down + s.drop_control_up, 0);
            assert_eq!(
                s.duplicate_every + s.reorder_every + s.corrupt_every + s.truncate_every,
                0
            );
        }
    }

    #[test]
    fn overload_summary_names_the_demand_knobs() {
        let s = FaultSchedule::derive_overload(2);
        let line = s.summary();
        assert!(line.starts_with("mode=overload"));
        assert!(line.contains(&format!("cap={}", s.max_sessions)));
        assert!(line.contains(&format!("swarm={}", s.swarm)));
        assert!(line.contains(&format!("flood={}", s.flood_hellos)));
        assert!(line.contains("slow=1"));
    }

    #[test]
    fn summary_names_mode_and_active_knobs() {
        let s = FaultSchedule::derive(2); // FullChaos for this seed? any — check shape only
        let line = s.summary();
        assert!(line.starts_with(&format!("mode={}", s.mode)));
        assert!(line.contains("windows="));
        if s.duplicate_every > 0 {
            assert!(line.contains("dup="));
        }
        if !s.gilbert {
            assert!(!line.contains("ge=("));
        }
    }
}
