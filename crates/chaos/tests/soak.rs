//! A small real soak: four seeds covering all three regimes, run at two
//! worker counts, with the reports compared byte-for-byte. The full
//! [`espread_chaos::DEFAULT_SEEDS`] list runs in the `chaos_soak` bench
//! binary and its CI job; this test keeps the tier-1 suite fast while
//! still driving real sockets through every invariant regime.

use espread_chaos::{run_overload_soak, run_soak, ChaosMode, FaultSchedule, SoakConfig};

/// control (3), compare (4, 8), full (9) — asserted below, so a change
/// to the schedule derivation that silently shifts the mix fails here.
const SEEDS: [u64; 4] = [3, 4, 8, 9];

#[test]
fn small_soak_is_clean_and_byte_identical_across_worker_counts() {
    let mut narrow = SoakConfig::new(SEEDS.to_vec());
    narrow.jobs = 1;
    let mut wide = SoakConfig::new(SEEDS.to_vec());
    wide.jobs = 2;

    let first = run_soak(&narrow);
    assert!(
        first.is_clean(),
        "soak found violations:\n{}",
        first.reproducers().join("\n")
    );

    let second = run_soak(&wide);
    assert_eq!(
        first.to_json().render_pretty(),
        second.to_json().render_pretty(),
        "report must not depend on the worker count"
    );

    let modes: Vec<ChaosMode> = SEEDS
        .iter()
        .map(|&s| FaultSchedule::derive(s).mode)
        .collect();
    assert!(modes.contains(&ChaosMode::Compare));
    assert!(modes.contains(&ChaosMode::ControlChaos));
    assert!(modes.contains(&ChaosMode::FullChaos));
    for cell in &first.cells {
        let schedule = FaultSchedule::derive(cell.seed);
        assert_eq!(cell.schedule, schedule.summary());
        assert_eq!(
            cell.compare.is_some(),
            schedule.mode == ChaosMode::Compare,
            "only compare cells measure CLF"
        );
        if let Some(compare) = &cell.compare {
            assert!(compare.spread_mean_clf <= compare.inorder_mean_clf);
            assert!(!compare.spread_clf.is_empty());
        }
    }
}

/// One real overload cell: a capacity-capped server under a handshake
/// flood, a wedged reader, and a swarm above the cap — clean, and
/// byte-identical across worker counts. Both CI overload seeds run in
/// the `chaos_soak` bench binary; one seed keeps tier-1 fast.
#[test]
fn overload_cell_is_clean_and_byte_identical_across_worker_counts() {
    let mut narrow = SoakConfig::new(vec![2]);
    narrow.jobs = 1;
    let mut wide = SoakConfig::new(vec![2]);
    wide.jobs = 2;

    let first = run_overload_soak(&narrow);
    assert!(
        first.is_clean(),
        "overload soak found violations:\n{}",
        first.reproducers().join("\n")
    );

    let second = run_overload_soak(&wide);
    assert_eq!(
        first.to_json().render_pretty(),
        second.to_json().render_pretty(),
        "overload report must not depend on the worker count"
    );

    let cell = &first.cells[0];
    let schedule = FaultSchedule::derive_overload(cell.seed);
    assert_eq!(schedule.mode, ChaosMode::Overload);
    assert_eq!(cell.schedule, schedule.summary());
    assert!(cell.compare.is_none(), "overload cells measure no CLF");
}
