//! Proves the transport's steady-state hot paths never touch the heap.
//!
//! A counting `#[global_allocator]` wraps the system allocator and two
//! phases run under it:
//!
//! 1. **Wire codec** — every message kind round-trips through
//!    [`try_encode_into`] → [`decode_with`] → [`DecodeScratch::recycle`].
//!    After warm-up laps fill the scratch pools, a measured lap over the
//!    whole message set must allocate nothing: decodes pop pooled
//!    buffers, recycles return them.
//! 2. **`NetWindow` reassembly** — a warm-up window performs a *real*
//!    erasure decode (losing a fragment and recovering it from parity),
//!    which is allowed to allocate: it sizes the flag pools, the parity
//!    group pool, and the [`RecoverScratch`] shard tables. Every window
//!    after it — accept all fragments, accept parity, `recover_with`
//!    (nothing erased), `missing_critical_into`, `close_into`, `reset` —
//!    must be allocation-free.
//!
//! Exactly one `#[test]` lives in this binary: the allocation counter is
//! process-global, so a second test on a parallel thread would pollute
//! the measured delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use espread_net::clientwin::{NetWindow, NetWindowOutcome, RecoverScratch};
use espread_net::wire::{
    self, Accept, ByeReason, CriticalNackMsg, DataMsg, DecodeScratch, Hello, Msg, ParityMember,
    ParityMsg, Reject, WindowAckMsg, WindowEnd,
};
use espread_protocol::{Fragment, Ldu, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, AtomicOrdering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, AtomicOrdering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, AtomicOrdering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Every message kind the transport speaks, built once outside the
/// measured region (several carry heap-backed fields).
fn message_set() -> Vec<Msg> {
    vec![
        Msg::Hello(Hello {
            nonce: 7,
            buffer_bytes: 64 * 1024,
            max_startup_delay_ms: 250,
            ordering: Ordering::Spread { adaptive: true },
        }),
        Msg::Accept(Accept {
            nonce: 7,
            frames_per_window: 12,
            windows_total: 40,
            packet_bytes: 1200,
            fps: 30,
            layer_sizes: vec![4, 8],
            critical_frames: vec![0, 3],
        }),
        Msg::Reject(Reject {
            nonce: 7,
            reason: "buffer too small".to_owned(),
        }),
        Msg::Begin,
        Msg::Data(DataMsg {
            fragment: Fragment {
                window: 3,
                frame: 5,
                frag: 1,
                frags_total: 2,
                layer: 1,
                layer_slot: 4,
                retransmit: false,
            },
            ldu: Ldu::new(2400),
            payload_len: 1200,
        }),
        Msg::WindowEnd(WindowEnd {
            window: 3,
            sent_at_us: 123_456,
            last: false,
        }),
        Msg::WindowAck(WindowAckMsg {
            ack_seq: 9,
            window: 3,
            echo_us: 123_456,
            per_layer_burst: vec![0, 2],
        }),
        Msg::CriticalNack(CriticalNackMsg {
            window: 3,
            missing: vec![0, 3],
        }),
        Msg::Parity(ParityMsg {
            window: 3,
            group: 1,
            m: 1,
            parity_index: 0,
            shard_bytes: 1200,
            members: vec![
                ParityMember {
                    frame: 4,
                    frag: 0,
                    frags_total: 1,
                },
                ParityMember {
                    frame: 5,
                    frag: 0,
                    frags_total: 2,
                },
            ],
        }),
        Msg::Busy { retry_after_ms: 40 },
        Msg::Bye(ByeReason::Complete),
        Msg::ByeAck,
    ]
}

/// One codec lap: encode, decode, verify, recycle — over the whole set.
fn wire_lap(msgs: &[Msg], buf: &mut Vec<u8>, scratch: &mut DecodeScratch) {
    for msg in msgs {
        wire::try_encode_into(42, msg, buf).expect("fits");
        let (conn, decoded) = wire::decode_with(buf, scratch).expect("roundtrip");
        assert_eq!(conn, 42);
        assert_eq!(&decoded, msg);
        scratch.recycle(decoded);
    }
}

/// A data fragment for the reassembly phase's fixed session shape:
/// 4 frames of 2 fragments, layers `[2, 2]`, critical frames `[0, 1]`.
fn data(window: u64, frame: usize, frag: u16) -> DataMsg {
    DataMsg {
        fragment: Fragment {
            window,
            frame,
            frag,
            frags_total: 2,
            layer: if frame < 2 { 0 } else { 1 },
            layer_slot: (frame % 2) as u16,
            retransmit: false,
        },
        ldu: Ldu::new(200),
        payload_len: 100,
    }
}

/// One steady-state reassembly lap: every fragment arrives, parity
/// arrives, recovery finds nothing erased, the window closes and the
/// tracker re-arms for the next.
fn window_lap(
    win: &mut NetWindow,
    window: u64,
    parity: &mut ParityMsg,
    rs: &mut RecoverScratch,
    nack: &mut Vec<u16>,
    outcome: &mut NetWindowOutcome,
) {
    for frame in 0..4 {
        for frag in 0..2 {
            assert!(win.accept(&data(window, frame, frag)));
        }
    }
    parity.window = window;
    assert!(win.accept_parity(parity));
    let rec = win.recover_with(rs);
    assert_eq!((rec.recovered, rec.unrecoverable), (0, 0));
    win.missing_critical_into(nack);
    assert!(nack.is_empty());
    win.close_into(outcome);
    assert_eq!(outcome.window, window);
    assert_eq!(outcome.pattern.lost(), 0);
    win.reset(window + 1, 4, &[2, 2], &[0, 1]);
}

#[test]
fn steady_state_wire_and_reassembly_do_not_allocate() {
    // ---- Phase 1: wire codec ----
    let msgs = message_set();
    let mut buf: Vec<u8> = Vec::with_capacity(2048);
    let mut scratch = DecodeScratch::default();

    for _ in 0..3 {
        wire_lap(&msgs, &mut buf, &mut scratch);
    }

    // Measure several rounds and take the *minimum* delta: the libtest
    // main thread may allocate concurrently right after spawning this
    // test's thread, so a single round can see ambient noise. A real
    // hot-path allocation would show up in every round.
    let mut wire_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(AtomicOrdering::Relaxed);
        for _ in 0..1_000 {
            wire_lap(&msgs, &mut buf, &mut scratch);
        }
        wire_delta = wire_delta.min(ALLOCATIONS.load(AtomicOrdering::Relaxed) - before);
    }
    assert_eq!(
        wire_delta, 0,
        "steady-state encode/decode/recycle laps must not allocate, saw {wire_delta} in the quietest round"
    );

    // ---- Phase 2: NetWindow reassembly ----
    let mut parity = ParityMsg {
        window: 0,
        group: 0,
        m: 1,
        parity_index: 0,
        shard_bytes: 100,
        members: vec![
            ParityMember {
                frame: 2,
                frag: 0,
                frags_total: 2,
            },
            ParityMember {
                frame: 2,
                frag: 1,
                frags_total: 2,
            },
        ],
    };
    let mut rs = RecoverScratch::default();
    let mut nack: Vec<u16> = Vec::with_capacity(4);
    let mut outcome = NetWindowOutcome::default();

    // Warm-up window 0: drop frame 2's second fragment and recover it
    // from parity — the one real decode, which may allocate (flag pools,
    // group pool, codec shard tables all size themselves here).
    let mut win = NetWindow::new(0, 4, &[2, 2], &[0, 1]);
    for frame in 0..4 {
        for frag in 0..2 {
            if frame == 2 && frag == 1 {
                continue;
            }
            assert!(win.accept(&data(0, frame, frag)));
        }
    }
    assert!(win.accept_parity(&parity));
    assert!(!win.is_complete(2));
    let rec = win.recover_with(&mut rs);
    assert_eq!((rec.recovered, rec.unrecoverable), (1, 0));
    assert!(win.is_complete(2));
    win.missing_critical_into(&mut nack);
    win.close_into(&mut outcome);
    win.reset(1, 4, &[2, 2], &[0, 1]);

    // One more warm lap so every steady-state code path (complete
    // accepts included) has sized its buffers.
    window_lap(&mut win, 1, &mut parity, &mut rs, &mut nack, &mut outcome);

    let mut win_delta = u64::MAX;
    let mut w = 2u64;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(AtomicOrdering::Relaxed);
        for _ in 0..1_000 {
            window_lap(&mut win, w, &mut parity, &mut rs, &mut nack, &mut outcome);
            w += 1;
        }
        win_delta = win_delta.min(ALLOCATIONS.load(AtomicOrdering::Relaxed) - before);
    }
    assert_eq!(
        win_delta, 0,
        "steady-state reassembly windows must not allocate, saw {win_delta} in the quietest round"
    );
}
