//! Stream sources: sequences of buffer windows with a shared dependency
//! poset.

use espread_poset::Poset;
use espread_trace::{AudioStream, MpegTrace};

use crate::packetize::Ldu;

/// A prepared stream: `windows` buffer windows of LDUs, all sharing the
/// same per-window dependency `poset` (fixed GOP pattern ⇒ fixed poset).
#[derive(Debug, Clone)]
pub struct StreamSource {
    /// Per-window dependency poset (`poset.len()` = frames per window).
    pub poset: Poset,
    /// The LDUs of each window, in playout order.
    pub windows: Vec<Vec<Ldu>>,
    /// Stream rate in LDUs per second (drives the buffer cycle time).
    pub fps: u32,
}

impl StreamSource {
    /// An MPEG source: `count` windows of `w` GOPs each from `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn mpeg(trace: &MpegTrace, w: usize, count: usize, open_gop: bool) -> Self {
        assert!(w > 0, "buffer must hold at least one GOP");
        let poset = trace.pattern().dependency_poset(w, open_gop);
        let frames_per_window = poset.len();
        let all = trace.frames(frames_per_window * count);
        let windows = all
            .chunks_exact(frames_per_window)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|f| Ldu::new(f.size_bytes.max(1)))
                    .collect()
            })
            .collect();
        StreamSource {
            poset,
            windows,
            fps: trace.fps(),
        }
    }

    /// A dependency-free audio source: `count` windows of `n` LDUs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn audio(stream: AudioStream, n: usize, count: usize) -> Self {
        assert!(n > 0, "window must hold at least one LDU");
        let ldu = Ldu::new(stream.ldu_bytes());
        StreamSource {
            poset: stream.dependency_poset(n),
            windows: vec![vec![ldu; n]; count],
            fps: stream.ldus_per_second(),
        }
    }

    /// Frames (LDUs) per buffer window.
    pub fn frames_per_window(&self) -> usize {
        self.poset.len()
    }

    /// Number of windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espread_trace::Movie;

    #[test]
    fn mpeg_source_shapes() {
        let trace = MpegTrace::new(Movie::JurassicPark, 5);
        let src = StreamSource::mpeg(&trace, 2, 10, false);
        assert_eq!(src.frames_per_window(), 24);
        assert_eq!(src.window_count(), 10);
        assert_eq!(src.fps, 24);
        for w in &src.windows {
            assert_eq!(w.len(), 24);
            assert!(w.iter().all(|l| l.size_bytes > 0));
        }
    }

    #[test]
    fn audio_source_shapes() {
        let src = StreamSource::audio(AudioStream::sun_audio(), 30, 5);
        assert_eq!(src.frames_per_window(), 30);
        assert_eq!(src.window_count(), 5);
        assert_eq!(src.fps, 30);
        assert_eq!(src.poset.height(), 1); // antichain
        assert_eq!(src.windows[0][0].size_bytes, 266);
    }

    #[test]
    #[should_panic(expected = "at least one GOP")]
    fn zero_gop_buffer_rejected() {
        let trace = MpegTrace::new(Movie::JurassicPark, 5);
        let _ = StreamSource::mpeg(&trace, 0, 1, false);
    }

    #[test]
    #[should_panic(expected = "at least one LDU")]
    fn zero_audio_window_rejected() {
        let _ = StreamSource::audio(AudioStream::sun_audio(), 0, 1);
    }
}
