//! Fragmenting LDUs into wire packets and reassembling them.
//!
//! "Frames are broken up into packets of size packetSize = 2 Kbytes"
//! (§5.1). An LDU smaller than the packet size travels in one packet; a
//! larger one is split into `⌈size / packet_bytes⌉` fragments. An LDU is
//! **received** only when every one of its fragments arrived (a partially
//! received frame cannot be decoded).

use std::fmt;

/// An LDU as the protocol sees it: a playout position and a size. Frame
/// *types* never reach the transport — criticality is carried by the
/// dependency poset instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ldu {
    /// Encoded size in bytes.
    pub size_bytes: u32,
}

/// Rejection of a zero-sized LDU (an LDU must carry at least one byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLduSize;

impl fmt::Display for InvalidLduSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LDU size must be positive")
    }
}

impl std::error::Error for InvalidLduSize {}

impl Ldu {
    /// Creates an LDU description.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(size_bytes: u32) -> Self {
        match Self::try_new(size_bytes) {
            Ok(ldu) => ldu,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking constructor: rejects a zero size with an error
    /// instead of asserting. Decode paths fed by untrusted datagrams
    /// (the `espread-net` wire codec) use this so a hostile size field
    /// cannot crash the receiver.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLduSize`] when `size_bytes` is zero.
    pub fn try_new(size_bytes: u32) -> Result<Self, InvalidLduSize> {
        if size_bytes == 0 {
            Err(InvalidLduSize)
        } else {
            Ok(Ldu { size_bytes })
        }
    }

    /// Number of fragments at the given packet payload size.
    ///
    /// # Panics
    ///
    /// Panics if `packet_bytes` is zero.
    pub fn fragment_count(self, packet_bytes: u32) -> u16 {
        assert!(packet_bytes > 0, "packet size must be positive");
        self.size_bytes.div_ceil(packet_bytes) as u16
    }

    /// Payload size of fragment `frag` (the last fragment carries the
    /// remainder).
    ///
    /// # Panics
    ///
    /// Panics if `frag` is out of range or `packet_bytes` is zero.
    pub fn fragment_size(self, packet_bytes: u32, frag: u16) -> u32 {
        let total = self.fragment_count(packet_bytes);
        assert!(frag < total, "fragment {frag} out of {total}");
        if frag + 1 < total {
            packet_bytes
        } else {
            let rem = self.size_bytes % packet_bytes;
            if rem == 0 {
                packet_bytes
            } else {
                rem
            }
        }
    }
}

/// One wire fragment of an LDU within a buffer window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fragment {
    /// Buffer-window number.
    pub window: u64,
    /// Playout index of the LDU within its window (`0..n`).
    pub frame: usize,
    /// Fragment index within the LDU.
    pub frag: u16,
    /// Total fragments of the LDU.
    pub frags_total: u16,
    /// Index of the layer this frame travels in.
    pub layer: u8,
    /// Transmission slot of the frame **within its layer** (what the
    /// client uses to observe per-layer loss bursts in the transmission
    /// domain).
    pub layer_slot: u16,
    /// Whether this is a retransmission.
    pub retransmit: bool,
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "w{} f{} [{}/{}] L{}@{}{}",
            self.window,
            self.frame,
            self.frag + 1,
            self.frags_total,
            self.layer,
            self.layer_slot,
            if self.retransmit { " (rtx)" } else { "" }
        )
    }
}

/// Reassembly state of one window's LDUs.
///
/// # Example
///
/// ```
/// use espread_protocol::packetize::{Fragment, Ldu, Reassembly};
///
/// let ldus = vec![Ldu::new(3000), Ldu::new(500)];
/// let mut r = Reassembly::new(&ldus, 2048);
/// assert!(!r.is_complete(0));
/// r.accept(&Fragment { window: 0, frame: 0, frag: 0, frags_total: 2,
///                      layer: 0, layer_slot: 0, retransmit: false });
/// assert!(!r.is_complete(0)); // one of two fragments
/// r.accept(&Fragment { window: 0, frame: 0, frag: 1, frags_total: 2,
///                      layer: 0, layer_slot: 0, retransmit: false });
/// assert!(r.is_complete(0));
/// assert!(!r.is_complete(1));
/// ```
#[derive(Debug, Clone)]
pub struct Reassembly {
    /// Per frame: bitmask-ish vector of received fragments.
    received: Vec<Vec<bool>>,
}

impl Reassembly {
    /// Prepares reassembly for a window of LDUs at the given packet size.
    pub fn new(ldus: &[Ldu], packet_bytes: u32) -> Self {
        Reassembly {
            received: ldus
                .iter()
                .map(|l| vec![false; usize::from(l.fragment_count(packet_bytes))])
                .collect(),
        }
    }

    /// Records an arrived fragment (duplicates are idempotent).
    ///
    /// # Panics
    ///
    /// Panics if the fragment references an unknown frame or fragment
    /// index.
    pub fn accept(&mut self, fragment: &Fragment) {
        self.received[fragment.frame][usize::from(fragment.frag)] = true;
    }

    /// Whether every fragment of frame `frame` has arrived.
    pub fn is_complete(&self, frame: usize) -> bool {
        self.received[frame].iter().all(|&r| r)
    }

    /// Per-frame completeness for the whole window (`true` = decodable).
    pub fn completeness(&self) -> Vec<bool> {
        (0..self.received.len())
            .map(|f| self.is_complete(f))
            .collect()
    }

    /// Indices of frames still missing at least one fragment.
    pub fn missing_frames(&self) -> Vec<usize> {
        (0..self.received.len())
            .filter(|&f| !self.is_complete(f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_counts() {
        assert_eq!(Ldu::new(1).fragment_count(2048), 1);
        assert_eq!(Ldu::new(2048).fragment_count(2048), 1);
        assert_eq!(Ldu::new(2049).fragment_count(2048), 2);
        assert_eq!(Ldu::new(6000).fragment_count(2048), 3);
    }

    #[test]
    fn fragment_sizes_partition_the_ldu() {
        for size in [1u32, 100, 2048, 2049, 4096, 6000, 10_000] {
            let ldu = Ldu::new(size);
            let total: u32 = (0..ldu.fragment_count(2048))
                .map(|i| ldu.fragment_size(2048, i))
                .sum();
            assert_eq!(total, size, "size {size}");
        }
    }

    #[test]
    #[should_panic(expected = "LDU size must be positive")]
    fn zero_ldu_rejected() {
        let _ = Ldu::new(0);
    }

    #[test]
    fn try_new_reports_zero_size_without_panicking() {
        assert_eq!(Ldu::try_new(0), Err(InvalidLduSize));
        assert!(InvalidLduSize.to_string().contains("positive"));
        assert_eq!(Ldu::try_new(7), Ok(Ldu::new(7)));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn fragment_index_checked() {
        let _ = Ldu::new(100).fragment_size(2048, 1);
    }

    #[test]
    fn reassembly_tracks_completeness() {
        let ldus = vec![Ldu::new(5000), Ldu::new(100)];
        let mut r = Reassembly::new(&ldus, 2048);
        assert_eq!(r.missing_frames(), vec![0, 1]);
        for frag in 0..3 {
            r.accept(&Fragment {
                window: 0,
                frame: 0,
                frag,
                frags_total: 3,
                layer: 0,
                layer_slot: 0,
                retransmit: false,
            });
        }
        assert!(r.is_complete(0));
        assert_eq!(r.missing_frames(), vec![1]);
        assert_eq!(r.completeness(), vec![true, false]);
    }

    #[test]
    fn duplicate_fragments_idempotent() {
        let ldus = vec![Ldu::new(100)];
        let mut r = Reassembly::new(&ldus, 2048);
        let f = Fragment {
            window: 0,
            frame: 0,
            frag: 0,
            frags_total: 1,
            layer: 0,
            layer_slot: 0,
            retransmit: true,
        };
        r.accept(&f);
        r.accept(&f);
        assert!(r.is_complete(0));
    }

    #[test]
    fn fragment_display() {
        let f = Fragment {
            window: 3,
            frame: 7,
            frag: 0,
            frags_total: 2,
            layer: 1,
            layer_slot: 4,
            retransmit: true,
        };
        let s = f.to_string();
        assert!(s.contains("w3"));
        assert!(s.contains("f7"));
        assert!(s.contains("(rtx)"));
    }
}
