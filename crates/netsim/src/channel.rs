//! A UDP-like duplex channel: data link one way, feedback link the other.
//!
//! "The proposed protocol uses the UDP communication model … with feedback
//! for loss estimation" (§4.2). [`DuplexChannel`] bundles a forward (data)
//! [`Link`] and a reverse (ACK) [`Link`], assigns sequence numbers, and
//! buffers in-flight packets until the receiving side polls for arrivals —
//! exactly the unreliable-datagram service the protocol builds on. ACKs are
//! subject to loss too, as in the paper ("if an ACK is lost, its feedback
//! information has not been used").

use crate::event::EventQueue;
use crate::link::{Link, TransmitOutcome};
use crate::packet::{Delivery, Packet};
use crate::time::SimTime;

/// A bidirectional unreliable datagram channel.
///
/// Type parameters: `D` is the forward (data) payload, `A` the reverse
/// (feedback) payload.
///
/// # Example
///
/// ```
/// use espread_netsim::{DuplexChannel, GilbertModel, Link, SimDuration, SimTime};
///
/// let lossless = || GilbertModel::new(1.0, 0.0, 0);
/// let mut ch: DuplexChannel<&str, &str> = DuplexChannel::new(
///     Link::new(1_200_000, SimDuration::from_millis(11), lossless()),
///     Link::new(64_000, SimDuration::from_millis(11), lossless()),
/// );
///
/// ch.send_data(SimTime::ZERO, 2048, "frame");
/// let arrivals = ch.poll_data(SimTime::from_micros(30_000));
/// assert_eq!(arrivals.len(), 1);
/// assert_eq!(arrivals[0].packet.payload, "frame");
/// ```
#[derive(Debug)]
pub struct DuplexChannel<D, A> {
    forward: Link,
    reverse: Link,
    next_data_seq: u64,
    next_ack_seq: u64,
    in_flight_data: EventQueue<Delivery<D>>,
    in_flight_ack: EventQueue<Delivery<A>>,
}

impl<D, A> DuplexChannel<D, A> {
    /// Creates a channel from a forward (data) and reverse (feedback) link.
    pub fn new(forward: Link, reverse: Link) -> Self {
        DuplexChannel {
            forward,
            reverse,
            next_data_seq: 0,
            next_ack_seq: 0,
            in_flight_data: EventQueue::new(),
            in_flight_ack: EventQueue::new(),
        }
    }

    /// The forward (data) link.
    pub fn forward(&self) -> &Link {
        &self.forward
    }

    /// The reverse (feedback) link.
    pub fn reverse(&self) -> &Link {
        &self.reverse
    }

    /// Sends a data packet at `now`; returns its sequence number.
    ///
    /// The packet may be silently lost — that is the service model.
    pub fn send_data(&mut self, now: SimTime, size_bytes: u32, payload: D) -> u64 {
        let seq = self.next_data_seq;
        self.next_data_seq += 1;
        let packet = Packet::new(seq, size_bytes, now, payload);
        if let TransmitOutcome::Delivered(d) = self.forward.transmit(now, packet) {
            self.in_flight_data.schedule(d.arrived_at, d);
        }
        seq
    }

    /// Sends a feedback packet at `now`; returns its sequence number.
    pub fn send_ack(&mut self, now: SimTime, size_bytes: u32, payload: A) -> u64 {
        let seq = self.next_ack_seq;
        self.next_ack_seq += 1;
        let packet = Packet::new(seq, size_bytes, now, payload);
        if let TransmitOutcome::Delivered(d) = self.reverse.transmit(now, packet) {
            self.in_flight_ack.schedule(d.arrived_at, d);
        }
        seq
    }

    /// Data packets that have arrived at the client by `now`, in arrival
    /// order.
    pub fn poll_data(&mut self, now: SimTime) -> Vec<Delivery<D>> {
        self.in_flight_data
            .drain_until(now)
            .into_iter()
            .map(|(_, d)| d)
            .collect()
    }

    /// Feedback packets that have arrived at the server by `now`, in
    /// arrival order.
    pub fn poll_acks(&mut self, now: SimTime) -> Vec<Delivery<A>> {
        self.in_flight_ack
            .drain_until(now)
            .into_iter()
            .map(|(_, d)| d)
            .collect()
    }

    /// The earliest time a data packet offered at `now` would finish
    /// serialising on the forward link.
    pub fn earliest_data_departure(&self, now: SimTime, size_bytes: u32) -> SimTime {
        self.forward.earliest_departure(now, size_bytes)
    }

    /// Time at which every in-flight data packet will have arrived.
    pub fn data_quiescent_at(&self) -> Option<SimTime> {
        self.in_flight_data.peek_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gilbert::GilbertModel;
    use crate::time::SimDuration;

    fn lossless_link(bps: u64) -> Link {
        Link::new(
            bps,
            SimDuration::from_millis(10),
            GilbertModel::new(1.0, 0.0, 0),
        )
    }

    fn dead_link(bps: u64) -> Link {
        Link::new(
            bps,
            SimDuration::from_millis(10),
            GilbertModel::new(0.0, 1.0, 0),
        )
    }

    #[test]
    fn data_round_trip() {
        let mut ch: DuplexChannel<u32, u32> =
            DuplexChannel::new(lossless_link(1_000_000), lossless_link(64_000));
        let s0 = ch.send_data(SimTime::ZERO, 1000, 42);
        let s1 = ch.send_data(SimTime::ZERO, 1000, 43);
        assert_eq!((s0, s1), (0, 1));
        // Nothing has arrived yet at t=0.
        assert!(ch.poll_data(SimTime::ZERO).is_empty());
        let all = ch.poll_data(SimTime::from_micros(50_000));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].packet.payload, 42);
        assert_eq!(all[1].packet.payload, 43);
        assert!(all[0].arrived_at <= all[1].arrived_at);
    }

    #[test]
    fn acks_travel_in_reverse() {
        let mut ch: DuplexChannel<(), &str> =
            DuplexChannel::new(lossless_link(1_000_000), lossless_link(64_000));
        ch.send_ack(SimTime::ZERO, 100, "window 0 feedback");
        let acks = ch.poll_acks(SimTime::from_micros(100_000));
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].packet.payload, "window 0 feedback");
        assert_eq!(ch.reverse().stats().delivered, 1);
    }

    #[test]
    fn lost_packets_never_arrive() {
        let mut ch: DuplexChannel<u32, u32> =
            DuplexChannel::new(dead_link(1_000_000), lossless_link(64_000));
        ch.send_data(SimTime::ZERO, 1000, 7);
        assert!(ch.poll_data(SimTime::from_micros(10_000_000)).is_empty());
        assert_eq!(ch.forward().stats().lost, 1);
        assert_eq!(ch.data_quiescent_at(), None);
    }

    #[test]
    fn sequence_numbers_are_independent_per_direction() {
        let mut ch: DuplexChannel<(), ()> =
            DuplexChannel::new(lossless_link(1_000_000), lossless_link(64_000));
        assert_eq!(ch.send_data(SimTime::ZERO, 10, ()), 0);
        assert_eq!(ch.send_ack(SimTime::ZERO, 10, ()), 0);
        assert_eq!(ch.send_data(SimTime::ZERO, 10, ()), 1);
        assert_eq!(ch.send_ack(SimTime::ZERO, 10, ()), 1);
    }

    #[test]
    fn departure_estimate_matches_link() {
        let ch: DuplexChannel<(), ()> =
            DuplexChannel::new(lossless_link(8_000), lossless_link(8_000));
        // 100 B at 8 kbps = 100 ms.
        assert_eq!(
            ch.earliest_data_departure(SimTime::ZERO, 100).as_micros(),
            100_000
        );
    }
}
