//! Adaptive burst-size estimation by exponential averaging (paper eq. 1).
//!
//! The protocol estimates the bursty-loss bound `b` it should spread
//! against from per-window client feedback. With `bᵢ` the burst size
//! observed in window `i` and `b̂ᵢ` the running estimate, eq. (1) of the
//! paper is
//!
//! ```text
//! b̂ᵢ₊₁ = α · bᵢ + (1 − α) · b̂ᵢ
//! ```
//!
//! with `α = 1/2`: "we consider the current network loss and the average
//! past network loss to be equally important". Initially "the server
//! assumes the average case" — a configurable prior, `n/2` by default in
//! the protocol crate.

use std::error::Error;
use std::fmt;

/// A rejected burst observation: negative, NaN, or infinite.
///
/// Produced by [`BurstEstimator::try_observe`], the entry point for
/// observations derived from *untrusted* input (network feedback); the
/// panicking [`BurstEstimator::observe`] is for values the caller
/// computed itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservationError {
    /// The offending value.
    pub observed: f64,
}

impl fmt::Display for ObservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid burst observation {}: must be finite and non-negative",
            self.observed
        )
    }
}

impl Error for ObservationError {}

/// Exponentially averaged estimator of the per-window bursty-loss bound.
///
/// # Example
///
/// ```
/// use espread_core::BurstEstimator;
///
/// let mut est = BurstEstimator::paper_default(8.0);
/// est.observe(2.0);
/// assert_eq!(est.value(), 5.0);      // (8 + 2) / 2
/// est.observe(2.0);
/// assert_eq!(est.value(), 3.5);
/// assert_eq!(est.as_burst_bound(), 4); // rounded up, at least 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstEstimator {
    alpha: f64,
    value: f64,
}

impl BurstEstimator {
    /// The paper's weighting: current observation and history equally
    /// important.
    pub const PAPER_ALPHA: f64 = 0.5;

    /// Creates an estimator with smoothing weight `alpha` (the weight of
    /// the *newest* observation) and an initial prior.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `[0, 1]` or `initial` is negative/NaN.
    pub fn new(alpha: f64, initial: f64) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha must be a weight in [0, 1]"
        );
        assert!(
            initial.is_finite() && initial >= 0.0,
            "initial estimate must be a non-negative burst size"
        );
        BurstEstimator {
            alpha,
            value: initial,
        }
    }

    /// The paper's configuration: `α = 1/2` with the given prior.
    pub fn paper_default(initial: f64) -> Self {
        Self::new(Self::PAPER_ALPHA, initial)
    }

    /// Folds in the burst size observed in the latest window.
    ///
    /// # Panics
    ///
    /// Panics if `observed` is negative or NaN. For observations derived
    /// from untrusted input, use [`Self::try_observe`] instead.
    pub fn observe(&mut self, observed: f64) {
        self.try_observe(observed)
            .expect("observed burst size must be non-negative and finite");
    }

    /// Folds in an observation, rejecting negative/NaN/infinite values
    /// with a typed error instead of panicking — the entry point for
    /// values that crossed a network (a hostile ACK must not crash the
    /// planner).
    ///
    /// # Errors
    ///
    /// [`ObservationError`] when `observed` is not a finite non-negative
    /// number; the estimate is left unchanged.
    pub fn try_observe(&mut self, observed: f64) -> Result<(), ObservationError> {
        if !(observed.is_finite() && observed >= 0.0) {
            return Err(ObservationError { observed });
        }
        self.value = self.alpha * observed + (1.0 - self.alpha) * self.value;
        Ok(())
    }

    /// The current smoothed estimate.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The smoothing weight of the newest observation.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The estimate as an integer burst bound for
    /// [`calculate_permutation`](crate::cpo::calculate_permutation):
    /// rounded **up** (spreading against slightly too large a burst is
    /// safe; too small is not) and at least 1.
    pub fn as_burst_bound(&self) -> usize {
        (self.value.ceil() as usize).max(1)
    }

    /// The estimate as a burst bound clamped to a window of `n` slots:
    /// `1 ..= n`. After a run of full-window losses the raw estimate can
    /// exceed `n`, and spreading against `b > n` is meaningless (it can
    /// also trip window-bound asserts downstream) — protocol call sites
    /// planning a window of `n` should use this accessor.
    pub fn bounded(&self, n: usize) -> usize {
        self.as_burst_bound().min(n.max(1))
    }
}

impl fmt::Display for BurstEstimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b̂={:.2} (α={})", self.value, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_equation_steps() {
        let mut est = BurstEstimator::paper_default(4.0);
        est.observe(8.0);
        assert_eq!(est.value(), 6.0);
        est.observe(0.0);
        assert_eq!(est.value(), 3.0);
    }

    #[test]
    fn alpha_zero_never_moves() {
        let mut est = BurstEstimator::new(0.0, 5.0);
        for x in [0.0, 100.0, 3.0] {
            est.observe(x);
        }
        assert_eq!(est.value(), 5.0);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut est = BurstEstimator::new(1.0, 5.0);
        est.observe(2.0);
        assert_eq!(est.value(), 2.0);
        est.observe(9.0);
        assert_eq!(est.value(), 9.0);
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut est = BurstEstimator::paper_default(100.0);
        for _ in 0..60 {
            est.observe(3.0);
        }
        assert!((est.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn burst_bound_rounds_up_and_floors_at_one() {
        assert_eq!(BurstEstimator::paper_default(0.0).as_burst_bound(), 1);
        assert_eq!(BurstEstimator::paper_default(2.2).as_burst_bound(), 3);
        assert_eq!(BurstEstimator::paper_default(2.0).as_burst_bound(), 2);
    }

    #[test]
    fn bounded_clamps_to_window() {
        // A run of full-window losses drives the estimate past n.
        let mut est = BurstEstimator::paper_default(8.0);
        for _ in 0..10 {
            est.observe(30.0);
        }
        assert!(est.as_burst_bound() > 8);
        assert_eq!(est.bounded(8), 8);
        // In-range estimates pass through unchanged.
        assert_eq!(BurstEstimator::paper_default(2.2).bounded(8), 3);
        // Degenerate windows still yield a usable bound.
        assert_eq!(BurstEstimator::paper_default(5.0).bounded(0), 1);
        assert_eq!(BurstEstimator::paper_default(0.0).bounded(4), 1);
    }

    #[test]
    #[should_panic(expected = "alpha must be a weight")]
    fn invalid_alpha_rejected() {
        let _ = BurstEstimator::new(1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_observation_rejected() {
        let mut est = BurstEstimator::paper_default(1.0);
        est.observe(-1.0);
    }

    #[test]
    fn try_observe_rejects_without_panicking_and_leaves_state() {
        let mut est = BurstEstimator::paper_default(4.0);
        for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = est.try_observe(bad).unwrap_err();
            assert!(err.to_string().contains("invalid burst observation"));
            assert_eq!(est.value(), 4.0, "estimate untouched after {bad}");
        }
        est.try_observe(2.0).unwrap();
        assert_eq!(est.value(), 3.0);
    }

    #[test]
    fn display_shows_value_and_alpha() {
        let est = BurstEstimator::paper_default(2.0);
        let s = est.to_string();
        assert!(s.contains("2.00"));
        assert!(s.contains("0.5"));
    }
}
