//! Figures 2 & 3 — the MPEG dependency poset and the Layered Permutation
//! Transmission Order.
//!
//! ```sh
//! cargo run -p espread-bench --bin fig3_layered_order
//! ```

use espread_bench::sweep;
use espread_core::LayeredOrder;
use espread_exec::Json;
use espread_trace::GopPattern;

fn main() {
    let w = 2;
    let pattern = GopPattern::gop12();
    println!(
        "Figure 2/3: GOP pattern {} × {w} GOPs (open GOP), dependency poset and layers\n",
        pattern
    );
    let poset = pattern.dependency_poset(w, true);
    println!(
        "poset: {} frames, height {} (longest dependency chain)",
        poset.len(),
        poset.height()
    );

    // A single construction — run as a one-cell grid so the binary shares
    // the executor's --jobs interface with the sweeps.
    let mut orders = sweep::executor("fig3_layered_order").run(vec![poset.clone()], |_, poset| {
        LayeredOrder::from_poset(&poset, |idx, len| if idx < 4 { len / 2 } else { 3 })
    });
    let order = orders.pop().expect("one cell");

    let mut rows = Vec::new();
    println!("\nlayer  critical  frames (playout idx)          burst b  worst CLF  order family");
    for (i, layer) in order.layers().iter().enumerate() {
        println!(
            "{:>5}  {:<8}  {:<28}  {:>7}  {:>9}  {}",
            i,
            if layer.is_critical() { "yes" } else { "no" },
            format!("{:?}", layer.frames()),
            layer.burst_bound(),
            layer.worst_clf(),
            layer.family(),
        );
        let mut row = Json::object();
        row.push("layer", i)
            .push("critical", layer.is_critical())
            .push(
                "frames",
                Json::Array(
                    layer
                        .frames()
                        .iter()
                        .map(|&f| Json::Int(f as i64))
                        .collect(),
                ),
            )
            .push("burst_bound", layer.burst_bound())
            .push("worst_clf", layer.worst_clf())
            .push("family", layer.family().to_string());
        rows.push(row);
    }

    let seq = order.transmission_sequence();
    println!("\nfull transmission sequence (layered, permuted within layers):");
    println!("{seq:?}");
    assert!(poset.is_linear_extension(&seq));
    println!("\n✓ the sequence is a linear extension of the dependency poset");
    println!("✓ layers match the paper's Fig. 3: I's, P1's, P2's, P3's, then all B's");

    let mut doc = sweep::results_doc("fig3_layered_order", rows);
    doc.push(
        "transmission_sequence",
        Json::Array(seq.iter().map(|&f| Json::Int(f as i64)).collect()),
    );
    sweep::write_results("fig3_layered_order", &doc);
    espread_bench::write_telemetry_snapshot("fig3_layered_order");
}
