//! Deterministic chaos soak over the UDP stack.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin chaos_soak [--jobs N] [--quick]
//! ```
//!
//! Runs [`espread_chaos::DEFAULT_SEEDS`] (or a four-seed subset with
//! `--quick`) through the full client/server/proxy stack under seeded
//! fault schedules, checks every invariant, and writes the report to
//! `results/chaos_soak.json`. The artifact is byte-identical for any
//! `--jobs` value and any rerun — CI diffs two runs and greps for
//! `"violations": 0`. On a violation, one minimized
//! `REPRODUCER seed=… cell=… schedule=… trace=…` line per breakage goes
//! to stdout and the process exits nonzero.
//!
//! Every cell also dumps its flight-recorder trio (server, proxy,
//! client event rings) to `results/timeline_seed<seed>.jsonl`; replay
//! one with `cargo run --release -p espread-bench --bin timeline -- \
//! --check results/timeline_seed<seed>.jsonl`. The dumps carry
//! timestamps and are excluded from the byte-identical diff.

use std::process::ExitCode;
use std::time::Instant;

use espread_bench::sweep;
use espread_chaos::{run_soak, SoakConfig};

/// One seed per invariant regime plus a second compare cell — the same
/// subset the `espread-chaos` integration test drives.
const QUICK_SEEDS: [u64; 4] = [3, 4, 8, 9];

fn main() -> ExitCode {
    let jobs = sweep::jobs_from_args();
    let mut config = if std::env::args().any(|a| a == "--quick") {
        SoakConfig::new(QUICK_SEEDS.to_vec())
    } else {
        SoakConfig::default_seeds()
    };
    config.jobs = jobs;
    config.trace_dir = Some("results".into());

    println!(
        "Chaos soak: {} seeded fault schedules through the UDP \
         client/server/proxy stack\n",
        config.seeds.len()
    );
    let started = Instant::now();
    let report = run_soak(&config);
    let elapsed = started.elapsed();

    for cell in &report.cells {
        let verdict = if cell.violations.is_empty() {
            "ok  "
        } else {
            "FAIL"
        };
        println!("  {verdict} seed={:<3} {}", cell.seed, cell.schedule);
    }
    for line in report.reproducers() {
        println!("{line}");
    }
    println!(
        "\n{} cells, {} violations in {:.1}s",
        report.cells.len(),
        report.violation_count(),
        elapsed.as_secs_f64()
    );

    sweep::write_results("chaos_soak", &report.to_json());
    espread_bench::write_telemetry_snapshot("chaos_soak");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
