#!/usr/bin/env bash
# Gates the steady-state hot path against its committed baseline.
#
# Usage: scripts/check_bench_hotpath.sh [baseline.json] [fresh.json]
#
# Compares each family's ratio to the memcpy floor (see bench_hotpath's
# docs — absolute nanoseconds vary with the host, the ratios track only
# the bookkeeping each path layers on top of moving its bytes) and fails
# when any family regresses more than 20% past the committed
# BENCH_hotpath.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${1:-BENCH_hotpath.json}
FRESH=${2:-results/bench_hotpath.json}
[[ -s $BASELINE ]] || { echo "error: missing baseline $BASELINE" >&2; exit 1; }
[[ -s $FRESH ]] || { echo "error: missing measurement $FRESH (run bench_hotpath first)" >&2; exit 1; }

python3 - "$BASELINE" "$FRESH" <<'EOF'
import json
import sys

baseline = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))
failed = False
for name, base in baseline["families"].items():
    if name not in fresh["families"]:
        print(f"bench_hotpath {name}: missing from fresh measurement -> FAIL")
        failed = True
        continue
    b, f = base["ratio"], fresh["families"][name]["ratio"]
    limit = b * 1.20
    verdict = "ok" if f <= limit else "REGRESSION"
    print(
        f"bench_hotpath {name}: committed {b:.3f}, fresh {f:.3f}, "
        f"limit {limit:.3f} -> {verdict}"
    )
    failed = failed or f > limit
sys.exit(1 if failed else 0)
EOF
