//! Exact reproductions of the paper's in-text artifacts: Fig. 1, Table 1,
//! Table 2, Theorem 1, and the Fig. 2/3 layered order.

use error_spreading::core::{
    burst_loss_pattern, cpo::stride_permutation, ibo::inverse_binary_order,
};
use error_spreading::prelude::*;

#[test]
fn figure_1_metric_example() {
    // Two streams, both losing LDUs 2 of 4: stream 1 back-to-back
    // (ALF 2/4, CLF 2), stream 2 spread (ALF 2/4, CLF 1).
    let stream1 = LossPattern::from_received([false, false, true, true]);
    let stream2 = LossPattern::from_received([false, true, true, false]);
    let m1 = ContinuityMetrics::of(&stream1);
    let m2 = ContinuityMetrics::of(&stream2);
    assert_eq!(m1.alf().to_string(), "2/4");
    assert_eq!(m2.alf().to_string(), "2/4");
    assert_eq!(m1.clf(), 2);
    assert_eq!(m2.clf(), 1);
}

#[test]
fn table_1_frame_orders_and_clf() {
    // Row 1: frames 01..17 in order, burst of 5 → CLF 5/17.
    // Row 2: permuted 01 06 11 16 04 09 14 02 07 12 17 05 10 15 03 08 13,
    //        same burst → CLF 1/17 (0-indexed here).
    let paper_order: Vec<usize> = vec![0, 5, 10, 15, 3, 8, 13, 1, 6, 11, 16, 4, 9, 14, 2, 7, 12];
    assert_eq!(stride_permutation(17, 5).as_slice(), paper_order.as_slice());

    let in_order = Permutation::identity(17);
    for start in 0..=12 {
        assert_eq!(burst_loss_pattern(&in_order, start, 5).longest_run(), 5);
        assert_eq!(
            burst_loss_pattern(&stride_permutation(17, 5), start, 5).longest_run(),
            1,
            "start={start}"
        );
    }
    // And calculatePermutation finds an order at least this good.
    assert_eq!(calculate_permutation(17, 5).worst_clf, 1);
}

#[test]
fn table_2_ibo_vs_cpo() {
    // "8 frames ordering of IBO and one of the cases of our scrambled
    // order": IBO = 01 05 03 07 02 06 04 08.
    assert_eq!(
        inverse_binary_order(8).as_slice(),
        &[0, 4, 2, 6, 1, 5, 3, 7]
    );
    // IBO is fine below half-window losses and degrades past them, while
    // CPO stays within the Theorem-1 bound.
    for b in 1..8 {
        let ibo_clf = worst_case_clf(&inverse_binary_order(8), b);
        let cpo = calculate_permutation(8, b);
        assert!(cpo.worst_clf <= ibo_clf, "b={b}");
        if b <= 4 {
            assert!(ibo_clf <= 2, "IBO good below half window, b={b}");
        }
    }
    // The pathological case: more than half the window lost.
    assert!(
        worst_case_clf(&inverse_binary_order(8), 6) >= 2 * calculate_permutation(8, 6).worst_clf
    );
}

#[test]
fn theorem_1_bounds_hold_exhaustively() {
    for n in 1..=28 {
        for b in 0..=n + 1 {
            let bound = theorem_one(n, b);
            let exact = calculate_permutation(n, b).worst_clf;
            assert!(
                bound.lower <= exact && exact <= bound.upper,
                "n={n} b={b}: {} ≤ {exact} ≤ {} violated",
                bound.lower,
                bound.upper
            );
            assert_eq!(clf_lower_bound(n, b), bound.lower);
        }
    }
}

#[test]
fn theorem_1_degenerate_regimes() {
    // b ≥ n ⇒ the whole window is lost.
    assert_eq!(calculate_permutation(10, 10).worst_clf, 10);
    // b = 1 ⇒ CLF 1 under any order.
    assert_eq!(calculate_permutation(10, 1).worst_clf, 1);
    // b² ≤ n ⇒ CLF 1 achievable.
    for b in 2..7usize {
        assert_eq!(calculate_permutation(b * b, b).worst_clf, 1, "b={b}");
        assert_eq!(calculate_permutation(b * b + 3, b).worst_clf, 1, "b={b}+3");
    }
}

#[test]
fn figure_2_and_3_layered_order() {
    // The MPEG dependency poset of a 2-GOP buffer decomposes into the
    // paper's layers (I, P1, P2, P3, B) and the layered order is a valid
    // transmission order.
    let poset = GopPattern::gop12().dependency_poset(2, true);
    assert_eq!(poset.height(), 5);
    let order = LayeredOrder::with_uniform_bound(&poset, 2);
    assert_eq!(order.layer_count(), 5);
    assert_eq!(order.layer(0).frames(), &[0, 12]); // Z's (I frames)
    assert_eq!(order.layer(1).frames(), &[3, 15]); // P1's
    assert_eq!(order.layer(2).frames(), &[6, 18]);
    assert_eq!(order.layer(3).frames(), &[9, 21]);
    assert_eq!(order.layer(4).len(), 16); // all B frames
    assert!(order.layer(0).is_critical());
    assert!(!order.layer(4).is_critical());
    assert!(poset.is_linear_extension(&order.transmission_sequence()));
}

#[test]
fn section_4_1_buffer_requirement() {
    // §4.1: N = W × GOP frames; with Star Wars' 932 710-bit max GOP and
    // W = 2 the buffer is ≈ 228 KiB — "quite viable".
    let max_gop_bytes = Movie::StarWars.max_gop_bits() / 8;
    let w = 2;
    let buffer_bytes = w * max_gop_bytes;
    assert_eq!(max_gop_bytes, 116_588);
    assert!(buffer_bytes < 256 * 1024);
    // Our generated traces respect that bound.
    let trace = MpegTrace::new(Movie::StarWars, 1);
    let frames = trace.gops(20);
    for gop in frames.chunks(12) {
        let total: u64 = gop.iter().map(|f| u64::from(f.size_bytes)).sum();
        assert!(total <= max_gop_bytes);
    }
}

#[test]
fn equation_1_exponential_averaging() {
    // b̂_{i+1} = α·b_i + (1−α)·b̂_i with α = ½.
    let mut est = BurstEstimator::paper_default(6.0);
    est.observe(2.0);
    assert_eq!(est.value(), 4.0);
    est.observe(4.0);
    assert_eq!(est.value(), 4.0);
    est.observe(0.0);
    assert_eq!(est.value(), 2.0);
}

#[test]
fn gilbert_parameters_of_section_5_1() {
    let ch = GilbertModel::paper(0.6, 0);
    assert_eq!(ch.p_good(), 0.92);
    // Steady-state loss 0.08/0.48 ≈ 16.7 %, mean burst 2.5 packets.
    assert!((ch.steady_state_loss() - 1.0 / 6.0).abs() < 1e-12);
    assert!((ch.mean_burst_len() - 2.5).abs() < 1e-12);
}
