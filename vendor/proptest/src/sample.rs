//! Sampling helpers (`prop::sample::Index`).

/// An arbitrary index usable against any non-empty slice length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index {
    raw: usize,
}

impl Index {
    pub(crate) fn from_raw(raw: usize) -> Self {
        Index { raw }
    }

    /// Projects this index into `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.raw % len
    }
}
