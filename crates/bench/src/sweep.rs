//! The bench binaries' side of the parallel executor.
//!
//! Every experiment binary sweeps an independent grid (movie × seed ×
//! parameter); this module wires those grids into
//! [`espread_exec::Executor`] uniformly:
//!
//! * [`jobs_from_args`] parses the shared `--jobs N` flag (`0` or absent
//!   means "use available parallelism");
//! * [`executor`] builds the experiment's executor with that worker
//!   count;
//! * [`write_results`] stores the deterministic sweep artifact at
//!   `results/<name>.json`.
//!
//! The worker count never changes results — cells are sharded statically
//! and every trial's RNG stream derives from a stable key — so the
//! artifact written by `--jobs 1` and `--jobs 8` is byte-identical (the
//! CI determinism job diffs exactly these files). Telemetry snapshots are
//! *not* covered by that guarantee: they contain wall-clock span timings.

use espread_exec::{Executor, Json};

/// Parses `--jobs N` from the process arguments.
///
/// Returns `0` ("use available parallelism") when the flag is absent, so
/// the result can be handed straight to [`Executor::new`].
///
/// # Panics
///
/// Panics with a usage message when `--jobs` is present without a valid
/// count.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs" || a == "-j")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--jobs takes a worker count")
        })
        .unwrap_or(0)
}

/// An [`Executor`] for `experiment` honouring the `--jobs` flag.
pub fn executor(experiment: &str) -> Executor {
    Executor::new(experiment, jobs_from_args())
}

/// Writes the deterministic sweep artifact `results/<name>.json` and
/// reports the path on stdout.
///
/// Everything in `doc` must derive from cell results (no timings, no
/// worker counts): these files are the byte-identical-across-`--jobs`
/// surface the CI determinism job diffs.
pub fn write_results(name: &str, doc: &Json) {
    let path = format!("results/{name}.json");
    let result = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(&path, doc.render_pretty()));
    match result {
        Ok(()) => println!("results written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Builds the standard artifact skeleton: `{"experiment": <name>,
/// "rows": [...]}` with rows in grid order.
pub fn results_doc(name: &str, rows: Vec<Json>) -> Json {
    let mut doc = Json::object();
    doc.push("experiment", name).push("rows", Json::Array(rows));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_jobs_is_auto() {
        // The test harness never passes --jobs.
        assert_eq!(jobs_from_args(), 0);
    }

    #[test]
    fn doc_skeleton_shape() {
        let doc = results_doc("t", vec![Json::Int(1)]);
        assert_eq!(doc.render(), r#"{"experiment":"t","rows":[1]}"#);
    }
}
