//! Error spreading as an orthogonal dimension (§4.3, Fig. 4).
//!
//! The paper classifies error handling on two axes: *redundancy* (none /
//! reactive retransmission / proactive FEC) × *transmission order* (plain
//! / error-spread). This example runs all six blocks A–F of Fig. 4 on the
//! same channel realisation and shows that spreading composes with — and
//! improves — every recovery scheme without adding bandwidth itself.
//!
//! ```sh
//! cargo run --release --example orthogonal_recovery
//! ```

use error_spreading::prelude::*;

fn main() {
    let trace = MpegTrace::new(Movie::JurassicPark, 1);
    let source = StreamSource::mpeg(&trace, 2, 60, false);
    let seed = 99;
    let p_bad = 0.7;

    let blocks: [(&str, Ordering, Recovery); 6] = [
        ("A: plain, no recovery", Ordering::InOrder, Recovery::None),
        (
            "B: plain + retransmit",
            Ordering::InOrder,
            Recovery::Retransmit,
        ),
        (
            "C: plain + FEC(k=4)",
            Ordering::InOrder,
            Recovery::Fec { group: 4 },
        ),
        ("D: spread, no recovery", Ordering::spread(), Recovery::None),
        (
            "E: spread + retransmit",
            Ordering::spread(),
            Recovery::Retransmit,
        ),
        (
            "F: spread + FEC(k=4)",
            Ordering::spread(),
            Recovery::Fec { group: 4 },
        ),
    ];

    println!("block                    mean CLF   dev   mean ALF   bytes sent");
    let mut results = Vec::new();
    for (name, ordering, recovery) in blocks {
        let cfg = ProtocolConfig::paper(p_bad, seed)
            .with_ordering(ordering)
            .with_recovery(recovery);
        let report = Session::new(cfg, source.clone()).run();
        let s = report.summary();
        println!(
            "{name:<24} {:>8.2} {:>5.2} {:>9.3} {:>12}",
            s.mean_clf, s.dev_clf, s.mean_alf, report.bytes_offered
        );
        results.push((name, s.mean_clf));
    }

    let clf = |label: &str| {
        results
            .iter()
            .find(|(n, _)| n.starts_with(label))
            .map(|(_, v)| *v)
            .expect("block present")
    };
    println!();
    println!(
        "spreading alone (D {:.2}) vs naive (A {:.2}): pure reordering, zero extra bandwidth",
        clf("D"),
        clf("A")
    );
    println!(
        "spreading under recovery: B {:.2} → E {:.2}, C {:.2} → F {:.2}",
        clf("B"),
        clf("E"),
        clf("C"),
        clf("F")
    );
}
