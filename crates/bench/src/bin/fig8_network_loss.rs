//! Figure 8 — impact of network losses: per-window CLF, scrambled vs
//! unscrambled, at the paper's exact parameters.
//!
//! RTT 23 ms, bandwidth 1.2 Mbps, P_good = 0.92, W = 2 GOPs, GOP 12,
//! packet 2 KiB, 100 buffer windows; P_bad ∈ {0.6, 0.7} (select with
//! `--pbad`).
//!
//! ```sh
//! cargo run --release -p espread-bench --bin fig8_network_loss -- --pbad 0.6
//! cargo run --release -p espread-bench --bin fig8_network_loss -- --pbad 0.7
//! ```

use espread_bench::{ascii_plot, paper_source, sweep};
use espread_exec::Json;
use espread_protocol::{Ordering, ProtocolConfig, Session};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let p_bad: f64 = args
        .iter()
        .position(|a| a == "--pbad")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--pbad takes a probability"))
        .unwrap_or(0.6);
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(42);

    println!(
        "Figure 8: CLF pattern, RTT=23 ms, BW=1200000 bps, Pgood=0.92, Pbad={p_bad}, W=2, GOP 12, packet 2 KiB\n"
    );

    // The two schemes run on matched (identically seeded) channels; as
    // executor cells they are independent sessions.
    let orderings = [Ordering::InOrder, Ordering::spread()];
    let mut reports =
        sweep::executor("fig8_network_loss").run(orderings.to_vec(), |_, ordering| {
            let cfg = ProtocolConfig::paper(p_bad, seed).with_ordering(ordering);
            Session::new(cfg, paper_source(2, 100, 1)).run()
        });
    let spread = reports.pop().expect("spread report");
    let plain = reports.pop().expect("plain report");

    let plain_series: Vec<f64> = plain.series.clf_values().map(|c| c as f64).collect();
    let spread_series: Vec<f64> = spread.series.clf_values().map(|c| c as f64).collect();

    print!(
        "{}",
        ascii_plot(
            "CLF per buffer window (100 windows):",
            &[
                ("unscrambled", plain_series.clone()),
                ("scrambled", spread_series.clone()),
            ],
            8,
        )
    );

    let (p, s) = (plain.summary(), spread.summary());
    println!();
    println!("Un Scrambled Mean {:.2}, Dev {:.2}", p.mean_clf, p.dev_clf);
    println!("Scrambled    Mean {:.2}, Dev {:.2}", s.mean_clf, s.dev_clf);
    println!(
        "\npaper reference @ Pbad=0.6: Un Scrambled Mean 1.71, Dev 0.92 | Scrambled Mean 1.46, Dev 0.56"
    );
    println!(
        "paper reference @ Pbad=0.7: Un Scrambled Mean 1.63, Dev 0.85 | Scrambled Mean 1.56, Dev 0.79"
    );
    println!(
        "\nchannel: {} packets offered, {:.1}% lost (steady state {:.1}%)",
        spread.packets_offered,
        spread.packet_loss_rate() * 100.0,
        {
            let leave_good = 1.0 - 0.92f64;
            let leave_bad = 1.0 - p_bad;
            leave_good / (leave_good + leave_bad) * 100.0
        }
    );

    let name = format!("fig8_pbad_{p_bad}");
    let mut doc = Json::object();
    doc.push("experiment", name.as_str())
        .push("p_bad", p_bad)
        .push("seed", seed)
        .push("plain_mean", p.mean_clf)
        .push("plain_dev", p.dev_clf)
        .push("spread_mean", s.mean_clf)
        .push("spread_dev", s.dev_clf)
        .push("packets_offered", spread.packets_offered)
        .push("packet_loss_rate", spread.packet_loss_rate())
        .push(
            "plain_clf_series",
            Json::Array(plain_series.into_iter().map(Json::Float).collect()),
        )
        .push(
            "spread_clf_series",
            Json::Array(spread_series.into_iter().map(Json::Float).collect()),
        );
    sweep::write_results(&name, &doc);
    espread_bench::write_telemetry_snapshot(&name);
}
