//! Table 1 — how the order of frames sent affects the CLF.
//!
//! A window of 17 frames, a network burst of 5 packets. The paper's rows:
//! in-order transmission (CLF 5/17), the permuted order (the frames lost
//! are consecutive only in the permuted domain), and the un-permuted view.
//!
//! ```sh
//! cargo run -p espread-bench --bin table1_example
//! ```

use espread_bench::sweep;
use espread_core::{
    burst_loss_pattern, calculate_permutation, cpo::stride_permutation, worst_case_clf, Permutation,
};
use espread_exec::Json;

fn one_indexed(perm: &Permutation) -> String {
    perm.as_slice()
        .iter()
        .map(|i| format!("{:02}", i + 1))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let n = 17;
    let b = 5;
    let burst_start = 6; // the illustration's mid-window burst

    println!("Table 1: an example of how the order of frames sent affects CLF");
    println!(
        "(window n = {n}, bursty loss b = {b}, burst at slots {burst_start}..{})\n",
        burst_start + b
    );

    let in_order = Permutation::identity(n);
    let permuted = stride_permutation(n, 5); // the paper's published order

    // Each order's burst analysis and worst-case scan is one cell.
    let orders = [
        ("in order", in_order.clone()),
        ("permuted", permuted.clone()),
    ];
    let cells = sweep::executor("table1_example").run(orders.to_vec(), |_, (name, perm)| {
        let loss = burst_loss_pattern(&perm, burst_start, b);
        (
            name,
            loss.to_string(),
            loss.longest_run(),
            worst_case_clf(&perm, b),
        )
    });

    println!("{:<12} {}", "in order", one_indexed(&in_order));
    println!("{:<12} {}", "permuted", one_indexed(&permuted));
    println!();
    println!("{:<12} {}   CLF {}/{n}", "in order", cells[0].1, cells[0].2);
    println!(
        "{:<12} {}   CLF {}/{n}",
        "un-permuted", cells[1].1, cells[1].2
    );
    println!();
    println!(
        "worst case over all burst positions: in-order {}, permuted {}",
        cells[0].3, cells[1].3
    );

    let choice = calculate_permutation(n, b);
    println!(
        "calculatePermutation({n}, {b}) chooses {} with worst-case CLF {}",
        choice.family, choice.worst_clf
    );
    println!("\npaper row values: CLF 5/17 in order, 1/17 permuted.");

    let mut rows = Vec::new();
    for (name, loss, clf, worst) in &cells {
        let mut row = Json::object();
        row.push("order", *name)
            .push("loss_pattern", loss.as_str())
            .push("clf", *clf)
            .push("worst_case_clf", *worst);
        rows.push(row);
    }
    let mut doc = sweep::results_doc("table1_example", rows);
    doc.push("chosen_family", choice.family.to_string())
        .push("chosen_worst_clf", choice.worst_clf);
    sweep::write_results("table1_example", &doc);
    espread_bench::write_telemetry_snapshot("table1_example");
}
