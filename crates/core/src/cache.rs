//! Memoized transmission orders.
//!
//! The adaptive loop re-runs `calculatePermutation(n, b)` every time the
//! burst estimate changes — and estimates revisit the same handful of
//! values constantly (eq. 1 is a smoothing filter), so the exact search
//! recomputes identical orders thousands of times per experiment. The
//! caches here memoize the two expensive entry points behind
//! `RwLock<HashMap>`:
//!
//! * [`calculate_permutation_cached`] — keyed by `(n, b)`;
//! * [`layered_uniform_cached`] — keyed by
//!   ([`Poset::fingerprint`], `b`).
//!
//! Both are process-global and thread-safe: a sweep's worker threads
//! share one warm cache. Lookups never hold a lock while computing — on
//! a racing miss both threads compute (the search is deterministic and
//! idempotent) and the first insert wins, so every caller sees the same
//! [`Arc`].
//!
//! Both caches are **bounded** ([`DEFAULT_CACHE_CAPACITY`] entries): a
//! long-lived server accumulating distinct `(n, b)` / fingerprint keys
//! evicts the least-recently-used entry instead of growing without limit.
//! Evicted orders are simply recomputed on the next miss — correctness is
//! unaffected, only warmth.
//!
//! Hit/miss/eviction counts are exported through `espread-telemetry` as
//! `core.order_cache.{hits,misses,evictions}` and
//! `core.layered_cache.{hits,misses,evictions}`, and are also available
//! lock-free via [`spread_cache_stats`] / [`layered_cache_stats`].

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use espread_poset::Poset;

use crate::cpo::{calculate_permutation, SpreadChoice};
use crate::layered::LayeredOrder;

/// Default capacity for the process-global order caches. A long-lived
/// server revisits a small set of `(n, b)` pairs (eq. 1 smooths the burst
/// estimate), so a few thousand entries is generous; the bound exists to
/// stop adversarial or pathological key churn from growing the map without
/// limit (the same bug class as the unbounded handshake cache fixed in the
/// event-loop server).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// One resident cache entry: the memoized value plus a recency stamp used
/// for LRU eviction. The stamp is atomic so hits (read lock only) can
/// refresh it without write contention.
#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    last_used: AtomicU64,
}

/// A thread-safe bounded memoization map with hit/miss/eviction accounting.
///
/// Capacity is enforced at insert time: when a miss would grow the map past
/// its bound, the least-recently-used entry is evicted first. Recency is a
/// per-entry atomic stamp from a cache-global tick, refreshed on every hit
/// under the read lock — so the hot steady-state path never takes the write
/// lock.
#[derive(Debug)]
pub struct OrderCache<K, V> {
    map: RwLock<HashMap<K, Entry<V>>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    hit_counter: &'static str,
    miss_counter: &'static str,
    evict_counter: &'static str,
}

/// Point-in-time cache counters (see [`spread_cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries displaced to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the map (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<K: Eq + Hash + Clone, V> OrderCache<K, V> {
    /// An empty cache with the [default capacity](DEFAULT_CACHE_CAPACITY),
    /// reporting through the given telemetry counters.
    pub fn new(
        hit_counter: &'static str,
        miss_counter: &'static str,
        evict_counter: &'static str,
    ) -> Self {
        OrderCache::with_capacity(
            DEFAULT_CACHE_CAPACITY,
            hit_counter,
            miss_counter,
            evict_counter,
        )
    }

    /// An empty cache holding at most `capacity` entries (clamped to ≥ 1).
    pub fn with_capacity(
        capacity: usize,
        hit_counter: &'static str,
        miss_counter: &'static str,
        evict_counter: &'static str,
    ) -> Self {
        OrderCache {
            map: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hit_counter,
            miss_counter,
            evict_counter,
        }
    }

    /// The capacity bound entries never exceed.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn stamp(&self, entry: &Entry<V>) {
        entry
            .last_used
            .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Returns the cached value for `key`, computing and inserting it on a
    /// miss. `compute` runs **without** holding the lock; on a racing miss
    /// the first insert wins and every caller gets the same `Arc`. When the
    /// insert would exceed the capacity bound, the least-recently-used
    /// entry is evicted first.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        if let Some(hit) = self.map.read().expect("cache lock").get(&key) {
            self.stamp(hit);
            self.hits.fetch_add(1, Ordering::Relaxed);
            crate::telem::count(self.hit_counter);
            return Arc::clone(&hit.value);
        }
        let computed = Arc::new(compute());
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::telem::count(self.miss_counter);
        let mut map = self.map.write().expect("cache lock");
        if !map.contains_key(&key) && map.len() >= self.capacity {
            // O(n) min-scan is fine here: eviction only runs on a miss that
            // inserts at capacity, never on the steady-state hit path.
            let victim = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                crate::telem::count(self.evict_counter);
            }
        }
        let entry = map.entry(key).or_insert(Entry {
            value: computed,
            last_used: AtomicU64::new(0),
        });
        self.stamp(entry);
        Arc::clone(&entry.value)
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().expect("cache lock").len(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

fn spread_cache() -> &'static OrderCache<(usize, usize), SpreadChoice> {
    static CACHE: OnceLock<OrderCache<(usize, usize), SpreadChoice>> = OnceLock::new();
    CACHE.get_or_init(|| {
        OrderCache::new(
            "core.order_cache.hits",
            "core.order_cache.misses",
            "core.order_cache.evictions",
        )
    })
}

fn layered_cache() -> &'static OrderCache<(u64, usize), LayeredOrder> {
    static CACHE: OnceLock<OrderCache<(u64, usize), LayeredOrder>> = OnceLock::new();
    CACHE.get_or_init(|| {
        OrderCache::new(
            "core.layered_cache.hits",
            "core.layered_cache.misses",
            "core.layered_cache.evictions",
        )
    })
}

/// [`calculate_permutation`](crate::calculate_permutation) through the
/// process-global `(n, b)` cache. The search is deterministic, so the
/// cached choice is exactly what a fresh call would return.
pub fn calculate_permutation_cached(n: usize, b: usize) -> Arc<SpreadChoice> {
    spread_cache().get_or_compute((n, b), || calculate_permutation(n, b))
}

/// [`LayeredOrder::with_uniform_bound`] through the process-global
/// (poset fingerprint, `b`) cache.
pub fn layered_uniform_cached(poset: &Poset, b: usize) -> Arc<LayeredOrder> {
    layered_cache().get_or_compute((poset.fingerprint(), b), || {
        LayeredOrder::with_uniform_bound(poset, b)
    })
}

/// Counters for the `(n, b)` spread-order cache.
pub fn spread_cache_stats() -> CacheStats {
    spread_cache().stats()
}

/// Counters for the layered-order cache.
pub fn layered_cache_stats() -> CacheStats {
    layered_cache().stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let cache: OrderCache<(usize, usize), SpreadChoice> =
            OrderCache::new("t.hit", "t.miss", "t.evict");
        let first = cache.get_or_compute((17, 5), || calculate_permutation(17, 5));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

        let second = cache.get_or_compute((17, 5), || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache: OrderCache<(usize, usize), usize> =
            OrderCache::new("t.hit", "t.miss", "t.evict");
        let a = cache.get_or_compute((8, 2), || 1);
        let b = cache.get_or_compute((8, 3), || 2);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn key_flood_respects_capacity_bound() {
        let cache: OrderCache<(usize, usize), usize> =
            OrderCache::with_capacity(8, "t.hit", "t.miss", "t.evict");
        for n in 0..100 {
            let got = cache.get_or_compute((n, 0), || n);
            assert_eq!(*got, n);
            assert!(
                cache.stats().entries <= cache.capacity(),
                "flooded past capacity at key {n}"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.evictions, 100 - 8);
        assert_eq!(stats.misses, 100);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache: OrderCache<(usize, usize), usize> =
            OrderCache::with_capacity(2, "t.hit", "t.miss", "t.evict");
        cache.get_or_compute((1, 0), || 1);
        cache.get_or_compute((2, 0), || 2);
        // Touch key 1 so key 2 is now the LRU victim.
        cache.get_or_compute((1, 0), || panic!("warm"));
        cache.get_or_compute((3, 0), || 3);
        // Key 1 survived; key 2 was evicted and must recompute.
        cache.get_or_compute((1, 0), || panic!("survived eviction"));
        let recomputed = std::sync::atomic::AtomicU64::new(0);
        cache.get_or_compute((2, 0), || {
            recomputed.fetch_add(1, Ordering::Relaxed);
            2
        });
        assert_eq!(
            recomputed.load(Ordering::Relaxed),
            1,
            "LRU victim was key 2"
        );
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn cached_choice_matches_fresh_computation() {
        for (n, b) in [(9, 3), (17, 5), (12, 4)] {
            let cached = calculate_permutation_cached(n, b);
            assert_eq!(*cached, calculate_permutation(n, b), "n={n} b={b}");
        }
    }

    #[test]
    fn layered_cache_reuses_by_fingerprint() {
        let poset = Poset::chain(6);
        let first = layered_uniform_cached(&poset, 2);
        // A structurally identical poset hits the same entry.
        let same = Poset::chain(6);
        let second = layered_uniform_cached(&same, 2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*first, LayeredOrder::with_uniform_bound(&poset, 2));
        // A different bound is a different entry.
        let other = layered_uniform_cached(&poset, 3);
        assert!(!Arc::ptr_eq(&first, &other));
    }

    #[test]
    fn cross_thread_reuse() {
        let cache: Arc<OrderCache<(usize, usize), SpreadChoice>> =
            Arc::new(OrderCache::new("t.hit", "t.miss", "t.evict"));
        // Warm one entry, then hammer it from several threads.
        let warm = cache.get_or_compute((17, 5), || calculate_permutation(17, 5));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    (0..16)
                        .map(|_| cache.get_or_compute((17, 5), || panic!("cache was warm")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for got in handle.join().expect("no panic") {
                assert!(Arc::ptr_eq(&warm, &got), "all threads share one entry");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 64);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn racing_misses_converge_to_one_entry() {
        let cache: Arc<OrderCache<(usize, usize), SpreadChoice>> =
            Arc::new(OrderCache::new("t.hit", "t.miss", "t.evict"));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compute((19, 4), || calculate_permutation(19, 4))
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        // However the race resolved, exactly one entry survived and every
        // caller sees it.
        assert_eq!(cache.stats().entries, 1);
        for pair in results.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
        assert_eq!(*results[0], calculate_permutation(19, 4));
    }
}
