//! The deterministic generator behind every strategy.

/// A SplitMix64-based test RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a case seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `[lo, hi]` (inclusive), for sizes.
    pub fn in_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}
