//! The bounded, lock-cheap flight recorder.
//!
//! A [`FlightRecorder`] owns a preallocated ring of [`ObsEvent`]s behind a
//! `Mutex`. The steady-state [`record`](FlightRecorder::record) path reads
//! the monotonic clock, takes the lock, and stores one `Copy` struct into
//! a slot that already exists — **zero heap allocations** (asserted by a
//! counting-allocator test) and no unbounded growth: when the ring is
//! full the oldest event is overwritten and a drop counter increments, so
//! a runaway session can never exhaust memory, only shorten its history.
//!
//! Recorders for the three roles of one in-process session should be
//! created together with [`trio`] so they share a single epoch `Instant`
//! — that is what makes cross-role timestamp comparisons (the
//! delivered-before-sent causality check) meaningful. Recordings from
//! different processes have unrelated epochs; [`Recording::shared_epoch`]
//! tells the reconstructor whether timing checks apply.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{EventKind, ObsEvent, Role};

/// Default ring capacity: comfortably above a multi-window loopback
/// session's event volume (a few thousand) while bounding memory at
/// `capacity × size_of::<ObsEvent>()` ≈ 512 KiB.
pub const DEFAULT_CAPACITY: usize = 16_384;

/// A bounded per-session event recorder for one role. Cloning shares the
/// same ring (it is an `Arc` underneath), so a recorder can be handed to
/// the threads of the node it observes.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    role: Role,
    session: u32,
    shared_epoch: bool,
    epoch: Instant,
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    /// Preallocated storage; never grows after construction.
    buf: Vec<ObsEvent>,
    /// Next slot to write.
    head: usize,
    /// Events currently held (≤ capacity).
    len: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

/// An immutable snapshot of everything one recorder captured, plus the
/// metadata the reconstructor needs to interpret it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recording {
    /// Which node recorded.
    pub role: Role,
    /// Caller-chosen logical session id (distinguishes e.g. the spread
    /// and in-order runs of a compare cell).
    pub session: u32,
    /// Whether this recording's epoch is shared with its siblings (true
    /// for [`trio`]-created recorders). Timestamp causality checks are
    /// only sound across recordings that share an epoch.
    pub shared_epoch: bool,
    /// The ring capacity the recorder ran with.
    pub capacity: usize,
    /// Events overwritten after the ring filled. Nonzero means the
    /// timeline's early history is incomplete and attribution must
    /// degrade gracefully.
    pub dropped: u64,
    /// Captured events, oldest first.
    pub events: Vec<ObsEvent>,
}

impl FlightRecorder {
    /// A standalone recorder with its own epoch.
    pub fn new(role: Role, capacity: usize) -> Self {
        FlightRecorder::with_epoch(role, capacity, 0, false, Instant::now())
    }

    fn with_epoch(
        role: Role,
        capacity: usize,
        session: u32,
        shared_epoch: bool,
        epoch: Instant,
    ) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Inner {
                role,
                session,
                shared_epoch,
                epoch,
                ring: Mutex::new(Ring {
                    buf: vec![ObsEvent::default(); capacity],
                    head: 0,
                    len: 0,
                    dropped: 0,
                }),
            }),
        }
    }

    /// The role this recorder observes.
    pub fn role(&self) -> Role {
        self.inner.role
    }

    /// Records one event. Steady-state cost: one clock read, one mutex
    /// lock, one in-place store — no allocation, ever.
    #[inline]
    pub fn record(&self, kind: EventKind, conn: u32, window: u64, frame: u32, detail: u32) {
        let mut ring = lock(&self.inner.ring);
        // Clock read under the lock: the ring is the serialisation
        // point, so merged timestamps are monotonic in insertion order.
        let t_us = self.inner.epoch.elapsed().as_micros() as u64;
        let capacity = ring.buf.len();
        let head = ring.head;
        ring.buf[head] = ObsEvent {
            t_us,
            conn,
            window,
            frame,
            kind,
            detail,
        };
        ring.head = (head + 1) % capacity;
        if ring.len < capacity {
            ring.len += 1;
        } else {
            ring.dropped += 1;
        }
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        lock(&self.inner.ring).dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        lock(&self.inner.ring).len
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots the ring into a [`Recording`], oldest event first. The
    /// recorder keeps running; this copies.
    pub fn recording(&self) -> Recording {
        let ring = lock(&self.inner.ring);
        let capacity = ring.buf.len();
        let mut events = Vec::with_capacity(ring.len);
        // Oldest event sits at `head` once the ring has wrapped, else at 0.
        let start = if ring.len == capacity { ring.head } else { 0 };
        for i in 0..ring.len {
            events.push(ring.buf[(start + i) % capacity]);
        }
        Recording {
            role: self.inner.role,
            session: self.inner.session,
            shared_epoch: self.inner.shared_epoch,
            capacity,
            dropped: ring.dropped,
            events,
        }
    }
}

fn lock(m: &Mutex<Ring>) -> std::sync::MutexGuard<'_, Ring> {
    // A panicking recorder thread must not silence every other role's
    // recording; the ring holds plain data, safe to keep using.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Creates the server/proxy/client recorders of one in-process session,
/// sharing a single epoch so their timestamps are directly comparable.
/// `session` tags all three recordings (dumps of several sessions can
/// share a file).
pub fn trio(capacity: usize, session: u32) -> (FlightRecorder, FlightRecorder, FlightRecorder) {
    let epoch = Instant::now();
    (
        FlightRecorder::with_epoch(Role::Server, capacity, session, true, epoch),
        FlightRecorder::with_epoch(Role::Proxy, capacity, session, true, epoch),
        FlightRecorder::with_epoch(Role::Client, capacity, session, true, epoch),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FRAME_NONE, WINDOW_NONE};

    #[test]
    fn records_in_order_with_monotonic_timestamps() {
        let rec = FlightRecorder::new(Role::Server, 64);
        for i in 0..10u32 {
            rec.record(EventKind::Sent, 1, 0, i, 0);
        }
        let recording = rec.recording();
        assert_eq!(recording.events.len(), 10);
        assert_eq!(recording.dropped, 0);
        for (i, e) in recording.events.iter().enumerate() {
            assert_eq!(e.frame, i as u32);
            assert_eq!(e.kind, EventKind::Sent);
            if i > 0 {
                assert!(e.t_us >= recording.events[i - 1].t_us);
            }
        }
    }

    #[test]
    fn overflow_keeps_the_newest_and_counts_drops_exactly() {
        let rec = FlightRecorder::new(Role::Client, 4);
        for i in 0..11u32 {
            rec.record(EventKind::Delivered, 1, 2, i, 0);
        }
        let recording = rec.recording();
        assert_eq!(recording.events.len(), 4);
        assert_eq!(recording.dropped, 7);
        let frames: Vec<u32> = recording.events.iter().map(|e| e.frame).collect();
        assert_eq!(frames, vec![7, 8, 9, 10], "newest survive, oldest first");
    }

    #[test]
    fn zero_capacity_is_clamped_not_panicking() {
        let rec = FlightRecorder::new(Role::Proxy, 0);
        rec.record(EventKind::DroppedControl, 0, WINDOW_NONE, FRAME_NONE, 3);
        rec.record(EventKind::DroppedControl, 0, WINDOW_NONE, FRAME_NONE, 4);
        let recording = rec.recording();
        assert_eq!(recording.capacity, 1);
        assert_eq!(recording.events.len(), 1);
        assert_eq!(recording.dropped, 1);
        assert_eq!(recording.events[0].detail, 4);
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = FlightRecorder::new(Role::Server, 8);
        let clone = rec.clone();
        rec.record(EventKind::Queued, 1, 0, 0, 0);
        clone.record(EventKind::Queued, 1, 0, 1, 1);
        assert_eq!(rec.recording().events.len(), 2);
    }

    #[test]
    fn trio_shares_an_epoch_and_tags_the_session() {
        let (server, proxy, client) = trio(16, 5);
        server.record(EventKind::Sent, 1, 0, 0, 0);
        proxy.record(EventKind::ForwardedData, 1, 0, 0, 0);
        client.record(EventKind::Delivered, 1, 0, 0, 0);
        for rec in [&server, &proxy, &client] {
            let r = rec.recording();
            assert!(r.shared_epoch);
            assert_eq!(r.session, 5);
            assert_eq!(r.events.len(), 1);
        }
        assert_eq!(server.role(), Role::Server);
        assert_eq!(proxy.role(), Role::Proxy);
        assert_eq!(client.role(), Role::Client);
    }

    #[test]
    fn concurrent_writers_never_lose_counted_events() {
        let rec = FlightRecorder::new(Role::Server, 1024);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for i in 0..200u32 {
                        rec.record(EventKind::Sent, t, 0, i, 0);
                    }
                });
            }
        });
        let recording = rec.recording();
        assert_eq!(recording.events.len() as u64 + recording.dropped, 800);
        // Each thread's own events stay in its program order.
        for t in 0..4u32 {
            let frames: Vec<u32> = recording
                .events
                .iter()
                .filter(|e| e.conn == t)
                .map(|e| e.frame)
                .collect();
            assert!(frames.windows(2).all(|w| w[0] < w[1]), "thread {t} order");
        }
    }
}
