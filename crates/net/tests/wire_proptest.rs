//! Property-based tests of the wire codec: every well-formed message
//! round-trips exactly, and no byte sequence — random, truncated, or
//! mutated — can make `decode` panic.

use espread_net::wire::{
    self, Accept, ByeReason, CriticalNackMsg, DataMsg, Hello, Msg, ParityMember, ParityMsg, Reject,
    WindowAckMsg, WindowEnd, HEADER_BYTES,
};
use espread_protocol::{Fragment, Ldu, Ordering};
use proptest::prelude::*;

fn ordering_from(code: u8) -> Ordering {
    match code % 4 {
        0 => Ordering::InOrder,
        1 => Ordering::Spread { adaptive: true },
        2 => Ordering::Spread { adaptive: false },
        _ => Ordering::Ibo,
    }
}

/// A deterministic exemplar of each message type, varied by the seeds.
fn exemplars(a: u64, b: u16, text: String, list: Vec<u16>) -> Vec<Msg> {
    let frags_total = (b % 7) + 1;
    vec![
        Msg::Hello(Hello {
            nonce: a,
            buffer_bytes: a ^ 0xABCD,
            max_startup_delay_ms: u64::from(b),
            ordering: ordering_from(a as u8),
        }),
        Msg::Accept(Accept {
            nonce: a,
            frames_per_window: b,
            windows_total: a as u32,
            packet_bytes: u32::from(b) + 1,
            fps: 24,
            layer_sizes: list.clone(),
            critical_frames: list.clone(),
        }),
        Msg::Reject(Reject {
            nonce: a,
            reason: text,
        }),
        Msg::Begin,
        Msg::Data(DataMsg {
            fragment: Fragment {
                window: a,
                frame: usize::from(b),
                frag: b % frags_total,
                frags_total,
                layer: a as u8,
                layer_slot: b,
                retransmit: a.is_multiple_of(2),
            },
            ldu: Ldu::new((a as u32).max(1)),
            payload_len: b % 2048,
        }),
        Msg::WindowEnd(WindowEnd {
            window: a,
            sent_at_us: a.wrapping_mul(3),
            last: b.is_multiple_of(2),
        }),
        Msg::WindowAck(WindowAckMsg {
            ack_seq: a,
            window: a ^ 1,
            echo_us: u64::from(b),
            per_layer_burst: list.clone(),
        }),
        Msg::CriticalNack(CriticalNackMsg {
            window: a,
            missing: list,
        }),
        Msg::Bye(if a.is_multiple_of(2) {
            ByeReason::Complete
        } else {
            ByeReason::Aborted
        }),
        Msg::ByeAck,
        Msg::Parity(ParityMsg {
            window: a,
            group: a as u32 ^ 5,
            m: (a as u8 % 4) + 1,
            parity_index: a as u8 % ((a as u8 % 4) + 1),
            shard_bytes: b % 2048,
            members: (0..(b % 6) + 1)
                .map(|i| ParityMember {
                    frame: b.wrapping_add(i),
                    frag: i % frags_total,
                    frags_total,
                })
                .collect(),
        }),
    ]
}

proptest! {
    /// encode → decode is the identity on every message type, for
    /// arbitrary field values.
    #[test]
    fn roundtrip(
        conn in any::<u32>(),
        a in any::<u64>(),
        b in any::<u16>(),
        text in prop::collection::vec(0u8..128, 0..40),
        list in prop::collection::vec(any::<u16>(), 0..24),
    ) {
        let text = String::from_utf8(text).expect("ascii");
        for msg in exemplars(a, b, text, list) {
            let bytes = wire::encode(conn, &msg);
            let (got_conn, got) = wire::decode(&bytes).expect("well-formed must decode");
            prop_assert_eq!(got_conn, conn);
            prop_assert_eq!(got, msg);
        }
    }

    /// Arbitrary byte soup never panics the decoder — it errors (or, for
    /// the vanishingly rare valid datagram, decodes).
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = wire::decode(&bytes);
    }

    /// Every truncation of a valid datagram is rejected with an error,
    /// not a panic.
    #[test]
    fn truncations_error_cleanly(
        a in any::<u64>(),
        b in any::<u16>(),
        list in prop::collection::vec(any::<u16>(), 0..16),
        cut_seed in any::<usize>(),
    ) {
        for msg in exemplars(a, b, "truncate me".into(), list) {
            let bytes = wire::encode(9, &msg);
            let cut = cut_seed % bytes.len();
            let result = wire::decode(&bytes[..cut]);
            prop_assert!(result.is_err(), "cut at {cut} of {} decoded", bytes.len());
        }
    }

    /// Flipping any single byte of a valid datagram never panics; the
    /// decoder either rejects it or yields some other valid message.
    #[test]
    fn single_byte_mutations_never_panic(
        a in any::<u64>(),
        b in any::<u16>(),
        list in prop::collection::vec(any::<u16>(), 0..16),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        for msg in exemplars(a, b, "mutate me".into(), list) {
            let mut bytes = wire::encode(9, &msg);
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= xor;
            let _ = wire::decode(&bytes);
        }
    }

    /// Inflating a length/count field beyond the datagram is an error
    /// (`Truncated`/`Overlength`), never an allocation blow-up or panic.
    #[test]
    fn hostile_length_fields_rejected(count in any::<u16>()) {
        // Hand-build a WindowAck header claiming `count`-many burst
        // entries with no body behind them.
        let mut bytes = wire::encode(
            1,
            &Msg::WindowAck(WindowAckMsg {
                ack_seq: 1,
                window: 0,
                echo_us: 0,
                per_layer_burst: vec![],
            }),
        );
        let len = bytes.len();
        bytes[len - 1] = count.min(255) as u8; // the u8 layer count
        if count.min(255) > 0 {
            prop_assert!(wire::decode(&bytes).is_err());
        }
        // And a CriticalNack with a u16 count field.
        let mut bytes = wire::encode(
            1,
            &Msg::CriticalNack(CriticalNackMsg { window: 0, missing: vec![] }),
        );
        let len = bytes.len();
        bytes[len - 2] = (count >> 8) as u8;
        bytes[len - 1] = count as u8;
        if count > 0 {
            prop_assert!(wire::decode(&bytes).is_err());
        }
    }

    /// The frame index either round-trips exactly or is refused with a
    /// typed `Oversize` — there is no input for which the decoded frame
    /// differs from the encoded one (the silent-truncation bug class).
    #[test]
    fn frame_index_roundtrips_or_refuses(frame in 0usize..140_000) {
        let msg = Msg::Data(DataMsg {
            fragment: Fragment {
                window: 1,
                frame,
                frag: 0,
                frags_total: 1,
                layer: 0,
                layer_slot: 0,
                retransmit: false,
            },
            ldu: Ldu::new(1),
            payload_len: 0,
        });
        match wire::try_encode(7, &msg) {
            Ok(bytes) => {
                prop_assert!(frame <= wire::MAX_FRAME_INDEX);
                let (_, decoded) = wire::decode(&bytes).expect("well-formed");
                prop_assert_eq!(decoded, msg);
            }
            Err(wire::WireError::Oversize { .. }) => {
                prop_assert!(frame > wire::MAX_FRAME_INDEX);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// u8-counted lists (Accept layers, WindowAck bursts) either carry
    /// every entry to the decoder or refuse to encode — never a shorter
    /// list on the wire.
    #[test]
    fn u8_counted_lists_roundtrip_or_refuse(layers in 0usize..300, bursts in 0usize..300) {
        let accept = Msg::Accept(Accept {
            nonce: 1,
            frames_per_window: 8,
            windows_total: 1,
            packet_bytes: 1024,
            fps: 24,
            layer_sizes: vec![3; layers],
            critical_frames: vec![0],
        });
        match wire::try_encode(7, &accept) {
            Ok(bytes) => {
                prop_assert!(layers <= wire::MAX_LAYERS);
                prop_assert_eq!(wire::decode(&bytes).expect("well-formed").1, accept);
            }
            Err(wire::WireError::Oversize { field, .. }) => {
                prop_assert!(layers > wire::MAX_LAYERS, "refused {layers} layers");
                prop_assert_eq!(field, "accept.layer_sizes");
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
        let ack = Msg::WindowAck(WindowAckMsg {
            ack_seq: 1,
            window: 0,
            echo_us: 0,
            per_layer_burst: vec![2; bursts],
        });
        match wire::try_encode(7, &ack) {
            Ok(bytes) => {
                prop_assert!(bursts <= wire::MAX_BURST_ENTRIES);
                prop_assert_eq!(wire::decode(&bytes).expect("well-formed").1, ack);
            }
            Err(wire::WireError::Oversize { field, .. }) => {
                prop_assert!(bursts > wire::MAX_BURST_ENTRIES, "refused {bursts} bursts");
                prop_assert_eq!(field, "window_ack.per_layer_burst");
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// u16-counted lists near the 65 535 ceiling: identity below, typed
    /// refusal above.
    #[test]
    fn u16_counted_lists_roundtrip_or_refuse(extra in 0usize..4) {
        let len = wire::MAX_NACK_ENTRIES - 1 + extra; // straddles the limit
        let nack = Msg::CriticalNack(CriticalNackMsg {
            window: 0,
            missing: vec![1; len],
        });
        match wire::try_encode(7, &nack) {
            Ok(bytes) => {
                prop_assert!(len <= wire::MAX_NACK_ENTRIES);
                prop_assert_eq!(wire::decode(&bytes).expect("well-formed").1, nack);
            }
            Err(wire::WireError::Oversize { .. }) => {
                prop_assert!(len > wire::MAX_NACK_ENTRIES);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// The header prefix invariants hold for every message: magic,
    /// version, and a type byte `peek_type` agrees with.
    #[test]
    fn header_layout_stable(a in any::<u64>(), b in any::<u16>()) {
        for msg in exemplars(a, b, String::new(), vec![]) {
            let bytes = wire::encode(3, &msg);
            prop_assert!(bytes.len() >= HEADER_BYTES);
            prop_assert_eq!(&bytes[..4], &wire::MAGIC.to_be_bytes());
            prop_assert_eq!(bytes[4], wire::VERSION);
            prop_assert_eq!(wire::peek_type(&bytes), Some(msg.type_byte()));
        }
    }
}
