//! The two-state Markov (Gilbert) packet-loss model of Fig. 7.
//!
//! "Network loss pattern is modeled by a two state Markov model … The two
//! states are GOOD (successful) state and BAD (lossy) state. Since networks
//! lose packets in burst, once in the good state, the model remains there
//! with probability P_good. Once it switches to the bad state … it remains
//! there with probability P_bad." (§5.1). Packets stepped through the BAD
//! state are lost; the network starts in the GOOD state.
//!
//! The paper's experiments fix `P_good = 0.92` and vary
//! `P_bad ∈ {0.6, 0.7}`.

use crate::rng::DetRng;

/// The channel state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelState {
    /// Packets are delivered.
    Good,
    /// Packets are lost.
    Bad,
}

/// A seeded two-state Markov loss process.
///
/// # Example
///
/// ```
/// use espread_netsim::GilbertModel;
///
/// let mut channel = GilbertModel::new(0.92, 0.6, 42);
/// let delivered: usize = (0..1000).filter(|_| channel.step_delivers()).count();
/// // Steady-state loss ≈ (1-0.92)/((1-0.92)+(1-0.6)) ≈ 16.7 %.
/// assert!(delivered > 750 && delivered < 900);
/// ```
#[derive(Debug, Clone)]
pub struct GilbertModel {
    p_good: f64,
    p_bad: f64,
    state: ChannelState,
    rng: DetRng,
    bursts: crate::telem::BurstTracker,
}

impl GilbertModel {
    /// Creates the model with stay probabilities `p_good` (GOOD→GOOD) and
    /// `p_bad` (BAD→BAD), starting in the GOOD state (as in §5.1), seeded
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(p_good: f64, p_bad: f64, seed: u64) -> Self {
        assert!(
            p_good.is_finite() && (0.0..=1.0).contains(&p_good),
            "P_good must be a probability"
        );
        assert!(
            p_bad.is_finite() && (0.0..=1.0).contains(&p_bad),
            "P_bad must be a probability"
        );
        GilbertModel {
            p_good,
            p_bad,
            state: ChannelState::Good,
            rng: DetRng::seed_from(seed),
            bursts: crate::telem::BurstTracker::new(),
        }
    }

    /// The paper's channel: `P_good = 0.92` with the given `P_bad`.
    pub fn paper(p_bad: f64, seed: u64) -> Self {
        Self::new(0.92, p_bad, seed)
    }

    /// The current state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// The GOOD→GOOD stay probability.
    pub fn p_good(&self) -> f64 {
        self.p_good
    }

    /// The BAD→BAD stay probability.
    pub fn p_bad(&self) -> f64 {
        self.p_bad
    }

    /// Advances the chain by one packet and returns whether that packet is
    /// **delivered** (i.e. the chain is in GOOD after the transition).
    pub fn step_delivers(&mut self) -> bool {
        let stay = self.rng.next_f64();
        self.state = match self.state {
            ChannelState::Good if stay < self.p_good => ChannelState::Good,
            ChannelState::Good => ChannelState::Bad,
            ChannelState::Bad if stay < self.p_bad => ChannelState::Bad,
            ChannelState::Bad => ChannelState::Good,
        };
        let delivered = self.state == ChannelState::Good;
        self.bursts.observe(delivered);
        delivered
    }

    /// The stationary probability of the BAD state — the long-run packet
    /// loss rate:
    /// `(1 − P_good) / ((1 − P_good) + (1 − P_bad))`.
    ///
    /// Returns 0 for the degenerate always-good chain and 1 for
    /// always-bad.
    pub fn steady_state_loss(&self) -> f64 {
        let leave_good = 1.0 - self.p_good;
        let leave_bad = 1.0 - self.p_bad;
        if leave_good + leave_bad == 0.0 {
            // Absorbing both ways; we start GOOD, so no loss.
            return 0.0;
        }
        leave_good / (leave_good + leave_bad)
    }

    /// The mean loss-burst length in packets: `1 / (1 − P_bad)`.
    ///
    /// Returns infinity for `P_bad = 1`.
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / (1.0 - self.p_bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_good() {
        let m = GilbertModel::paper(0.6, 1);
        assert_eq!(m.state(), ChannelState::Good);
        assert_eq!(m.p_good(), 0.92);
        assert_eq!(m.p_bad(), 0.6);
    }

    #[test]
    fn steady_state_formulas() {
        let m = GilbertModel::new(0.92, 0.6, 1);
        assert!((m.steady_state_loss() - 0.08 / 0.48).abs() < 1e-12);
        assert!((m.mean_burst_len() - 2.5).abs() < 1e-12);
        let m = GilbertModel::new(0.92, 0.7, 1);
        assert!((m.steady_state_loss() - 0.08 / 0.38).abs() < 1e-12);
    }

    #[test]
    fn degenerate_chains() {
        let mut always_good = GilbertModel::new(1.0, 0.0, 1);
        assert!((0..100).all(|_| always_good.step_delivers()));
        assert_eq!(always_good.steady_state_loss(), 0.0);

        // P_good = 0: leaves GOOD immediately; P_bad = 1: never returns.
        let mut stuck_bad = GilbertModel::new(0.0, 1.0, 1);
        assert!(!stuck_bad.step_delivers());
        assert!((0..100).all(|_| !stuck_bad.step_delivers()));
        assert!(stuck_bad.mean_burst_len().is_infinite());

        let both_absorbing = GilbertModel::new(1.0, 1.0, 1);
        assert_eq!(both_absorbing.steady_state_loss(), 0.0);
    }

    #[test]
    fn empirical_loss_rate_matches_steady_state() {
        for (p_bad, seed) in [(0.6, 7u64), (0.7, 8)] {
            let mut m = GilbertModel::paper(p_bad, seed);
            let expected = m.steady_state_loss();
            let n = 200_000;
            let lost = (0..n).filter(|_| !m.step_delivers()).count();
            let observed = lost as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "p_bad={p_bad}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn empirical_burst_length_matches_mean() {
        let mut m = GilbertModel::paper(0.6, 11);
        let mut bursts = Vec::new();
        let mut current = 0usize;
        for _ in 0..200_000 {
            if m.step_delivers() {
                if current > 0 {
                    bursts.push(current);
                    current = 0;
                }
            } else {
                current += 1;
            }
        }
        let mean = bursts.iter().sum::<usize>() as f64 / bursts.len() as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean burst {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = GilbertModel::paper(0.6, 99);
        let mut b = GilbertModel::paper(0.6, 99);
        for _ in 0..1000 {
            assert_eq!(a.step_delivers(), b.step_delivers());
        }
    }

    #[test]
    #[should_panic(expected = "P_good must be a probability")]
    fn invalid_p_good_rejected() {
        let _ = GilbertModel::new(1.5, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "P_bad must be a probability")]
    fn invalid_p_bad_rejected() {
        let _ = GilbertModel::new(0.5, -0.1, 0);
    }
}
