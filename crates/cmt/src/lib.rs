//! A miniature Berkeley Continuous Media Toolkit (CMT) pipeline.
//!
//! §4.4 of the error-spreading paper validates the scheme by implementing
//! it inside CMT: the `cmFileSegment` object decodes and prioritises
//! frames into a common buffer, and `pktSrc` picks frames from the buffer,
//! drops low-priority frames under resource pressure, and orders the
//! B-frames — stock CMT with the **Inverse Binary Order**, the paper with
//! **k-CPO**. This crate reproduces exactly those object roles so the two
//! orderings can be compared in an otherwise identical host:
//!
//! * [`FileSegment`] — stages one buffer cycle of frames at a time;
//! * [`PriorityBuffer`] — the common buffer (I > P > B, deadline expiry);
//! * [`PktSrc`] — resource-estimating sender with prioritised dropping
//!   and the pluggable [`BFrameOrdering`];
//! * [`Pipeline`] — the assembled FileSegment → buffer → PktSrc chain.
//!
//! # Example
//!
//! ```
//! use espread_cmt::{BFrameOrdering, Pipeline, PipelineConfig};
//! use espread_trace::{Movie, MpegTrace};
//!
//! let config = PipelineConfig { cycles: 5, ..PipelineConfig::default() };
//! let trace = MpegTrace::new(Movie::JurassicPark, 1);
//!
//! let ibo = Pipeline::new(trace.clone(), &config, BFrameOrdering::Ibo).run();
//! let cpo = Pipeline::new(trace, &config, BFrameOrdering::Cpo { burst: 4 }).run();
//! println!("IBO CLF {:.2} vs CPO CLF {:.2}",
//!          ibo.summary().mean_clf, cpo.summary().mean_clf);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod file_segment;
pub mod ordering;
pub mod pipeline;
pub mod pkt_dest;
pub mod pkt_src;
mod telem;

pub use buffer::{priority_of, BufferedFrame, PriorityBuffer};
pub use file_segment::FileSegment;
pub use ordering::BFrameOrdering;
pub use pipeline::{Pipeline, PipelineConfig};
pub use pkt_dest::PktDest;
pub use pkt_src::{CycleOutcome, PktSrc, SendStrategy};
