//! Figure 12 (referenced from the TR) — CLF vs sender buffer size.
//!
//! W (GOPs per buffer) varied; P_bad = 0.6, BW 1.2 Mbps. The paper's
//! claim: "again, both mean and deviation of CLF are better. This
//! consistency proves … error spreading scales well in various
//! scenarios." Start-up delay grows with W (W GOPs of 12 at 24 fps =
//! W/2 seconds).
//!
//! ```sh
//! cargo run --release -p espread-bench --bin fig12_buffer_sweep -- --jobs 4
//! ```

use espread_bench::{mean, paper_source, sweep, Comparison};
use espread_exec::Json;
use espread_protocol::ProtocolConfig;

const SEEDS: [u64; 3] = [42, 43, 44];
const BUFFERS: [usize; 3] = [1, 2, 4];

fn main() {
    println!("Figure 12: impact of buffer size (Pbad=0.6, BW=1.2 Mbps, 100 windows, 3 seeds)\n");
    println!(
        "{:>3} {:>10} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "W", "delay (s)", "plain mean", "plain dev", "spread mean", "spread dev", "better?"
    );

    let grid: Vec<(usize, u64)> = BUFFERS
        .into_iter()
        .flat_map(|w| SEEDS.into_iter().map(move |seed| (w, seed)))
        .collect();
    let cells = sweep::executor("fig12_buffer_sweep").run(grid, |_, (w, seed)| {
        let source = paper_source(w, 100, 1);
        let cmp = Comparison::run(&ProtocolConfig::paper(0.6, seed), &source);
        let (p, s) = cmp.summaries();
        (p.mean_clf, p.dev_clf, s.mean_clf, s.dev_clf)
    });

    let mut rows = Vec::new();
    for (i, w) in BUFFERS.into_iter().enumerate() {
        let per_seed = &cells[i * SEEDS.len()..(i + 1) * SEEDS.len()];
        let plain_mean = mean(&per_seed.iter().map(|c| c.0).collect::<Vec<_>>());
        let plain_dev = mean(&per_seed.iter().map(|c| c.1).collect::<Vec<_>>());
        let spread_mean = mean(&per_seed.iter().map(|c| c.2).collect::<Vec<_>>());
        let spread_dev = mean(&per_seed.iter().map(|c| c.3).collect::<Vec<_>>());
        let better = spread_mean < plain_mean && spread_dev < plain_dev;
        println!(
            "{w:>3} {:>10.1} {:>12.2} {:>10.2} {:>12.2} {:>10.2} {:>8}",
            w as f64 * 12.0 / 24.0,
            plain_mean,
            plain_dev,
            spread_mean,
            spread_dev,
            if better { "yes" } else { "no" },
        );
        let mut row = Json::object();
        row.push("gops_per_buffer", w)
            .push("startup_delay_s", w as f64 * 12.0 / 24.0)
            .push("plain_mean", plain_mean)
            .push("plain_dev", plain_dev)
            .push("spread_mean", spread_mean)
            .push("spread_dev", spread_dev)
            .push("spread_wins", better);
        rows.push(row);
    }
    println!(
        "\npaper: both mean and deviation better at each buffer size (W up to 2, 0.5–1 s delay;"
    );
    println!("we extend the sweep to W=4). Per-window CLF grows with W for both schemes simply");
    println!("because longer windows contain more loss bursts.");

    sweep::write_results(
        "fig12_buffer_sweep",
        &sweep::results_doc("fig12_buffer_sweep", rows),
    );
    espread_bench::write_telemetry_snapshot("fig12_buffer_sweep");
}
