//! Property tests of the erasure codec: for arbitrary geometry, shard
//! contents, and erasure patterns within the code's budget, recovery is
//! byte-identical; beyond the budget, the refusal is typed, never a
//! panic or a wrong answer.

use espread_fec::{Codec, FecError, Scratch};
use proptest::prelude::*;

/// Deterministic shard contents from a seed (proptest drives the seed).
fn shards(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..k)
        .map(|j| {
            (0..len)
                .map(|i| {
                    let x = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add((j as u64) << 32 | i as u64);
                    (x >> 33) as u8
                })
                .collect()
        })
        .collect()
}

proptest! {
    /// Encode `m` parities from `k` shards, erase any `≤ m` data shards
    /// (and optionally some parities, keeping enough), recover
    /// byte-identically.
    #[test]
    fn erase_within_budget_recovers_exactly(
        k in 1usize..10,
        m in 1usize..5,
        len in 1usize..200,
        seed in any::<u64>(),
        erase_mask in any::<u16>(),
        parity_mask in any::<u16>(),
    ) {
        let codec = Codec::new(k, m).unwrap();
        let data = shards(k, len, seed);
        let mut parity = vec![Vec::new(); m];
        codec.encode_into(&data, &mut parity).unwrap();

        // Erase up to m data shards per the mask.
        let mut present = vec![true; k];
        let mut erased = 0usize;
        for j in 0..k {
            if erased < m && erase_mask & (1 << j) != 0 {
                present[j] = false;
                erased += 1;
            }
        }
        // Drop parities per the mask, but keep at least `erased` alive.
        let mut par_present = vec![true; m];
        let mut alive = m;
        for i in 0..m {
            if alive > erased && parity_mask & (1 << i) != 0 {
                par_present[i] = false;
                alive -= 1;
            }
        }

        let mut damaged = data.clone();
        for (j, &p) in present.iter().enumerate() {
            if !p {
                damaged[j].clear();
            }
        }
        let mut scratch = Scratch::new();
        let recovered = codec
            .recover_into(len, &mut damaged, &present, &parity, &par_present, &mut scratch)
            .unwrap();
        prop_assert_eq!(recovered, erased);
        prop_assert_eq!(damaged, data);
    }

    /// One erasure past the surviving-parity budget is a typed refusal
    /// and leaves every shard slot untouched.
    #[test]
    fn erase_beyond_budget_is_refused(
        k in 2usize..10,
        m in 1usize..4,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        prop_assume!(m < k);
        let codec = Codec::new(k, m).unwrap();
        let data = shards(k, len, seed);
        let mut parity = vec![Vec::new(); m];
        codec.encode_into(&data, &mut parity).unwrap();

        let mut damaged = data.clone();
        let mut present = vec![true; k];
        for j in 0..=m {
            damaged[j].clear();
            present[j] = false;
        }
        let mut scratch = Scratch::new();
        let err = codec
            .recover_into(len, &mut damaged, &present, &parity, &vec![true; m], &mut scratch)
            .unwrap_err();
        prop_assert_eq!(err, FecError::TooManyErasures { erased: m + 1, parities: m });
        for j in 0..=m {
            prop_assert!(damaged[j].is_empty());
        }
    }

    /// Parity is linear: encoding the XOR of two shard sets equals the
    /// XOR of their parities (the algebra the syndrome decoder relies
    /// on).
    #[test]
    fn code_is_linear(
        k in 1usize..8,
        m in 1usize..4,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let codec = Codec::new(k, m).unwrap();
        let a = shards(k, len, seed);
        let b = shards(k, len, seed ^ 0xDEAD_BEEF);
        let sum: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p ^ q).collect())
            .collect();
        let mut pa = vec![Vec::new(); m];
        let mut pb = vec![Vec::new(); m];
        let mut psum = vec![Vec::new(); m];
        codec.encode_into(&a, &mut pa).unwrap();
        codec.encode_into(&b, &mut pb).unwrap();
        codec.encode_into(&sum, &mut psum).unwrap();
        for i in 0..m {
            let xor: Vec<u8> = pa[i].iter().zip(&pb[i]).map(|(p, q)| p ^ q).collect();
            prop_assert_eq!(&xor, &psum[i]);
        }
    }
}
