//! Programmatic experiment reports.
//!
//! The experiment binaries print human-oriented tables; this module
//! produces the same comparisons as structured data and renders them to
//! markdown, so CI jobs or notebooks can regenerate
//! `results/summary.md` without scraping stdout.

use std::fmt::Write as _;

use espread_protocol::ProtocolConfig;

use crate::{paper_source, Comparison};

/// One scrambled-vs-unscrambled comparison cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Row label (e.g. `"P_bad = 0.6"`).
    pub label: String,
    /// Unscrambled mean CLF.
    pub plain_mean: f64,
    /// Unscrambled CLF deviation.
    pub plain_dev: f64,
    /// Scrambled mean CLF.
    pub spread_mean: f64,
    /// Scrambled CLF deviation.
    pub spread_dev: f64,
    /// Observed packet loss rate.
    pub loss_rate: f64,
}

impl ComparisonRow {
    /// Runs one matched comparison at the paper's workload.
    pub fn measure(label: impl Into<String>, config: &ProtocolConfig, windows: usize) -> Self {
        let source = paper_source(2, windows, 1);
        let cmp = Comparison::run(config, &source);
        let (p, s) = cmp.summaries();
        ComparisonRow {
            label: label.into(),
            plain_mean: p.mean_clf,
            plain_dev: p.dev_clf,
            spread_mean: s.mean_clf,
            spread_dev: s.dev_clf,
            loss_rate: cmp.spread.packet_loss_rate(),
        }
    }

    /// Whether scrambling won on both mean and deviation.
    pub fn spread_wins(&self) -> bool {
        self.spread_mean <= self.plain_mean && self.spread_dev <= self.plain_dev
    }
}

/// Renders comparison rows as a GitHub-flavoured markdown table.
pub fn to_markdown(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}\n");
    let _ = writeln!(
        out,
        "| case | plain mean | plain dev | spread mean | spread dev | loss | spread wins |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.1}% | {} |",
            r.label,
            r.plain_mean,
            r.plain_dev,
            r.spread_mean,
            r.spread_dev,
            r.loss_rate * 100.0,
            if r.spread_wins() { "✓" } else { "✗" },
        );
    }
    out
}

/// Measures the paper's headline grid (Fig. 8 parameters at both loss
/// rates) and renders it; `windows` trades precision for runtime. The
/// two loss rates run as executor cells (`jobs` as in
/// [`Executor::new`](espread_exec::Executor::new): `0` = available
/// parallelism); results are identical for every worker count.
pub fn fig8_summary(windows: usize, seed: u64, jobs: usize) -> String {
    let rows =
        espread_exec::Executor::new("fig8_summary", jobs).run(vec![0.6, 0.7], |_, p_bad: f64| {
            ComparisonRow::measure(
                format!("P_bad = {p_bad}"),
                &ProtocolConfig::paper(p_bad, seed),
                windows,
            )
        });
    to_markdown("Fig. 8 — network-loss comparison", &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rows_are_sane() {
        let row = ComparisonRow::measure("test", &ProtocolConfig::paper(0.6, 42), 20);
        assert!(row.plain_mean >= 0.0);
        assert!(row.loss_rate > 0.0 && row.loss_rate < 1.0);
        assert!(row.spread_wins(), "paper's headline should hold: {row:?}");
    }

    #[test]
    fn markdown_renders_all_rows() {
        let rows = vec![
            ComparisonRow {
                label: "a".into(),
                plain_mean: 2.0,
                plain_dev: 1.0,
                spread_mean: 1.0,
                spread_dev: 0.5,
                loss_rate: 0.167,
            },
            ComparisonRow {
                label: "b".into(),
                plain_mean: 1.0,
                plain_dev: 1.0,
                spread_mean: 2.0,
                spread_dev: 0.5,
                loss_rate: 0.2,
            },
        ];
        let md = to_markdown("Title", &rows);
        assert!(md.contains("## Title"));
        assert!(md.contains("| a | 2.00 | 1.00 | 1.00 | 0.50 | 16.7% | ✓ |"));
        assert!(md.contains("| b |"));
        assert!(md.contains("✗"));
    }

    #[test]
    fn fig8_summary_contains_both_rates() {
        let md = fig8_summary(10, 42, 1);
        assert!(md.contains("P_bad = 0.6"));
        assert!(md.contains("P_bad = 0.7"));
    }
}
