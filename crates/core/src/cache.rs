//! Memoized transmission orders.
//!
//! The adaptive loop re-runs `calculatePermutation(n, b)` every time the
//! burst estimate changes — and estimates revisit the same handful of
//! values constantly (eq. 1 is a smoothing filter), so the exact search
//! recomputes identical orders thousands of times per experiment. The
//! caches here memoize the two expensive entry points behind
//! `RwLock<HashMap>`:
//!
//! * [`calculate_permutation_cached`] — keyed by `(n, b)`;
//! * [`layered_uniform_cached`] — keyed by
//!   ([`Poset::fingerprint`], `b`).
//!
//! Both are process-global and thread-safe: a sweep's worker threads
//! share one warm cache. Lookups never hold a lock while computing — on
//! a racing miss both threads compute (the search is deterministic and
//! idempotent) and the first insert wins, so every caller sees the same
//! [`Arc`].
//!
//! Hit/miss counts are exported through `espread-telemetry` as
//! `core.order_cache.{hits,misses}` and `core.layered_cache.{hits,misses}`,
//! and are also available lock-free via [`spread_cache_stats`] /
//! [`layered_cache_stats`].

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use espread_poset::Poset;

use crate::cpo::{calculate_permutation, SpreadChoice};
use crate::layered::LayeredOrder;

/// A thread-safe memoization map with hit/miss accounting.
#[derive(Debug)]
pub struct OrderCache<K, V> {
    map: RwLock<HashMap<K, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    hit_counter: &'static str,
    miss_counter: &'static str,
}

/// Point-in-time cache counters (see [`spread_cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the map (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<K: Eq + Hash, V> OrderCache<K, V> {
    /// An empty cache reporting through the given telemetry counters.
    pub fn new(hit_counter: &'static str, miss_counter: &'static str) -> Self {
        OrderCache {
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hit_counter,
            miss_counter,
        }
    }

    /// Returns the cached value for `key`, computing and inserting it on a
    /// miss. `compute` runs **without** holding the lock; on a racing miss
    /// the first insert wins and every caller gets the same `Arc`.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        if let Some(hit) = self.map.read().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            crate::telem::count(self.hit_counter);
            return Arc::clone(hit);
        }
        let computed = Arc::new(compute());
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::telem::count(self.miss_counter);
        let mut map = self.map.write().expect("cache lock");
        Arc::clone(map.entry(key).or_insert(computed))
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().expect("cache lock").len(),
        }
    }
}

fn spread_cache() -> &'static OrderCache<(usize, usize), SpreadChoice> {
    static CACHE: OnceLock<OrderCache<(usize, usize), SpreadChoice>> = OnceLock::new();
    CACHE.get_or_init(|| OrderCache::new("core.order_cache.hits", "core.order_cache.misses"))
}

fn layered_cache() -> &'static OrderCache<(u64, usize), LayeredOrder> {
    static CACHE: OnceLock<OrderCache<(u64, usize), LayeredOrder>> = OnceLock::new();
    CACHE.get_or_init(|| OrderCache::new("core.layered_cache.hits", "core.layered_cache.misses"))
}

/// [`calculate_permutation`](crate::calculate_permutation) through the
/// process-global `(n, b)` cache. The search is deterministic, so the
/// cached choice is exactly what a fresh call would return.
pub fn calculate_permutation_cached(n: usize, b: usize) -> Arc<SpreadChoice> {
    spread_cache().get_or_compute((n, b), || calculate_permutation(n, b))
}

/// [`LayeredOrder::with_uniform_bound`] through the process-global
/// (poset fingerprint, `b`) cache.
pub fn layered_uniform_cached(poset: &Poset, b: usize) -> Arc<LayeredOrder> {
    layered_cache().get_or_compute((poset.fingerprint(), b), || {
        LayeredOrder::with_uniform_bound(poset, b)
    })
}

/// Counters for the `(n, b)` spread-order cache.
pub fn spread_cache_stats() -> CacheStats {
    spread_cache().stats()
}

/// Counters for the layered-order cache.
pub fn layered_cache_stats() -> CacheStats {
    layered_cache().stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let cache: OrderCache<(usize, usize), SpreadChoice> = OrderCache::new("t.hit", "t.miss");
        let first = cache.get_or_compute((17, 5), || calculate_permutation(17, 5));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

        let second = cache.get_or_compute((17, 5), || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache: OrderCache<(usize, usize), usize> = OrderCache::new("t.hit", "t.miss");
        let a = cache.get_or_compute((8, 2), || 1);
        let b = cache.get_or_compute((8, 3), || 2);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn cached_choice_matches_fresh_computation() {
        for (n, b) in [(9, 3), (17, 5), (12, 4)] {
            let cached = calculate_permutation_cached(n, b);
            assert_eq!(*cached, calculate_permutation(n, b), "n={n} b={b}");
        }
    }

    #[test]
    fn layered_cache_reuses_by_fingerprint() {
        let poset = Poset::chain(6);
        let first = layered_uniform_cached(&poset, 2);
        // A structurally identical poset hits the same entry.
        let same = Poset::chain(6);
        let second = layered_uniform_cached(&same, 2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*first, LayeredOrder::with_uniform_bound(&poset, 2));
        // A different bound is a different entry.
        let other = layered_uniform_cached(&poset, 3);
        assert!(!Arc::ptr_eq(&first, &other));
    }

    #[test]
    fn cross_thread_reuse() {
        let cache: Arc<OrderCache<(usize, usize), SpreadChoice>> =
            Arc::new(OrderCache::new("t.hit", "t.miss"));
        // Warm one entry, then hammer it from several threads.
        let warm = cache.get_or_compute((17, 5), || calculate_permutation(17, 5));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    (0..16)
                        .map(|_| cache.get_or_compute((17, 5), || panic!("cache was warm")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for got in handle.join().expect("no panic") {
                assert!(Arc::ptr_eq(&warm, &got), "all threads share one entry");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 64);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn racing_misses_converge_to_one_entry() {
        let cache: Arc<OrderCache<(usize, usize), SpreadChoice>> =
            Arc::new(OrderCache::new("t.hit", "t.miss"));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compute((19, 4), || calculate_permutation(19, 4))
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        // However the race resolved, exactly one entry survived and every
        // caller sees it.
        assert_eq!(cache.stats().entries, 1);
        for pair in results.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
        assert_eq!(*results[0], calculate_permutation(19, 4));
    }
}
