//! Microbenchmark of the recorder hot path (`FlightRecorder::record`).
//!
//! `crates/bench/src/bin/bench_obs.rs` runs the same measurement
//! programmatically and emits the committed `BENCH_obs.json` baseline;
//! this harness is the interactive `cargo bench -p espread-obs` view.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use espread_obs::{data_detail, EventKind, FlightRecorder, Role, DEFAULT_CAPACITY};

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");

    let recorder = FlightRecorder::new(Role::Server, DEFAULT_CAPACITY);
    group.bench_function("record", |b| {
        let mut frame = 0u32;
        b.iter(|| {
            frame = frame.wrapping_add(1);
            recorder.record(
                EventKind::Sent,
                1,
                u64::from(frame >> 6),
                black_box(frame),
                data_detail(0, false),
            );
        });
    });

    // The wrap-around (overwriting) regime: same cost class expected.
    let tiny = FlightRecorder::new(Role::Client, 64);
    group.bench_function("record_overwriting", |b| {
        let mut frame = 0u32;
        b.iter(|| {
            frame = frame.wrapping_add(1);
            tiny.record(
                EventKind::Delivered,
                1,
                0,
                black_box(frame),
                data_detail(0, false),
            );
        });
    });

    group.finish();
}

criterion_group!(benches, bench_record);
criterion_main!(benches);
