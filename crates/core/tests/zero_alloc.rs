//! Proves the steady-state order pipeline never touches the heap.
//!
//! A counting `#[global_allocator]` wraps the system allocator. After a
//! warm-up lap — which populates the process-global order cache, registers
//! the telemetry counters, and sizes the caller-owned buffers — repeated
//! laps of the per-window hot path (cached order lookup, `apply_into` to
//! sent order, `unapply_into` back to playout order) must perform **zero**
//! allocations. Arc clones out of the cache and telemetry counter bumps are
//! pure atomics, so the only heap traffic a lap could cause would be a
//! regression in this PR's buffer-reuse contract.
//!
//! Exactly one `#[test]` lives in this binary: the allocation counter is
//! process-global, so a second test running on a parallel thread would
//! pollute the measured delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use espread_core::{calculate_permutation_cached, layered_uniform_cached};
use espread_poset::Poset;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One full window lap: cached order lookup, scramble to sent order,
/// simulate a loss-free receive, descramble to playout order.
fn window_lap(
    n: usize,
    b: usize,
    items: &[u32],
    sent: &mut Vec<u32>,
    received: &mut Vec<Option<u32>>,
    playout: &mut Vec<Option<u32>>,
) {
    let choice = calculate_permutation_cached(n, b);
    choice.permutation.apply_into(items, sent);
    received.clear();
    received.extend(sent.iter().map(|&x| Some(x)));
    choice.permutation.unapply_into(received, playout);
    assert_eq!(playout.len(), n);
}

#[test]
fn steady_state_order_pipeline_does_not_allocate() {
    const N: usize = 17;
    const B: usize = 5;

    let items: Vec<u32> = (0..N as u32).collect();
    let mut sent: Vec<u32> = Vec::with_capacity(N);
    let mut received: Vec<Option<u32>> = Vec::with_capacity(N);
    let mut playout: Vec<Option<u32>> = Vec::with_capacity(N);
    let poset = Poset::chain(8);

    // Warm-up: first lookups compute the orders, insert cache entries, and
    // register the hit/miss telemetry counters; the buffers reach their
    // steady-state capacity.
    for _ in 0..3 {
        window_lap(N, B, &items, &mut sent, &mut received, &mut playout);
        let _ = layered_uniform_cached(&poset, 2);
    }

    // Measure several rounds and take the *minimum* delta: the libtest
    // main thread may allocate concurrently right after spawning this
    // test's thread, so a single round can see ambient noise. A real
    // hot-path allocation would show up in every round.
    let mut min_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..10_000 {
            window_lap(N, B, &items, &mut sent, &mut received, &mut playout);
            let layered = layered_uniform_cached(&poset, 2);
            assert!(layered.layer_count() > 0);
        }
        min_delta = min_delta.min(ALLOCATIONS.load(Ordering::Relaxed) - before);
    }

    assert_eq!(
        min_delta, 0,
        "steady-state window laps must not allocate, saw {min_delta} allocations in the quietest round"
    );

    // Sanity: the laps really went through the cache, not a recompute path.
    assert_eq!(*playout.last().unwrap(), Some(N as u32 - 1));
}
