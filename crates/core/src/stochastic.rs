//! Stochastic (expected-case) analysis of transmission orders.
//!
//! The paper's theory is adversarial — [`crate::burst::worst_case_clf`] bounds the damage
//! of the single worst burst — but its evaluation is stochastic: windows
//! face a random *process* that may produce several bursts of varying
//! length. The two rankings need not agree (see the multi-burst
//! experiment), so this module estimates the **expected** per-window CLF
//! of an order under any caller-supplied slot-loss process, by Monte
//! Carlo over windows.
//!
//! The loss process is a plain `FnMut() -> bool` (`true` = the next
//! transmission slot's frame is lost), keeping this crate free of any
//! channel-model dependency: feed it a Gilbert chain, a drop-tail trace,
//! or captured real losses.

use espread_qos::{ContinuityMetrics, LossPattern, WindowSeries, WindowSummary};

use crate::permutation::Permutation;

/// Monte-Carlo estimate of an order's per-window continuity under a
/// slot-loss process.
///
/// Simulates `windows` consecutive windows: for each, the process is
/// polled once per transmission slot, the resulting slot-loss vector is
/// pulled back through the permutation, and the playout-domain metrics
/// are recorded. Returns the summary ([`WindowSummary::mean_clf`] is the
/// quantity Fig. 8 plots).
///
/// # Example
///
/// ```
/// use espread_core::{stochastic::monte_carlo_clf, Permutation};
/// use espread_core::cpo::stride_permutation;
///
/// // A deterministic process losing 3 consecutive slots per 17-slot window.
/// let mut slot = 0usize;
/// let mut process = move || {
///     let lost = (5..8).contains(&(slot % 17));
///     slot += 1;
///     lost
/// };
/// let spread = monte_carlo_clf(&stride_permutation(17, 5), 10, &mut process);
/// assert_eq!(spread.mean_clf, 1.0); // every burst spread to isolated losses
///
/// let mut slot = 0usize;
/// let mut process = move || {
///     let lost = (5..8).contains(&(slot % 17));
///     slot += 1;
///     lost
/// };
/// let plain = monte_carlo_clf(&Permutation::identity(17), 10, &mut process);
/// assert_eq!(plain.mean_clf, 3.0);
/// ```
pub fn monte_carlo_clf(
    perm: &Permutation,
    windows: usize,
    slot_lost: &mut dyn FnMut() -> bool,
) -> WindowSummary {
    monte_carlo_series(perm, windows, slot_lost).summary()
}

/// Like [`monte_carlo_clf`] but returns the full per-window series.
pub fn monte_carlo_series(
    perm: &Permutation,
    windows: usize,
    slot_lost: &mut dyn FnMut() -> bool,
) -> WindowSeries {
    let n = perm.len();
    let mut series = WindowSeries::new();
    for _ in 0..windows {
        let mut playout = LossPattern::all_received(n);
        for slot in 0..n {
            if slot_lost() {
                playout.mark_lost(perm.playout_of_slot(slot));
            }
        }
        series.push(ContinuityMetrics::of(&playout));
    }
    series
}

/// Ranks a set of named orders under the same loss process (replayed from
/// the start for each candidate via the factory), best expected CLF first.
///
/// Returns `(name, mean CLF)` pairs sorted ascending. All candidates must
/// share one window length.
///
/// # Panics
///
/// Panics if the orders' lengths differ.
pub fn rank_orders<'a>(
    orders: &'a [(&'a str, Permutation)],
    windows: usize,
    mut process_factory: impl FnMut() -> Box<dyn FnMut() -> bool>,
) -> Vec<(&'a str, f64)> {
    if let Some(first) = orders.first() {
        assert!(
            orders.iter().all(|(_, p)| p.len() == first.1.len()),
            "all candidate orders must share a window length"
        );
    }
    rank_orders_by(orders, |_, perm| {
        let mut process = process_factory();
        monte_carlo_clf(perm, windows, &mut process).mean_clf
    })
}

/// Ranks named orders by an arbitrary score (smaller is better), ascending.
///
/// The sort uses [`f64::total_cmp`], so degenerate scores (a NaN mean from
/// an empty or zero-probability sample set) rank after every finite score
/// instead of panicking the comparison.
pub fn rank_orders_by<'a>(
    orders: &'a [(&'a str, Permutation)],
    mut score: impl FnMut(&str, &Permutation) -> f64,
) -> Vec<(&'a str, f64)> {
    let mut scored: Vec<(&str, f64)> = orders
        .iter()
        .map(|(name, perm)| (*name, score(name, perm)))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpo::stride_permutation;
    use crate::ibo::inverse_binary_order;

    /// A tiny deterministic LCG-driven Bernoulli process for tests.
    fn bernoulli(seed: u64, p_milli: u64) -> Box<dyn FnMut() -> bool> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        Box::new(move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 1000 < p_milli
        })
    }

    #[test]
    fn lossless_process_gives_zero() {
        let perm = stride_permutation(12, 5);
        let mut never = || false;
        let s = monte_carlo_clf(&perm, 20, &mut never);
        assert_eq!(s.mean_clf, 0.0);
        assert_eq!(s.total_lost, 0);
        assert_eq!(s.windows, 20);
    }

    #[test]
    fn total_loss_process_gives_window() {
        let perm = stride_permutation(12, 5);
        let mut always = || true;
        let s = monte_carlo_clf(&perm, 5, &mut always);
        assert_eq!(s.mean_clf, 12.0);
        assert_eq!(s.mean_alf, 1.0);
    }

    #[test]
    fn alf_independent_of_order() {
        // Same process ⇒ same aggregate loss regardless of permutation.
        let a = {
            let mut p = bernoulli(7, 200);
            monte_carlo_clf(&Permutation::identity(24), 50, &mut p)
        };
        let b = {
            let mut p = bernoulli(7, 200);
            monte_carlo_clf(&stride_permutation(24, 7), 50, &mut p)
        };
        assert_eq!(a.total_lost, b.total_lost);
    }

    #[test]
    fn under_iid_loss_orders_are_equivalent() {
        // With independent slot losses the permutation cannot matter:
        // the playout pattern distribution is exchangeable.
        let mut means = Vec::new();
        for perm in [
            Permutation::identity(20),
            stride_permutation(20, 7),
            inverse_binary_order(20),
        ] {
            let mut p = bernoulli(11, 150);
            means.push(monte_carlo_clf(&perm, 4000, &mut p).mean_clf);
        }
        let spread = means.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - means.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(spread < 0.12, "iid means should agree, got {means:?}");
    }

    #[test]
    fn bursty_process_separates_orders() {
        // A deterministic periodic burst: 4 lost slots every 20.
        let factory = || {
            let mut slot = 0usize;
            Box::new(move || {
                let lost = slot % 20 < 4;
                slot += 1;
                lost
            }) as Box<dyn FnMut() -> bool>
        };
        let orders = vec![
            ("identity", Permutation::identity(20)),
            ("stride7", stride_permutation(20, 7)),
            ("ibo", inverse_binary_order(20)),
        ];
        let ranking = rank_orders(&orders, 30, factory);
        // The identity eats the whole burst (CLF 4); interleavers spread it.
        assert_eq!(ranking.last().unwrap().0, "identity");
        assert_eq!(ranking.last().unwrap().1, 4.0);
        assert!(ranking[0].1 <= 2.0);
    }

    #[test]
    fn nan_scores_rank_last_without_panicking() {
        // Regression: a degenerate loss model (zero-probability window,
        // empty sample set) yields a NaN mean CLF; ranking used to panic
        // in partial_cmp. NaN candidates must sort after every finite one.
        let orders = vec![
            ("healthy", Permutation::identity(8)),
            ("degenerate", stride_permutation(8, 3)),
            ("worse", inverse_binary_order(8)),
        ];
        let ranking = rank_orders_by(&orders, |name, _| match name {
            "healthy" => 1.5,
            "worse" => 3.0,
            _ => f64::NAN,
        });
        assert_eq!(ranking[0].0, "healthy");
        assert_eq!(ranking[1].0, "worse");
        assert_eq!(ranking[2].0, "degenerate");
        assert!(ranking[2].1.is_nan());

        // All-NaN: still no panic, order is the (stable) input order.
        let all_nan = rank_orders_by(&orders, |_, _| f64::NAN);
        assert_eq!(all_nan.len(), 3);
        assert!(all_nan.iter().all(|(_, s)| s.is_nan()));
        assert_eq!(all_nan[0].0, "healthy");
    }

    #[test]
    #[should_panic(expected = "share a window length")]
    fn mixed_lengths_rejected() {
        let orders = vec![
            ("a", Permutation::identity(4)),
            ("b", Permutation::identity(5)),
        ];
        let _ = rank_orders(&orders, 1, || Box::new(|| false));
    }
}
