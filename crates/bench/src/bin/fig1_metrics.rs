//! Figure 1 — the two example streams that define the continuity metrics.
//!
//! ```sh
//! cargo run -p espread-bench --bin fig1_metrics
//! ```

use espread_qos::{ContinuityMetrics, LossPattern};

fn main() {
    println!("Figure 1: two example streams used to explain the metrics\n");
    let streams = [
        (
            "stream 1 (back-to-back losses)",
            LossPattern::from_received([false, false, true, true]),
        ),
        (
            "stream 2 (spread-out losses)",
            LossPattern::from_received([false, true, true, false]),
        ),
    ];
    println!(
        "{:<32} {:<8} {:>14} {:>16}",
        "stream", "slots", "aggregate loss", "consecutive loss"
    );
    for (name, pattern) in streams {
        let m = ContinuityMetrics::of(&pattern);
        println!(
            "{:<32} {:<8} {:>14} {:>16}",
            name,
            pattern.to_string(),
            m.alf().to_string(),
            m.clf()
        );
    }
    println!("\npaper: both streams have aggregate loss 2/4; consecutive loss 2 vs 1.");

    espread_bench::write_telemetry_snapshot("fig1_metrics");
}
