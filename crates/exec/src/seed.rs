//! Stable per-trial seed derivation.
//!
//! A parallel sweep must not let one trial's RNG consumption perturb the
//! next trial's stream (that is what makes sequential sweeps accidentally
//! order-dependent). Instead, every trial derives its generator from a
//! stable key — experiment name, cell index, caller-chosen seed — hashed
//! with FNV-1a into [`DetRng`]'s SplitMix64 scrambler. The same key yields
//! the same stream on every platform and for every worker count.

use espread_netsim::rng::DetRng;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Derives the stable 64-bit seed for one trial.
///
/// Pure function of its arguments — no global state, no thread identity.
pub fn trial_seed(experiment: &str, cell: u64, seed: u64) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, experiment.as_bytes());
    // Separator so ("ab", 1) and ("a", …) cannot collide via
    // concatenation; experiment names never contain NUL.
    h = fnv1a(h, &[0]);
    h = fnv1a(h, &cell.to_le_bytes());
    fnv1a(h, &seed.to_le_bytes())
}

/// Per-trial context handed to the sweep closure by [`crate::Executor`].
///
/// Identifies the cell being run and derives its RNG streams. A trial may
/// ask for several independent streams by passing different `seed` values
/// (e.g. one for the loss process, one for jitter).
#[derive(Debug, Clone, Copy)]
pub struct TrialCtx<'a> {
    pub(crate) experiment: &'a str,
    pub(crate) index: usize,
}

impl TrialCtx<'_> {
    /// The executor's experiment name.
    pub fn experiment(&self) -> &str {
        self.experiment
    }

    /// This cell's position in the input grid (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The stable seed for this trial and the given sub-seed.
    pub fn seed(&self, seed: u64) -> u64 {
        trial_seed(self.experiment, self.index as u64, seed)
    }

    /// A deterministic generator for this trial and the given sub-seed.
    pub fn rng(&self, seed: u64) -> DetRng {
        DetRng::seed_from(self.seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_stable() {
        // Pinned value: changing the derivation silently would invalidate
        // every recorded sweep artifact.
        assert_eq!(trial_seed("exp", 0, 0), trial_seed("exp", 0, 0));
        let a = trial_seed("fig11", 3, 42);
        let b = trial_seed("fig11", 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_distinguishes_every_key_component() {
        let base = trial_seed("exp", 1, 2);
        assert_ne!(base, trial_seed("exp2", 1, 2));
        assert_ne!(base, trial_seed("exp", 2, 2));
        assert_ne!(base, trial_seed("exp", 1, 3));
    }

    #[test]
    fn name_and_cell_do_not_concatenate() {
        // The NUL separator keeps ("ab", cell) from aliasing ("a", …).
        assert_ne!(trial_seed("ab", 0, 0), trial_seed("a", u64::from(b'b'), 0));
    }

    #[test]
    fn ctx_streams_are_independent() {
        let ctx = TrialCtx {
            experiment: "t",
            index: 5,
        };
        let mut a = ctx.rng(0);
        let mut b = ctx.rng(1);
        assert_ne!(a.next_u64(), b.next_u64());
        // Re-deriving replays the same stream.
        let mut a2 = ctx.rng(0);
        let mut a3 = ctx.rng(0);
        assert_eq!(a2.next_u64(), a3.next_u64());
    }
}
