//! Randomised local search over transmission orders.
//!
//! The structured families behind
//! [`calculate_permutation`](crate::cpo::calculate_permutation) are fast
//! and provably near-optimal, but nothing stops a downstream user from
//! spending compute to squeeze out the residue: this module runs a
//! seeded, fully deterministic **swap-neighbourhood local search** (with
//! random restarts) initialised at the structured optimum. It can only
//! ever match or improve the starting guarantee, so it is safe to use as
//! a drop-in upgrade where permutation-generation time is unconstrained
//! (offline planning of fixed window layouts).

use crate::burst::{min_spread_gap, worst_case_clf};
use crate::cpo::calculate_permutation;
use crate::permutation::Permutation;

/// A deterministic xorshift generator (independent of any external crate,
/// so `espread-core` stays dependency-light).
#[derive(Debug, Clone)]
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Scores an order: worst-case CLF at the design burst (primary, lower is
/// better) and negated minimum spread gap (secondary).
fn score(perm: &Permutation, b: usize) -> (usize, isize) {
    (
        worst_case_clf(perm, b),
        -(min_spread_gap(perm, b).min(isize::MAX as usize) as isize),
    )
}

/// Result of [`optimize_order`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizedOrder {
    /// The best order found.
    pub permutation: Permutation,
    /// Its exact worst-case CLF at the design burst size.
    pub worst_clf: usize,
    /// How many proposals strictly improved the incumbent.
    pub improvements: usize,
}

/// Randomised local search for a window of `n` under burst bound `b`:
/// starts from `calculate_permutation(n, b)` and tries `iterations`
/// random transpositions (restarting from the incumbent on improvement),
/// deterministically in `seed`.
///
/// The result is **never worse** than the structured search.
///
/// # Example
///
/// ```
/// use espread_core::{anneal::optimize_order, calculate_permutation};
///
/// let base = calculate_permutation(20, 6).worst_clf;
/// let tuned = optimize_order(20, 6, 500, 42);
/// assert!(tuned.worst_clf <= base);
/// ```
pub fn optimize_order(n: usize, b: usize, iterations: usize, seed: u64) -> OptimizedOrder {
    let start = calculate_permutation(n, b);
    if n < 2 {
        return OptimizedOrder {
            worst_clf: start.worst_clf,
            permutation: start.permutation,
            improvements: 0,
        };
    }
    let mut rng = Lcg::new(seed);
    let mut best_vec: Vec<usize> = start.permutation.as_slice().to_vec();
    let mut best_score = score(&start.permutation, b);
    let mut improvements = 0;

    let mut current = best_vec.clone();
    for _ in 0..iterations {
        let i = rng.below(n);
        let mut j = rng.below(n);
        if i == j {
            j = (j + 1) % n;
        }
        current.swap(i, j);
        let candidate = Permutation::from_vec(current.clone()).expect("swap preserves permutation");
        let s = score(&candidate, b);
        if s < best_score {
            best_score = s;
            best_vec = current.clone();
            improvements += 1;
        } else {
            // Revert: first-improvement hill climbing from the incumbent.
            current.swap(i, j);
        }
    }

    let permutation = Permutation::from_vec(best_vec).expect("tracked as permutation");
    OptimizedOrder {
        worst_clf: best_score.0,
        permutation,
        improvements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_worse_than_structured_search() {
        for (n, b) in [(9usize, 4usize), (15, 6), (20, 7), (24, 9)] {
            let base = calculate_permutation(n, b).worst_clf;
            let tuned = optimize_order(n, b, 300, 7);
            assert!(tuned.worst_clf <= base, "n={n} b={b}");
            assert_eq!(worst_case_clf(&tuned.permutation, b), tuned.worst_clf);
            assert_eq!(tuned.permutation.len(), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = optimize_order(18, 6, 200, 11);
        let b = optimize_order(18, 6, 200, 11);
        assert_eq!(a, b);
        // Zero iterations returns the structured result untouched.
        let zero = optimize_order(18, 6, 0, 11);
        assert_eq!(zero.improvements, 0);
        assert_eq!(zero.worst_clf, calculate_permutation(18, 6).worst_clf);
    }

    #[test]
    fn degenerate_windows() {
        let r = optimize_order(0, 3, 100, 1);
        assert_eq!(r.permutation.len(), 0);
        let r = optimize_order(1, 1, 100, 1);
        assert_eq!(r.permutation.len(), 1);
    }

    #[test]
    fn tiny_windows_already_optimal() {
        // calculate_permutation is exhaustive for n ≤ 7, so the local
        // search cannot improve the primary score there.
        for b in 1..7 {
            let base = calculate_permutation(7, b).worst_clf;
            let tuned = optimize_order(7, b, 500, 3);
            assert_eq!(tuned.worst_clf, base, "b={b}");
        }
    }
}
