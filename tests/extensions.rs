//! Integration tests for the reproduction's extension features:
//! concealment synergy, timing accounting, drop-tail loss, critical-only
//! FEC, multi-burst analysis, Cyclic-UDP, H.261.

use error_spreading::cmt::{BFrameOrdering, Pipeline, PipelineConfig, SendStrategy};
use error_spreading::core::burst::worst_case_clf_multi;
use error_spreading::netsim::DropTailConfig;
use error_spreading::prelude::*;
use error_spreading::protocol::{LossModel, Recovery};
use error_spreading::qos::Concealment;

fn mpeg_source(w: usize, windows: usize) -> StreamSource {
    let trace = MpegTrace::new(Movie::JurassicPark, 1);
    StreamSource::mpeg(&trace, w, windows, false)
}

#[test]
fn spreading_makes_losses_concealable_end_to_end() {
    let conceal = Concealment::simple();
    let mut plain_frac = 0.0;
    let mut spread_frac = 0.0;
    for seed in [42u64, 43, 44] {
        let src = mpeg_source(2, 60);
        let spread = Session::new(ProtocolConfig::paper(0.6, seed), src.clone()).run();
        let plain = Session::new(
            ProtocolConfig::paper(0.6, seed).with_ordering(Ordering::InOrder),
            src,
        )
        .run();
        let frac = |r: &SessionReport| {
            let fs: Vec<f64> = r
                .patterns
                .iter()
                .filter(|p| p.lost() > 0)
                .map(|p| conceal.concealable_fraction(p))
                .collect();
            fs.iter().sum::<f64>() / fs.len().max(1) as f64
        };
        plain_frac += frac(&plain);
        spread_frac += frac(&spread);
    }
    assert!(
        spread_frac > plain_frac,
        "spread {spread_frac} must beat plain {plain_frac} on concealability"
    );
}

#[test]
fn timing_reported_and_spreading_adds_no_jitter_blowup() {
    let src = mpeg_source(2, 40);
    let spread = Session::new(ProtocolConfig::paper(0.6, 11), src.clone()).run();
    let plain = Session::new(
        ProtocolConfig::paper(0.6, 11).with_ordering(Ordering::InOrder),
        src.clone(),
    )
    .run();
    let retx = Session::new(
        ProtocolConfig::paper(0.6, 11).with_recovery(Recovery::Retransmit),
        src,
    )
    .run();
    assert!(spread.timing.frames_measured > 0);
    // Spreading stays within 1.5× of the baseline's jitter; retransmission
    // stretches the maximum latency beyond the no-recovery runs.
    assert!(spread.timing.jitter_us <= plain.timing.jitter_us * 1.5);
    assert!(retx.timing.max_latency_us >= spread.timing.max_latency_us);
    // One-window start-up delay absorbs everything: nothing arrives late.
    assert_eq!(spread.timing.late_frames, 0);
    assert_eq!(plain.timing.late_frames, 0);
}

#[test]
fn drop_tail_sessions_preserve_the_spreading_win() {
    let model = LossModel::DropTail(DropTailConfig::paper_like());
    let mut spread_total = 0.0;
    let mut plain_total = 0.0;
    for seed in [3u64, 4, 5, 6] {
        let src = mpeg_source(2, 60);
        let base = ProtocolConfig::paper(0.6, seed).with_loss_model(model);
        spread_total += Session::new(base.clone(), src.clone())
            .run()
            .summary()
            .mean_clf;
        plain_total += Session::new(base.with_ordering(Ordering::InOrder), src)
            .run()
            .summary()
            .mean_clf;
    }
    assert!(
        spread_total < plain_total,
        "drop-tail: spread {spread_total} !< plain {plain_total}"
    );
}

#[test]
fn critical_fec_protects_anchors_without_full_overhead() {
    let src = mpeg_source(2, 40);
    let run = |recovery| {
        Session::new(
            ProtocolConfig::paper(0.7, 17).with_recovery(recovery),
            src.clone(),
        )
        .run()
    };
    let none = run(Recovery::None);
    let critical = run(Recovery::FecCritical { group: 2 });
    let full = run(Recovery::Fec { group: 2 });
    assert!(critical.bytes_offered < full.bytes_offered);
    assert!(critical.fec_recovered > 0);
    assert!(critical.summary().mean_alf <= none.summary().mean_alf);
}

#[test]
fn multi_burst_analysis_consistent_with_sessions() {
    // The multi-burst adversary generalises the single-burst evaluator.
    let spread = calculate_permutation(24, 3);
    assert_eq!(
        worst_case_clf_multi(&spread.permutation, 3, 1),
        spread.worst_clf
    );
    assert!(worst_case_clf_multi(&spread.permutation, 3, 2) >= spread.worst_clf);
}

#[test]
fn cyclic_udp_composes_with_cpo_ordering() {
    let base = PipelineConfig {
        cycles: 20,
        p_bad: 0.6,
        seed: 9,
        ..PipelineConfig::default()
    };
    let cyclic = PipelineConfig {
        strategy: SendStrategy::CyclicUdp { max_rounds: 3 },
        ..base.clone()
    };
    let trace = MpegTrace::new(Movie::JurassicPark, 5);
    let single = Pipeline::new(trace.clone(), &base, BFrameOrdering::Cpo { burst: 4 }).run();
    let resent = Pipeline::new(trace, &cyclic, BFrameOrdering::Cpo { burst: 4 }).run();
    assert!(resent.summary().mean_alf <= single.summary().mean_alf);
    assert!(resent.summary().mean_clf <= single.summary().mean_clf + 1e-9);
}

#[test]
fn h261_streams_through_the_protocol() {
    // H.261: I + P-chain, no B frames — every layer is critical, spreading
    // happens across GOPs within the buffer.
    let pattern = GopPattern::h261(6);
    let trace = MpegTrace::with_pattern(Movie::JurassicPark, pattern, 24, 1);
    let src = StreamSource::mpeg(&trace, 4, 20, false);
    assert_eq!(src.poset.height(), 6);
    let report = Session::new(ProtocolConfig::paper(0.6, 7), src).run();
    assert_eq!(report.series.len(), 20);
    // All-critical layers mean layer sizes of 4 (one frame per GOP).
    assert_eq!(report.estimate_history[0].len(), 6);
}

#[test]
fn poset_width_bounds_spreading_freedom() {
    // The B layer is the widest antichain of the MPEG poset: the exact
    // Dilworth width equals the depth decomposition's largest layer here.
    let poset = GopPattern::gop12().dependency_poset(2, false);
    assert_eq!(poset.width(), 16);
    assert_eq!(poset.width(), poset.max_layer_width());
    // Audio has full freedom.
    assert_eq!(AudioStream::sun_audio().dependency_poset(30).width(), 30);
}
