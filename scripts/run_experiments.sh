#!/usr/bin/env bash
# Regenerates every table/figure/ablation and stores the outputs in results/.
#
# Usage: scripts/run_experiments.sh [--jobs N] [--quick]
#
#   --jobs N   worker threads per bench binary (default: available
#              parallelism). The worker count never changes results:
#              results/<name>.json is byte-identical for every N.
#   --quick    reduced grid (a representative subset of binaries) — used
#              by the CI determinism job, which diffs a --jobs 2 run
#              against a --jobs 1 run.
#
# Each bench binary drops a deterministic sweep artifact at
# results/<name>.json and a telemetry snapshot (JSON lines, includes
# wall-clock timings, NOT determinism-checked) at
# results/telemetry_<name>.json; this script verifies both landed and
# aborts on the first binary that exits non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=0
QUICK=0
while [[ $# -gt 0 ]]; do
  case $1 in
    --jobs|-j) JOBS=${2:?--jobs takes a worker count}; shift 2 ;;
    --quick)   QUICK=1; shift ;;
    *) echo "usage: $0 [--jobs N] [--quick]" >&2; exit 2 ;;
  esac
done

mkdir -p results

fail() {
  echo "error: $*" >&2
  exit 1
}

# Runs one bench binary, teeing stdout to results/$out.txt and checking
# that its sweep artifact results/$snap.json and telemetry snapshot
# results/telemetry_$snap.json were (re)written.
run_bench() {
  local bin=$1 out=$2 snap=$3
  shift 3
  local artifact="results/$snap.json"
  local snapshot="results/telemetry_$snap.json"
  rm -f "$artifact" "$snapshot"
  echo "=== $out ==="
  cargo run --quiet --release -p espread-bench --bin "$bin" -- --jobs "$JOBS" "$@" \
    | tee "results/$out.txt" \
    || fail "$bin exited non-zero"
  [[ -s $artifact ]] || fail "$bin did not write $artifact"
  [[ -s $snapshot ]] || fail "$bin did not write $snapshot"
}

if [[ $QUICK -eq 1 ]]; then
  # The CI determinism subset: cheap binaries spanning the executor's
  # shapes — pure-search grids, session sweeps, and the adaptive loop
  # (whose snapshot must show order-cache hits).
  bins=(
    fig1_metrics table2_ibo_vs_cpo fig12_buffer_sweep ablation_timing
    extension_multi_burst ablation_adaptation
  )
else
  bins=(
    fig1_metrics table1_example theorem1_validation fig3_layered_order
    table2_ibo_vs_cpo fig11_bandwidth_sweep fig12_buffer_sweep
    orthogonality_blocks ablation_adaptation ablation_timing
    ablation_loss_models extension_multi_burst extension_concealment
    extension_stochastic_orders movie_sweep net_loopback chaos_soak
    timeline
  )
fi
for bin in "${bins[@]}"; do
  run_bench "$bin" "$bin" "$bin"
done
# The spreading x FEC frontier streams real UDP sessions but writes a
# deterministic artifact, so it joins the determinism surface in both
# grids (the quick subset sweeps its reduced seed set).
if [[ $QUICK -eq 1 ]]; then
  run_bench fec_frontier fec_frontier fec_frontier --quick
else
  run_bench fec_frontier fec_frontier fec_frontier
fi
if [[ $QUICK -eq 0 ]]; then
  # Timing-derived artifact (sessions/sec, RTT percentiles) — excluded
  # from the --quick determinism subset on purpose. The reduced wave
  # matches the CI net-c10k job; the committed BENCH_net.json floor gates
  # it.
  run_bench net_c10k net_c10k net_c10k --sessions 200
  scripts/check_bench_net.sh || fail "net_c10k regressed past BENCH_net.json"
  # Overload wave: 2x the admission cap. Also timing-derived; its hard
  # invariants (cap respected, zero critical shed, all reaped) and the
  # committed BENCH_overload.json floor are both enforced by the gate.
  run_bench net_overload net_overload net_overload
  scripts/check_bench_overload.sh || fail "net_overload regressed past BENCH_overload.json"
  # Hot-path microbench: pure CPU, timing-derived (excluded from the
  # determinism surface — no telemetry snapshot, so it bypasses
  # run_bench). The committed BENCH_hotpath.json family ratios gate it.
  echo "=== bench_hotpath ==="
  cargo run --quiet --release -p espread-bench --bin bench_hotpath \
    | tee results/bench_hotpath.txt \
    || fail "bench_hotpath exited non-zero"
  scripts/check_bench_hotpath.sh || fail "hot path regressed past BENCH_hotpath.json"
  # The chaos_soak binary also writes the overload regime's separate
  # deterministic report.
  [[ -s results/chaos_overload.json ]] \
    || fail "chaos_soak did not write results/chaos_overload.json"
fi
if [[ $QUICK -eq 0 ]]; then
  for pbad in 0.6 0.7; do
    run_bench fig8_network_loss "fig8_pbad_$pbad" "fig8_pbad_$pbad" --pbad "$pbad"
  done
  echo "=== generate_report ==="
  cargo run --quiet --release -p espread-bench --bin generate_report -- --jobs "$JOBS" > /dev/null \
    || fail "generate_report exited non-zero"

  # Every flight-recorder dump the soak and timeline binaries left in
  # results/ must reconstruct cleanly: all residual losses attributed,
  # no causality violations.
  echo "=== timeline --check ==="
  dumps=(results/timeline_*.jsonl)
  [[ -s ${dumps[0]} ]] || fail "no flight-recorder dumps (timeline_*.jsonl) in results/"
  cargo run --quiet --release -p espread-bench --bin timeline -- --check "${dumps[@]}" \
    || fail "timeline reconstruction failed on recorded dumps"
  echo "validated ${#dumps[@]} flight-recorder dump(s)"
fi

count=$(ls results/telemetry_*.json 2>/dev/null | wc -l)
echo "All experiment outputs written to results/ ($count telemetry snapshots)."
