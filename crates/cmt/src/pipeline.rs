//! Assembled CMT-style pipelines: FileSegment → PriorityBuffer → PktSrc.
//!
//! The paper validated its scheme by implementing it inside the Berkeley
//! Continuous Media Toolkit; [`Pipeline`] mirrors that wiring and lets the
//! B-frame ordering be swapped (IBO ↔ k-CPO) while everything else stays
//! identical — the §4.4 experiment in miniature.

use espread_netsim::{GilbertModel, Link, SimDuration, SimTime};
use espread_qos::WindowSeries;
use espread_trace::MpegTrace;

use crate::file_segment::FileSegment;
use crate::ordering::BFrameOrdering;
use crate::pkt_src::{PktSrc, SendStrategy};

/// Configuration of a CMT pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// GOPs per buffer cycle (CMT's LTS cycle-time handle).
    pub gops_per_cycle: usize,
    /// Number of buffer cycles to stream.
    pub cycles: usize,
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Gilbert GOOD→GOOD stay probability.
    pub p_good: f64,
    /// Gilbert BAD→BAD stay probability.
    pub p_bad: f64,
    /// Channel seed.
    pub seed: u64,
    /// Packet payload size in bytes.
    pub packet_bytes: u32,
    /// Per-packet header overhead in bytes.
    pub header_bytes: u32,
    /// Transport strategy (single-shot or Cyclic-UDP resending).
    pub strategy: SendStrategy,
}

impl Default for PipelineConfig {
    /// The paper's §5.1 setting (with `P_bad = 0.6`).
    fn default() -> Self {
        PipelineConfig {
            gops_per_cycle: 2,
            cycles: 50,
            bandwidth_bps: 1_200_000,
            propagation: SimDuration::from_millis(11),
            p_good: 0.92,
            p_bad: 0.6,
            seed: 1,
            packet_bytes: 2048,
            header_bytes: 28,
            strategy: SendStrategy::Single,
        }
    }
}

/// A complete pipeline over one trace with one B-frame ordering.
#[derive(Debug)]
pub struct Pipeline {
    file_segment: FileSegment,
    pkt_src: PktSrc,
    cycle_us: u64,
    strategy: SendStrategy,
}

impl Pipeline {
    /// Wires a pipeline for `trace` under `config`, with the given
    /// B-frame ordering plug-in.
    pub fn new(trace: MpegTrace, config: &PipelineConfig, ordering: BFrameOrdering) -> Self {
        let file_segment = FileSegment::new(trace, config.gops_per_cycle, config.cycles);
        let link = Link::new(
            config.bandwidth_bps,
            config.propagation,
            GilbertModel::new(config.p_good, config.p_bad, config.seed),
        );
        let cycle_us = file_segment.cycle_us();
        Pipeline {
            file_segment,
            pkt_src: PktSrc::new(link, ordering, config.packet_bytes, config.header_bytes),
            cycle_us,
            strategy: config.strategy,
        }
    }

    /// Streams every cycle and collects per-cycle continuity metrics.
    pub fn run(mut self) -> WindowSeries {
        let _span = crate::telem::span("cmt.pipeline.run_ns");
        let mut series = WindowSeries::new();
        let mut cycle_index = 0u64;
        while let Some(mut buffer) = self.file_segment.next_cycle() {
            let now = SimTime::from_micros(cycle_index * self.cycle_us);
            let deadline = SimTime::from_micros((cycle_index + 1) * self.cycle_us);
            buffer.expire(now.as_micros());
            let outcome = self
                .pkt_src
                .send_cycle_with(&mut buffer, now, deadline, self.strategy);
            crate::telem::count_n("cmt.pipeline.cycles", 1);
            series.push(outcome.metrics);
            cycle_index += 1;
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espread_trace::Movie;

    #[test]
    fn cyclic_udp_strategy_improves_delivery() {
        let base = PipelineConfig {
            cycles: 25,
            p_bad: 0.6,
            seed: 3,
            ..PipelineConfig::default()
        };
        let cyclic = PipelineConfig {
            strategy: SendStrategy::CyclicUdp { max_rounds: 4 },
            ..base.clone()
        };
        let trace = MpegTrace::new(Movie::JurassicPark, 3);
        let single = Pipeline::new(trace.clone(), &base, BFrameOrdering::Cpo { burst: 4 }).run();
        let resent = Pipeline::new(trace, &cyclic, BFrameOrdering::Cpo { burst: 4 }).run();
        assert!(resent.summary().mean_alf <= single.summary().mean_alf);
    }

    #[test]
    fn pipeline_streams_all_cycles() {
        let config = PipelineConfig {
            cycles: 10,
            ..PipelineConfig::default()
        };
        let trace = MpegTrace::new(Movie::JurassicPark, 3);
        let series = Pipeline::new(trace, &config, BFrameOrdering::Ibo).run();
        assert_eq!(series.len(), 10);
    }

    #[test]
    fn lossless_pipeline_is_clean() {
        let config = PipelineConfig {
            p_good: 1.0,
            p_bad: 0.0,
            cycles: 5,
            ..PipelineConfig::default()
        };
        let trace = MpegTrace::new(Movie::JurassicPark, 3);
        let series = Pipeline::new(trace, &config, BFrameOrdering::Cpo { burst: 4 }).run();
        assert_eq!(series.summary().mean_clf, 0.0);
    }

    #[test]
    fn interleaved_plugins_beat_in_order_and_track_each_other() {
        // §4.4: against the single-burst adversary CPO provably dominates
        // IBO at every burst size (see `ordering::tests`). On a stochastic
        // multi-burst Gilbert channel the two interleavers are
        // statistically equivalent; what matters is that both crush the
        // unscrambled order and CPO is never meaningfully worse than IBO.
        let run = |ordering: BFrameOrdering| {
            let mut total = 0.0;
            for seed in 0..10 {
                let config = PipelineConfig {
                    cycles: 30,
                    p_bad: 0.7,
                    seed,
                    ..PipelineConfig::default()
                };
                let trace = MpegTrace::new(Movie::JurassicPark, 3);
                total += Pipeline::new(trace, &config, ordering)
                    .run()
                    .summary()
                    .mean_clf;
            }
            total / 10.0
        };
        let in_order = run(BFrameOrdering::InOrder);
        let ibo = run(BFrameOrdering::Ibo);
        let cpo = run(BFrameOrdering::Cpo { burst: 4 });
        assert!(cpo < in_order, "CPO {cpo} must beat in-order {in_order}");
        assert!(ibo < in_order, "IBO {ibo} must beat in-order {in_order}");
        assert!(
            cpo <= ibo * 1.15,
            "CPO {cpo} must not be meaningfully worse than IBO {ibo}"
        );
    }
}
