//! Property tests for the retry timer wheel: under arbitrary time-step
//! interleavings, sessions' timers fire exactly along their
//! [`RetryPolicy::backoff`] schedules, within-sweep firing is
//! deadline-ordered, and cancelled timers (acked windows, bumped
//! generations) never survive the driver's generation filter.
//!
//! The harness replays exactly what a shard event loop does: one live
//! timer per session, re-armed with a bumped generation on every fire,
//! stale generations discarded.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use espread_net::{RetryPolicy, TimerWheel};
use proptest::prelude::*;

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// One session's simulated retry exchange.
struct SessionSim {
    policy: RetryPolicy,
    attempt: u32,
    gen: u64,
    deadline: Instant,
    /// Backoffs actually applied, in firing order.
    observed: Vec<Duration>,
    done: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Several sessions with different retry policies arm, fire, and
    /// re-arm concurrently while the clock advances in arbitrary steps.
    /// Every fresh-generation fire must match the session's *expected*
    /// deadline, the backoffs observed must be exactly the policy's
    /// schedule, and each sweep must fire in deadline order.
    #[test]
    fn firing_order_matches_retry_backoff_schedules(
        sessions in proptest::collection::vec(
            (2u32..5, 1u64..20, 1u64..40, 0u64..30),
            1..5,
        ),
        steps in proptest::collection::vec(1u64..25, 1..40),
    ) {
        let t0 = Instant::now();
        // A small wheel on purpose: laps and slot collisions are the
        // interesting regime.
        let mut wheel = TimerWheel::new(t0, ms(1), 16);
        let mut sims: HashMap<u32, SessionSim> = HashMap::new();
        for (i, &(attempts, base, max, offset)) in sessions.iter().enumerate() {
            let policy = RetryPolicy {
                max_attempts: attempts,
                base: ms(base),
                max: ms(max.max(base)),
            };
            let deadline = t0 + ms(offset) + policy.backoff(0);
            let conn = i as u32;
            wheel.schedule(conn, 1, deadline);
            sims.insert(conn, SessionSim {
                policy,
                attempt: 0,
                gen: 1,
                deadline,
                observed: vec![policy.backoff(0)],
                done: false,
            });
        }
        let mut now = t0;
        let mut pending_steps = steps.clone();
        // Extra huge steps drain the tail: each fire can re-arm, so the
        // deepest schedule needs one more sweep per remaining attempt.
        let max_attempts = sessions.iter().map(|s| s.0).max().unwrap_or(0);
        pending_steps.extend(std::iter::repeat(10_000).take(max_attempts as usize + 1));
        for step in pending_steps {
            now += ms(step);
            let fired = wheel.advance(now);
            // Within one sweep, deadlines are nondecreasing.
            let mut last_deadline: Option<Instant> = None;
            for f in &fired {
                let sim = sims.get_mut(&f.conn).expect("known conn");
                if f.gen != sim.gen {
                    // Stale generation: a timer superseded by a re-arm.
                    // The driver filter drops it; nothing may change.
                    continue;
                }
                prop_assert!(!sim.done, "a finished session's timer fired");
                prop_assert!(
                    sim.deadline <= now,
                    "fired before its deadline was due"
                );
                if let Some(prev) = last_deadline {
                    prop_assert!(
                        prev <= sim.deadline,
                        "sweep fired out of deadline order"
                    );
                }
                last_deadline = Some(sim.deadline);
                // Re-arm exactly as the shard does: next backoff from
                // the sweep's clock, generation bumped.
                if sim.attempt + 1 < sim.policy.max_attempts {
                    sim.attempt += 1;
                    sim.gen += 1;
                    let backoff = sim.policy.backoff(sim.attempt);
                    sim.deadline = now + backoff;
                    sim.observed.push(backoff);
                    wheel.schedule(f.conn, sim.gen, sim.deadline);
                } else {
                    sim.done = true;
                }
            }
        }
        for (conn, sim) in &sims {
            prop_assert!(sim.done, "session {conn} never exhausted its schedule");
            let expected: Vec<Duration> = (0..sim.policy.max_attempts)
                .map(|a| sim.policy.backoff(a))
                .collect();
            prop_assert_eq!(
                &sim.observed,
                &expected,
                "session {} backoffs diverged from RetryPolicy::backoff",
                conn
            );
        }
        prop_assert!(wheel.is_empty(), "drained wheel still holds entries");
    }

    /// Arm one timer per session, cancel an arbitrary subset (generation
    /// bump — an acked window), sweep far past every deadline: every
    /// cancelled timer is filtered out, every live one fires exactly once.
    #[test]
    fn cancelled_timers_never_fire(
        timers in proptest::collection::vec((0u64..200, any::<bool>()), 1..60),
        sweep_step in 1u64..50,
    ) {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, ms(1), 8);
        let mut live_gen: HashMap<u32, u64> = HashMap::new();
        for (i, &(offset, cancelled)) in timers.iter().enumerate() {
            let conn = i as u32;
            wheel.schedule(conn, 1, t0 + ms(offset));
            // Cancelling is just bumping the session's live generation;
            // the wheel entry stays behind but comes back stale.
            live_gen.insert(conn, if cancelled { 2 } else { 1 });
        }
        let mut fired_live: HashMap<u32, u32> = HashMap::new();
        let mut now = t0;
        while now < t0 + ms(300) {
            now += ms(sweep_step);
            for f in wheel.advance(now) {
                if f.gen == live_gen[&f.conn] {
                    *fired_live.entry(f.conn).or_insert(0) += 1;
                }
            }
        }
        for (i, &(_, cancelled)) in timers.iter().enumerate() {
            let conn = i as u32;
            let count = fired_live.get(&conn).copied().unwrap_or(0);
            if cancelled {
                prop_assert_eq!(count, 0, "cancelled timer {} fired", conn);
            } else {
                prop_assert_eq!(count, 1, "live timer {} fired {} times", conn, count);
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Deadlines many laps past one wheel horizon (slots × tick) still
    /// fire exactly once and never early: the wheel must carry lap
    /// counts, not just slot positions. An 8-slot, 1 ms wheel has an
    /// 8 ms horizon; offsets up to 400 ms are dozens of laps out — the
    /// watchdog's regime, whose deadlines dwarf the wheel period.
    #[test]
    fn multi_lap_deadlines_fire_exactly_once_and_never_early(
        offsets in proptest::collection::vec(0u64..400, 1..40),
        sweep_step in 1u64..64,
    ) {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, ms(1), 8);
        for (i, &offset) in offsets.iter().enumerate() {
            wheel.schedule(i as u32, 1, t0 + ms(offset));
        }
        let mut fired: HashMap<u32, u32> = HashMap::new();
        let mut now = t0;
        while now <= t0 + ms(500) {
            now += ms(sweep_step);
            for f in wheel.advance(now) {
                let deadline = t0 + ms(offsets[f.conn as usize]);
                prop_assert!(
                    deadline <= now,
                    "conn {} fired a lap early ({}ms before its deadline)",
                    f.conn,
                    deadline.saturating_duration_since(now).as_millis()
                );
                *fired.entry(f.conn).or_insert(0) += 1;
            }
        }
        for i in 0..offsets.len() {
            let count = fired.get(&(i as u32)).copied().unwrap_or(0);
            prop_assert_eq!(count, 1, "conn {} fired {} times", i, count);
        }
        prop_assert!(wheel.is_empty());
    }

    /// The watchdog cycle: a conn's timer fires, the session re-arms the
    /// same conn with a bumped generation and a fresh deadline, round
    /// after round. Every round's live generation must fire exactly once
    /// at (or after) its own deadline, stale generations from earlier
    /// rounds must always be filtered, and the chain must never stall.
    #[test]
    fn rearming_after_a_watchdog_fire_keeps_one_live_timer(
        rounds in 1usize..8,
        period in 1u64..30,
        sweep_step in 1u64..20,
    ) {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, ms(1), 8);
        let conn = 7u32;
        let mut gen = 1u64;
        let mut deadline = t0 + ms(period);
        wheel.schedule(conn, gen, deadline);
        let mut completed = 0usize;
        let mut now = t0;
        while completed < rounds && now < t0 + ms(2_000) {
            now += ms(sweep_step);
            for f in wheel.advance(now) {
                prop_assert_eq!(f.conn, conn, "an unknown conn fired");
                if f.gen != gen {
                    // A superseded generation from an earlier round; the
                    // driver filter drops it.
                    continue;
                }
                prop_assert!(
                    deadline <= now,
                    "round {} fired before its deadline",
                    completed
                );
                completed += 1;
                if completed < rounds {
                    // The session saw progress: re-arm, bumped generation.
                    gen += 1;
                    deadline = now + ms(period);
                    wheel.schedule(conn, gen, deadline);
                }
            }
        }
        prop_assert_eq!(completed, rounds, "the watchdog re-arm chain stalled");
        prop_assert!(wheel.is_empty(), "drained wheel still holds entries");
    }
}
