//! Minimal, deterministic, offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the real API this workspace uses: the
//! [`proptest!`] test macro, assertion/assumption macros, [`prop_oneof!`],
//! the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! `prop_flat_map`, `prop_shuffle` and `prop_filter`, `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::Index`, and
//! [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case prints the generated inputs and the
//!   case seed; re-running reproduces it exactly.
//! * **Deterministic seeding.** Each case's seed is derived from the test
//!   name and case index — no OS entropy, no persistence files.
//! * **Default case count is 64** (override with the `PROPTEST_CASES`
//!   environment variable or `ProptestConfig::with_cases`).

pub mod arbitrary;
pub mod collection;
mod macros;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-style access (`prop::collection::vec`, `prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}
