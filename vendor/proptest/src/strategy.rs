//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest, strategies here are plain generators — there
/// is no value tree and no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Shuffles the generated collection uniformly.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }

    /// Rejects generated values failing `f` (retrying a bounded number of
    /// times, then panicking — mirroring proptest's rejection semantics).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        rng.shuffle(&mut v);
        v
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Uniform choice between boxed alternative strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates an empty union; populate with [`Union::with`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one alternative.
    pub fn with(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.arms.push(Box::new(strategy));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u128 + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + (end - start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident $idx:tt),+);)+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
