//! Finite partially ordered sets for modelling inter-frame dependency.
//!
//! Section 3 of the ICDCS 2000 error-spreading paper models a dependent CM
//! stream (e.g. MPEG video) as a **poset** of frames: `x < y` here means
//! *y depends on x* (x is a prerequisite of y), so minimal elements are the
//! frames that depend on nothing (MPEG I-frames). The paper then uses three
//! classical facts this crate implements:
//!
//! * the **permutable sets** of a dependent stream are exactly the
//!   **antichains** of its poset;
//! * a valid transmission order is a **linear extension** (topological sort)
//!   with prerequisites first;
//! * a minimal **antichain decomposition** has size equal to the longest
//!   chain (Mirsky's theorem), and for *ranked* posets it is given by the
//!   rank (height) function — these are the **layers** of the Layered
//!   Permutation Transmission Order.
//!
//! # Example
//!
//! A chain with a tail: `0 < 1 < 2`, `0 < 3`.
//!
//! ```
//! use espread_poset::Poset;
//!
//! let mut builder = Poset::builder(4);
//! builder.add_relation(0, 1)?;
//! builder.add_relation(1, 2)?;
//! builder.add_relation(0, 3)?;
//! let poset = builder.build()?;
//!
//! assert!(poset.less_than(0, 2));          // transitivity
//! assert!(poset.incomparable(2, 3));
//! assert_eq!(poset.height(), 3);           // longest chain 0 < 1 < 2
//! let layers = poset.mirsky_decomposition();
//! assert_eq!(layers.len(), 3);             // = height (Mirsky)
//! assert_eq!(layers[0], vec![0]);          // minimal elements first
//! assert_eq!(layers[1], vec![1, 3]);
//! # Ok::<(), espread_poset::PosetBuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antichain;
pub mod builder;
pub mod chains;
pub mod linext;
pub mod poset;
pub mod width;

pub use builder::{PosetBuildError, PosetBuilder};
pub use poset::Poset;
pub use width::DilworthDecomposition;
