//! Extension — the multi-burst adversary.
//!
//! The paper's *BERP* problem bounds a **single** burst per window; real
//! channels deliver several. This experiment extends the adversarial
//! analysis to `r` disjoint bursts of `b` slots each (exact search) and
//! shows (a) the spread orders still dominate the identity and IBO, and
//! (b) how much of the single-burst guarantee survives burst
//! multiplicity.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin extension_multi_burst
//! ```

use espread_core::{
    burst::{multi_burst_lower_bound, worst_case_clf_multi},
    calculate_permutation,
    ibo::inverse_binary_order,
    Permutation,
};

fn main() {
    let n = 24;
    println!("Multi-burst adversary on a window of n = {n} (exact search)\n");
    println!(
        "{:>3} {:>3} {:>7} {:>9} {:>6} {:>6} {:>7}",
        "b", "r", "bound", "identity", "IBO", "CPO", "single"
    );
    for b in [2usize, 3, 4] {
        for r in [1usize, 2, 3] {
            let id = Permutation::identity(n);
            let ibo = inverse_binary_order(n);
            let cpo = calculate_permutation(n, b);
            let id_clf = worst_case_clf_multi(&id, b, r);
            let ibo_clf = worst_case_clf_multi(&ibo, b, r);
            let cpo_clf = worst_case_clf_multi(&cpo.permutation, b, r);
            println!(
                "{b:>3} {r:>3} {:>7} {id_clf:>9} {ibo_clf:>6} {cpo_clf:>6} {:>7}",
                multi_burst_lower_bound(n, b, r),
                cpo.worst_clf,
            );
            assert!(cpo_clf <= id_clf, "spread must not lose to identity");
        }
    }
    println!("\nreading: the identity degrades linearly (r·b merged into one run). The");
    println!("single-burst-optimal CPO matches or beats IBO up to r = 2, but at r = 3");
    println!("an adversary can make the stride structure's bursts *cooperate* (three");
    println!("aligned progressions fuse into one long run), where IBO's hierarchical");
    println!("bit-reversal degrades gracefully. This is exactly why (a) the protocol");
    println!("re-estimates b̂ from *observed* per-window bursts instead of trusting the");
    println!("single-burst theory, and (b) calculate_permutation tie-breaks by");
    println!("multi-scale robustness: the single-burst model under-constrains the");
    println!("stochastic channel. A worthwhile future-work axis the paper leaves open.");

    espread_bench::write_telemetry_snapshot("extension_multi_burst");
}
