//! Extension — ranking transmission orders under the *stochastic* channel.
//!
//! The paper's optimality claim is adversarial (single worst-case burst);
//! the evaluation channel is stochastic (a Gilbert process producing many
//! bursts of geometric length). This experiment ranks a spectrum of
//! orders by **expected** per-window CLF under the actual Fig. 7 process,
//! exposing where the two rankings agree and where they diverge.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin extension_stochastic_orders -- --jobs 4
//! ```

use espread_bench::sweep;
use espread_core::{
    calculate_permutation,
    cpo::stride_permutation,
    ibo::inverse_binary_order,
    interleave::{block_interleaver, block_interleaver_reversed},
    monte_carlo_clf, rank_orders_by, worst_case_clf, Permutation,
};
use espread_exec::Json;

fn main() {
    let n = 24;
    let windows = 20_000;
    println!(
        "Expected per-window CLF under the Gilbert channel (n = {n}, Pgood = 0.92, \
         Pbad = 0.6, {windows} windows)\n"
    );

    let orders: Vec<(&str, Permutation)> = vec![
        ("identity", Permutation::identity(n)),
        ("stride 5", stride_permutation(n, 5)),
        ("stride 7", stride_permutation(n, 7)),
        ("block 4 rows", block_interleaver(n, 4)),
        ("rev block 8 rows", block_interleaver_reversed(n, 8)),
        ("IBO", inverse_binary_order(n)),
        (
            "calculatePermutation(b=3)",
            calculate_permutation(n, 3).permutation,
        ),
        (
            "calculatePermutation(b=6)",
            calculate_permutation(n, 6).permutation,
        ),
    ];

    // The 20 000-window Monte-Carlo per order is the hot loop; each order
    // is one executor cell. Channel seeds replicate the serial sweep:
    // order i (input order) drives a chain seeded with (i + 1) · 7919.
    let grid: Vec<Permutation> = orders.iter().map(|(_, p)| p.clone()).collect();
    let means = sweep::executor("extension_stochastic_orders").run(grid, |ctx, perm| {
        let mut chain = espread_netsim::GilbertModel::paper(0.6, (ctx.index() as u64 + 1) * 7919);
        let mut process = move || !chain.step_delivers();
        monte_carlo_clf(&perm, windows, &mut process).mean_clf
    });

    let ranking = rank_orders_by(&orders, |name, _| {
        let i = orders.iter().position(|(n2, _)| n2 == &name).unwrap();
        means[i]
    });

    println!("{:<28} {:>12} {:>18}", "order", "E[CLF]", "worst-case b=3");
    let mut rows = Vec::new();
    for (name, mean) in &ranking {
        let perm = &orders.iter().find(|(n2, _)| n2 == name).unwrap().1;
        let worst = worst_case_clf(perm, 3);
        println!("{name:<28} {mean:>12.3} {worst:>18}");
        let mut row = Json::object();
        row.push("order", *name)
            .push("expected_clf", *mean)
            .push("worst_case_clf_b3", worst);
        rows.push(row);
    }

    let identity_mean = ranking
        .iter()
        .find(|(name, _)| *name == "identity")
        .map(|(_, m)| *m)
        .unwrap();
    assert_eq!(
        ranking.last().unwrap().1,
        identity_mean,
        "identity must rank last"
    );
    println!("\nreading: every interleaver roughly halves the expected CLF of the naive");
    println!("order; differences *among* interleavers are small under the stochastic");
    println!("process even where their adversarial guarantees differ — the worst-case");
    println!("theory picks the family, the channel statistics blur the order within it.");

    sweep::write_results(
        "extension_stochastic_orders",
        &sweep::results_doc("extension_stochastic_orders", rows),
    );
    espread_bench::write_telemetry_snapshot("extension_stochastic_orders");
}
