//! End-to-end streaming sessions over the simulated network.
//!
//! A [`Session`] wires a [`crate::server::Server`], a per-window
//! client, and a [`DuplexChannel`] together and executes the §4.2 protocol
//! window by window:
//!
//! 1. at each window start the server folds in the freshest ACK and plans
//!    the window (layered, permuted per current estimates);
//! 2. the **critical phase** sends anchor-layer packets; with
//!    [`Recovery::Retransmit`] the client NACKs missing critical frames
//!    one propagation later and the server retransmits while the buffer
//!    cycle allows;
//! 3. the remaining layers are sent, **dropping frames from the schedule
//!    tail** that cannot depart before the cycle ends (CMT-style
//!    prioritised frame dropping);
//! 4. at window end the client applies FEC recovery, derives the playout
//!    loss pattern and its [`ContinuityMetrics`], and ACKs per-layer burst
//!    observations (sequence-numbered; out-of-order ACKs are ignored).
//!
//! Both directions ride lossy links; the same seed reproduces the same
//! loss realisation, so schemes can be compared on identical channels.

use espread_netsim::{
    DropTailQueue, DuplexChannel, GilbertModel, Link, LossProcess, SimDuration, SimTime,
};
use espread_qos::{ContinuityMetrics, LossPattern, WindowSeries, WindowSummary};

use crate::client::{ClientWindow, DataPayload};
use crate::config::{LossModel, ProtocolConfig, Recovery};
use crate::fec::FecEncoder;
use crate::feedback::FeedbackMsg;
use crate::layers::ScheduledFrame;
use crate::packetize::Fragment;
use crate::server::Server;
use crate::source::StreamSource;
use crate::timing::{TimingAccumulator, TimingStats};

/// Wire size of a feedback (ACK/NACK) packet in bytes.
const FEEDBACK_BYTES: u32 = 64;

/// Result of one streaming session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Per-window continuity metrics, in window order.
    pub series: WindowSeries,
    /// Data packets offered / lost on the forward link.
    pub packets_offered: u64,
    /// Data packets lost on the forward link.
    pub packets_lost: u64,
    /// Frames retransmitted (critical recovery).
    pub retransmissions: u64,
    /// Fragments repaired by FEC.
    pub fec_recovered: u64,
    /// Frames dropped at the sender for lack of cycle time.
    pub dropped_frames: u64,
    /// Per-window per-layer raw burst estimates (before rounding).
    pub estimate_history: Vec<Vec<f64>>,
    /// Total bytes offered to the forward link (payload + headers).
    pub bytes_offered: u64,
    /// Per-frame delivery timing (latency, jitter, lateness).
    pub timing: TimingStats,
    /// The playout-order loss pattern of every window (for downstream
    /// analyses such as concealment modelling).
    pub patterns: Vec<LossPattern>,
    /// Critical (anchor) frames lost after all recovery, across the run.
    pub critical_lost: u64,
    /// Critical (anchor) frames streamed, across the run.
    pub critical_total: u64,
}

impl SessionReport {
    /// Summary statistics of the CLF series (the numbers Fig. 8 reports).
    pub fn summary(&self) -> WindowSummary {
        self.series.summary()
    }

    /// Observed forward-path packet loss fraction.
    pub fn packet_loss_rate(&self) -> f64 {
        if self.packets_offered == 0 {
            0.0
        } else {
            self.packets_lost as f64 / self.packets_offered as f64
        }
    }

    /// Residual loss rate of the critical (anchor) frames — the quantity
    /// retransmission / critical FEC exists to suppress (a lost anchor
    /// cascades into its whole dependent subtree).
    pub fn critical_loss_rate(&self) -> f64 {
        if self.critical_total == 0 {
            0.0
        } else {
            self.critical_lost as f64 / self.critical_total as f64
        }
    }
}

/// One end-to-end streaming session.
#[derive(Debug)]
pub struct Session {
    config: ProtocolConfig,
    source: StreamSource,
    telem: crate::telem::SessionTelem,
}

impl Session {
    /// Creates a session.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ProtocolConfig::validate`].
    pub fn new(config: ProtocolConfig, source: StreamSource) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid protocol configuration: {e}");
        }
        Session {
            config,
            source,
            telem: crate::telem::SessionTelem::default_global(),
        }
    }

    /// Routes this session's telemetry (phase spans, per-window ALF/CLF
    /// gauges, adaptation events) to `registry` instead of the process
    /// global — used by tests to observe one session in isolation.
    #[cfg(feature = "telemetry")]
    pub fn with_telemetry(mut self, registry: espread_telemetry::Registry) -> Self {
        self.telem = crate::telem::SessionTelem::new(registry);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Runs the whole stream and reports per-window metrics.
    pub fn run(&self) -> SessionReport {
        let cfg = &self.config;
        let prop = SimDuration::from_micros(cfg.rtt.as_micros() / 2);
        let forward_loss: LossProcess = match cfg.loss_model {
            LossModel::Gilbert => GilbertModel::new(cfg.p_good, cfg.p_bad, cfg.seed).into(),
            LossModel::DropTail(dt) => DropTailQueue::new(dt, cfg.seed).into(),
        };
        let mut channel: DuplexChannel<DataPayload, FeedbackMsg> = DuplexChannel::new(
            Link::new(cfg.bandwidth_bps, prop, forward_loss)
                .with_jitter(cfg.jitter, cfg.seed ^ 0x0071_7E12),
            Link::new(
                cfg.feedback_bandwidth_bps,
                prop,
                // Independent loss process for the feedback path.
                GilbertModel::new(cfg.p_good, cfg.p_bad, cfg.seed ^ 0x5EED_FEED),
            )
            .with_jitter(cfg.jitter, cfg.seed ^ 0x0071_7E13),
        );

        let mut server = Server::new(cfg, &self.source.poset);
        let n = self.source.frames_per_window();
        let cycle = SimDuration::from_micros(n as u64 * 1_000_000 / u64::from(cfg.fps));

        let mut series = WindowSeries::new();
        let mut patterns = Vec::with_capacity(self.source.window_count());
        let mut retransmissions = 0u64;
        let mut fec_recovered = 0u64;
        let mut dropped_frames = 0u64;
        let mut estimate_history = Vec::with_capacity(self.source.window_count());
        let mut timing = TimingAccumulator::new();
        let frame_duration = SimDuration::from_micros(1_000_000 / u64::from(cfg.fps));
        let mut critical_lost = 0u64;
        let mut critical_total = 0u64;

        for (w, ldus) in self.source.windows.iter().enumerate() {
            let w = w as u64;
            let window_start = SimTime::ZERO + SimDuration::from_micros(cycle.as_micros() * w);
            let window_end = window_start + cycle;

            // 1. Server reads feedback that has arrived by now.
            {
                let _span = self.telem.span("protocol.session.feedback_ns");
                for d in channel.poll_acks(window_start) {
                    if let FeedbackMsg::WindowAck(fb) = d.packet.payload {
                        server.offer_ack(d.packet.seq, fb);
                    }
                }
            }
            let plan = {
                let _span = self.telem.span("protocol.session.plan_ns");
                server.plan_window(&self.source.poset)
            };
            if let Some(record) = server.take_last_adaptation() {
                self.telem.adaptation(w, &record);
                // Project the observed bursts through the freshly planned
                // orders: the worst CLF the new plan would admit if each
                // layer's reported burst recurred at the least favourable
                // slot. Observed bursts can exceed a (shrunken) layer or
                // straddle the window boundary, hence the truncating
                // projection.
                let worst = plan
                    .layers
                    .iter()
                    .zip(&record.observed_bursts)
                    .filter(|&(_, &b)| b > 0)
                    .filter_map(|(layer, &b)| {
                        (0..layer.order.len())
                            .filter_map(|start| layer.projected_clf(start, b))
                            .max()
                    })
                    .max();
                if let Some(clf) = worst {
                    self.telem.projected_clf(clf);
                }
            }
            estimate_history.push(server.raw_estimates());

            let mut client = ClientWindow::new(
                w,
                ldus,
                &plan.layer_sizes(),
                plan.critical_frames(),
                cfg.packet_bytes,
            );

            let (mut fec, fec_critical_only) = match cfg.recovery {
                Recovery::Fec { group } => (Some(FecEncoder::new(w, group)), false),
                Recovery::FecCritical { group } => (Some(FecEncoder::new(w, group)), true),
                _ => (None, false),
            };

            // Sends every fragment of one scheduled frame; returns false
            // (and counts a drop) when the frame cannot depart in time.
            let mut send_frame = |channel: &mut DuplexChannel<DataPayload, FeedbackMsg>,
                                  sf: &ScheduledFrame,
                                  retransmit: bool,
                                  fec_protect: bool,
                                  offer_at: SimTime,
                                  dropped: &mut u64|
             -> bool {
                let ldu = ldus[sf.frame];
                let frags = ldu.fragment_count(cfg.packet_bytes);
                // Project the whole frame's departure (all fragments plus
                // their headers) before committing any of it.
                let total_wire = ldu.size_bytes + u32::from(frags) * cfg.header_bytes;
                let projected = channel.earliest_data_departure(offer_at, total_wire);
                if projected > window_end {
                    if !retransmit {
                        *dropped += 1;
                    }
                    return false;
                }
                for frag in 0..frags {
                    let payload_bytes = ldu.fragment_size(cfg.packet_bytes, frag);
                    let fragment = Fragment {
                        window: w,
                        frame: sf.frame,
                        frag,
                        frags_total: frags,
                        layer: sf.layer,
                        layer_slot: sf.layer_slot,
                        retransmit,
                    };
                    channel.send_data(
                        offer_at,
                        payload_bytes + cfg.header_bytes,
                        DataPayload::Fragment(fragment),
                    );
                    if let Some(enc) = fec.as_mut().filter(|_| fec_protect) {
                        if let Some(parity) = enc.push(&fragment, payload_bytes) {
                            channel.send_data(
                                offer_at,
                                parity.size_bytes + cfg.header_bytes,
                                DataPayload::Parity(parity),
                            );
                        }
                    }
                }
                true
            };

            // 2. Critical phase.
            let send_span = self.telem.span("protocol.session.send_ns");
            let (critical, rest) = plan.schedule.split_at(plan.critical_prefix);
            for sf in critical {
                let _ = send_frame(
                    &mut channel,
                    sf,
                    false,
                    true,
                    window_start,
                    &mut dropped_frames,
                );
            }
            let critical_done = channel.forward().busy_until().max(window_start);
            let client_sees_critical = critical_done + prop;

            // Deliver the critical phase to the client.
            for d in channel.poll_data(client_sees_critical) {
                client.accept(d.arrived_at, &d.packet.payload);
            }

            // 3. Retransmission round (reactive recovery).
            let mut resume_at = critical_done;
            if cfg.recovery == Recovery::Retransmit {
                let missing = client.missing_critical();
                if !missing.is_empty() {
                    channel.send_ack(
                        client_sees_critical,
                        FEEDBACK_BYTES,
                        FeedbackMsg::CriticalNack {
                            window: w,
                            missing: missing.clone(),
                        },
                    );
                    // The server acts on the NACK when it arrives (if it
                    // survives the reverse path). Window ACKs drained in
                    // the same poll are fed to the estimator as usual.
                    let nack_deliveries = channel.poll_acks(window_end);
                    let mut nacked: Vec<usize> = Vec::new();
                    let mut nack_seen_at = client_sees_critical;
                    for d in nack_deliveries {
                        match d.packet.payload {
                            FeedbackMsg::CriticalNack { window, missing } if window == w => {
                                nacked = missing;
                                nack_seen_at = d.arrived_at;
                            }
                            FeedbackMsg::CriticalNack { .. } => {}
                            FeedbackMsg::WindowAck(fb) => {
                                server.offer_ack(d.packet.seq, fb);
                            }
                        }
                    }
                    resume_at = resume_at.max(nack_seen_at);
                    for frame in nacked {
                        let sf = plan
                            .schedule
                            .iter()
                            .find(|s| s.frame == frame)
                            .expect("critical frame is scheduled");
                        if send_frame(
                            &mut channel,
                            sf,
                            true,
                            false,
                            resume_at,
                            &mut dropped_frames,
                        ) {
                            retransmissions += 1;
                            self.telem.on_retransmission();
                        }
                    }
                    resume_at = channel.forward().busy_until().max(resume_at);
                }
            }

            // 4. Non-critical phase, tail-dropped on deadline.
            for sf in rest {
                let _ = send_frame(
                    &mut channel,
                    sf,
                    false,
                    !fec_critical_only,
                    resume_at,
                    &mut dropped_frames,
                );
            }
            if let Some(mut enc) = fec.take() {
                if let Some(parity) = enc.flush() {
                    // Best effort: the trailing parity ships if it fits.
                    if channel
                        .earliest_data_departure(resume_at, parity.size_bytes + cfg.header_bytes)
                        <= window_end
                    {
                        channel.send_data(
                            resume_at,
                            parity.size_bytes + cfg.header_bytes,
                            DataPayload::Parity(parity),
                        );
                    }
                }
            }
            drop(send_span);

            // 5. Window close: deliver everything sent this cycle.
            let deadline = window_end + prop;
            for d in channel.poll_data(deadline) {
                client.accept(d.arrived_at, &d.packet.payload);
            }
            let outcome = client.finalize(deadline);
            fec_recovered += outcome.fec_recovered as u64;
            timing.record_window(window_start, cycle, frame_duration, &outcome.completions);
            for &f in &plan.critical_frames() {
                critical_total += 1;
                critical_lost += u64::from(outcome.pattern.is_lost(f));
            }
            let metrics = ContinuityMetrics::of(&outcome.pattern);
            self.telem
                .window_metrics(w, metrics.lost(), metrics.window_len(), metrics.clf());
            series.push(metrics);
            patterns.push(outcome.pattern.clone());
            channel.send_ack(
                deadline,
                FEEDBACK_BYTES,
                FeedbackMsg::WindowAck(outcome.feedback),
            );
        }

        let fstats = channel.forward().stats();
        SessionReport {
            series,
            packets_offered: fstats.offered,
            packets_lost: fstats.lost,
            retransmissions,
            fec_recovered,
            dropped_frames,
            estimate_history,
            bytes_offered: fstats.bytes_offered,
            timing: timing.stats(),
            patterns,
            critical_lost,
            critical_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ordering;
    use espread_trace::{AudioStream, Movie, MpegTrace};

    fn mpeg_source(seed: u64) -> StreamSource {
        let trace = MpegTrace::new(Movie::JurassicPark, seed);
        StreamSource::mpeg(&trace, 2, 20, false)
    }

    #[test]
    fn lossless_channel_delivers_everything() {
        let mut cfg = ProtocolConfig::paper(0.0, 1);
        cfg.p_good = 1.0;
        cfg.p_bad = 0.0;
        let report = Session::new(cfg, mpeg_source(1)).run();
        assert_eq!(report.summary().mean_clf, 0.0);
        assert_eq!(report.packets_lost, 0);
        assert_eq!(report.dropped_frames, 0);
        assert_eq!(report.series.len(), 20);
    }

    #[test]
    fn lossy_channel_produces_losses_and_feedback_adapts() {
        let cfg = ProtocolConfig::paper(0.6, 7);
        let report = Session::new(cfg, mpeg_source(1)).run();
        assert!(report.packets_lost > 0);
        assert!(report.summary().mean_clf > 0.0);
        // Adaptation must have moved the B-layer estimate off its prior.
        let first = report.estimate_history.first().unwrap();
        let last = report.estimate_history.last().unwrap();
        assert_ne!(first, last);
    }

    #[test]
    fn same_seed_same_report() {
        let run = || {
            Session::new(ProtocolConfig::paper(0.6, 33), mpeg_source(5))
                .run()
                .series
                .clf_values()
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spread_beats_in_order_on_mean_clf() {
        // The paper's core claim, on a common channel realisation.
        let mut spread_mean = 0.0;
        let mut inorder_mean = 0.0;
        for seed in [11u64, 22, 33, 44, 55] {
            let src = mpeg_source(2);
            let spread = Session::new(ProtocolConfig::paper(0.6, seed), src.clone()).run();
            let inorder = Session::new(
                ProtocolConfig::paper(0.6, seed).with_ordering(Ordering::InOrder),
                src,
            )
            .run();
            spread_mean += spread.summary().mean_clf;
            inorder_mean += inorder.summary().mean_clf;
        }
        assert!(
            spread_mean < inorder_mean,
            "spread {spread_mean} vs in-order {inorder_mean}"
        );
    }

    #[test]
    fn retransmission_reduces_critical_losses() {
        let src = mpeg_source(3);
        let none = Session::new(ProtocolConfig::paper(0.7, 9), src.clone()).run();
        let retx = Session::new(
            ProtocolConfig::paper(0.7, 9).with_recovery(Recovery::Retransmit),
            src,
        )
        .run();
        assert!(retx.retransmissions > 0);
        assert!(retx.summary().mean_alf <= none.summary().mean_alf);
    }

    #[test]
    fn fec_recovers_fragments() {
        let src = mpeg_source(4);
        let fec = Session::new(
            ProtocolConfig::paper(0.6, 13).with_recovery(Recovery::Fec { group: 4 }),
            src.clone(),
        )
        .run();
        let none = Session::new(ProtocolConfig::paper(0.6, 13), src).run();
        assert!(fec.fec_recovered > 0);
        assert!(fec.summary().mean_alf <= none.summary().mean_alf);
        // FEC costs bandwidth: more packets offered.
        assert!(fec.packets_offered > none.packets_offered);
    }

    #[test]
    fn retransmission_suppresses_anchor_loss_specifically() {
        let src = mpeg_source(3);
        let none = Session::new(ProtocolConfig::paper(0.7, 23), src.clone()).run();
        let retx = Session::new(
            ProtocolConfig::paper(0.7, 23).with_recovery(Recovery::Retransmit),
            src,
        )
        .run();
        assert!(none.critical_total > 0);
        assert!(
            retx.critical_loss_rate() < none.critical_loss_rate(),
            "retransmit {} !< none {}",
            retx.critical_loss_rate(),
            none.critical_loss_rate()
        );
    }

    #[test]
    fn critical_only_fec_cheaper_than_full_fec() {
        let src = mpeg_source(4);
        let full = Session::new(
            ProtocolConfig::paper(0.6, 13).with_recovery(Recovery::Fec { group: 4 }),
            src.clone(),
        )
        .run();
        let critical = Session::new(
            ProtocolConfig::paper(0.6, 13).with_recovery(Recovery::FecCritical { group: 4 }),
            src.clone(),
        )
        .run();
        let none = Session::new(ProtocolConfig::paper(0.6, 13), src).run();
        // Critical-only parity costs less bandwidth than full FEC but more
        // than none, and still repairs some critical fragments.
        assert!(critical.bytes_offered < full.bytes_offered);
        assert!(critical.bytes_offered > none.bytes_offered);
        assert!(critical.fec_recovered > 0);
    }

    #[test]
    fn low_bandwidth_drops_frames() {
        let cfg = ProtocolConfig::paper(0.0, 1).with_bandwidth(40_000);
        let report = Session::new(cfg, mpeg_source(6)).run();
        assert!(report.dropped_frames > 0);
        assert!(report.summary().mean_alf > 0.0);
    }

    #[test]
    fn heavy_jitter_tolerated() {
        // 40 ms of jitter (≫ the 23 ms RTT) reorders data and ACKs; the
        // sequence-numbered feedback keeps the session sane.
        let cfg = ProtocolConfig::paper(0.6, 19).with_jitter(SimDuration::from_millis(40));
        let report = Session::new(cfg, mpeg_source(2)).run();
        assert_eq!(report.series.len(), 20);
        for m in report.series.windows() {
            assert!(m.clf() <= m.window_len());
        }
        // Adaptation still happened.
        assert_ne!(
            report.estimate_history.first(),
            report.estimate_history.last()
        );
    }

    #[test]
    fn audio_stream_sessions_work() {
        let src = StreamSource::audio(AudioStream::sun_audio(), 30, 15);
        let report = Session::new(ProtocolConfig::paper(0.6, 21), src).run();
        assert_eq!(report.series.len(), 15);
        // Audio is one antichain layer: estimates history has width 1.
        assert_eq!(report.estimate_history[0].len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid protocol configuration")]
    fn invalid_config_rejected() {
        let mut cfg = ProtocolConfig::paper(0.6, 1);
        cfg.packet_bytes = 0;
        let _ = Session::new(cfg, mpeg_source(1));
    }
}
