//! The event-loop multi-session UDP server.
//!
//! One demux thread owns the socket's receive side: it answers
//! handshakes (idempotently — a duplicate `Hello` gets the cached reply,
//! from a TTL/LRU-bounded cache), assigns connection ids that are never
//! reused while live, and routes decoded control datagrams to a fixed
//! pool of worker event loops (see [`crate::shard`]) over channels —
//! shard = `conn_id % workers`. Sessions are `poll()`-able state objects
//! ([`crate::session`]), not threads: each shard drives hundreds of them
//! through per-shard timer wheels and a reusable encode buffer, and
//! reaps them from the connection table the moment they finish.
//! Malformed datagrams are counted and dropped, never trusted.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use espread_protocol::{
    negotiate, AgreedSession, ClientCapabilities, ProtocolConfig, SessionOffer, StreamSource,
};

use crate::error::NetError;
use crate::obsrec::SessionRecorder;
use crate::retry::RetryPolicy;
use crate::session::{SessionCore, SessionLimits};
use crate::shard::{Shard, ShardEvent};
use crate::telem::ServerTelem;
use crate::wire::{self, Accept, Msg, Reject, CONN_NONE};

/// How long a blocking socket wait may run before re-checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(5);

/// Effectively-zero read timeout used while draining a burst: the demux
/// takes one datagram under [`POLL`], then flips to this and keeps
/// reading until the queue is empty. A read *timeout* (not
/// `set_nonblocking`) so the shards' blocking sends on the shared socket
/// are never affected.
const DRAIN: Duration = Duration::from_micros(1);

/// Most datagrams handled per readiness wake, so a sustained flood
/// cannot starve the shutdown check or the reaped-id drain.
const DRAIN_BATCH: usize = 256;

/// Most worker shards `workers = 0` (auto) will pick.
const MAX_AUTO_WORKERS: usize = 8;

/// Everything the server needs to stream one source to many clients.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Protocol parameters (α, packet size, recovery…). The *ordering* is
    /// a per-session choice the client makes in its `Hello`.
    pub protocol: ProtocolConfig,
    /// The session offer clients negotiate against.
    pub offer: SessionOffer,
    /// The stream to serve.
    pub source: StreamSource,
    /// Retry schedule for control exchanges (window ACK, teardown).
    pub retry: RetryPolicy,
    /// Inter-datagram send pacing (keeps a burst of a whole window from
    /// overrunning loopback socket buffers).
    pub pace: Duration,
    /// Optional flight-recorder hook (see `espread-obs`); disabled by
    /// default. Events are recorded for every session this server runs.
    pub recorder: SessionRecorder,
    /// Worker event loops sharding the connection table. `0` picks a
    /// pool from the machine's parallelism (capped at 8). Session count
    /// is independent of this — each shard drives many sessions.
    pub workers: usize,
    /// How long a handshake verdict stays cached for duplicate-`Hello`
    /// idempotency before expiring.
    pub handshake_ttl: Duration,
    /// Most handshake verdicts cached at once; the oldest is evicted
    /// past this (LRU), so a nonce flood cannot grow memory unboundedly.
    pub handshake_cap: usize,
    /// Size of the demux's receive buffer — the largest datagram one
    /// read can take in (UDP truncates longer ones, which then count as
    /// decode errors). Defaults to 64 KiB, the wire's ceiling.
    pub recv_buffer_bytes: usize,
    /// Admission cap: most sessions live at once. A `Hello` arriving at
    /// capacity is answered with a typed [`Msg::Busy`] instead of a
    /// session. `0` (the default) disables admission control.
    pub max_sessions: usize,
    /// The retry-after hint carried in `Busy` refusals.
    pub busy_retry_after: Duration,
    /// Perception-ordered shedding: once a session's pacing debt reaches
    /// this lag, enhancement-layer frames are shed (never critical ones)
    /// until the session catches up. Zero (the default) disables it.
    pub shed_lag: Duration,
    /// Stale-retransmission cutoff: recovery rounds arriving this long
    /// after their window closed are counted and skipped instead of
    /// resent — the frames have already missed playout. Zero (the
    /// default) disables it.
    pub stale_retx_after: Duration,
    /// Stuck-session watchdog: a session making no progress (no datagram
    /// sent or received) for this long is terminated into a typed
    /// outcome and reaped. Zero (the default) disables it.
    pub watchdog: Duration,
}

impl NetServerConfig {
    /// A config with the LAN retry schedule, 50 µs pacing, an automatic
    /// worker pool, and a 30 s / 1024-entry handshake cache.
    pub fn new(protocol: ProtocolConfig, offer: SessionOffer, source: StreamSource) -> Self {
        NetServerConfig {
            protocol,
            offer,
            source,
            retry: RetryPolicy::lan(),
            pace: Duration::from_micros(50),
            recorder: SessionRecorder::disabled(),
            workers: 0,
            handshake_ttl: Duration::from_secs(30),
            handshake_cap: 1024,
            recv_buffer_bytes: 65_536,
            max_sessions: 0,
            busy_retry_after: Duration::from_millis(250),
            shed_lag: Duration::ZERO,
            stale_retx_after: Duration::ZERO,
            watchdog: Duration::ZERO,
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        self.protocol.validate().map_err(NetError::Config)?;
        self.retry.validate().map_err(NetError::Config)?;
        self.offer
            .validate()
            .map_err(|e| NetError::Config(e.to_string()))?;
        if self.offer.frames_per_window() != self.source.frames_per_window() {
            return Err(NetError::Config(format!(
                "offer advertises {} frames per window but the source has {}",
                self.offer.frames_per_window(),
                self.source.frames_per_window()
            )));
        }
        if self.offer.fps != self.source.fps {
            return Err(NetError::Config("offer and source disagree on fps".into()));
        }
        // The Accept's frames/window field and the Data frame index are
        // both u16 on the wire (see the wire-limits table in `wire`).
        if self.offer.frames_per_window() > usize::from(u16::MAX) {
            return Err(NetError::Config(format!(
                "window of {} frames exceeds the wire's {} maximum",
                self.offer.frames_per_window(),
                u16::MAX
            )));
        }
        if self.offer.packet_bytes > u32::from(u16::MAX) {
            return Err(NetError::Config(
                "packet size exceeds the wire's 64 KiB payload field".into(),
            ));
        }
        if u32::try_from(self.source.window_count()).is_err() {
            return Err(NetError::Config("too many windows for the wire".into()));
        }
        if self.handshake_cap == 0 {
            return Err(NetError::Config(
                "handshake cache needs at least one slot for idempotent replies".into(),
            ));
        }
        if self.handshake_ttl.is_zero() {
            return Err(NetError::Config(
                "handshake cache TTL must be positive".into(),
            ));
        }
        if self.recv_buffer_bytes < 1500 {
            return Err(NetError::Config(
                "receive buffer below one MTU would truncate every datagram".into(),
            ));
        }
        if self.max_sessions != 0 {
            if self.busy_retry_after.is_zero() {
                return Err(NetError::Config(
                    "busy retry-after must be positive when admission control is on".into(),
                ));
            }
            if u32::try_from(self.busy_retry_after.as_millis()).is_err() {
                return Err(NetError::Config(
                    "busy retry-after exceeds the wire's u32 millisecond field".into(),
                ));
            }
        }
        Ok(())
    }

    fn worker_count(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, MAX_AUTO_WORKERS)
    }
}

/// A running server; dropping (or [`NetServer::shutdown`]) stops the
/// demux and shard threads and joins them all.
#[derive(Debug)]
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    demux: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Configuration inconsistencies and socket errors.
    pub fn bind(addr: impl ToSocketAddrs, config: NetServerConfig) -> Result<Self, NetError> {
        config.validate()?;
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(POLL))?;
        let local_addr = socket.local_addr()?;
        let socket = Arc::new(socket);
        let shutdown = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let telem = ServerTelem::default_global();
        let workers = config.worker_count();
        let (reaped_tx, reaped_rx) = mpsc::channel();
        let mut shards = Vec::with_capacity(workers);
        let mut shard_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel();
            let shard = Shard {
                rx,
                socket: Arc::clone(&socket),
                shutdown: Arc::clone(&shutdown),
                reaped: reaped_tx.clone(),
                live_gauge: Arc::clone(&live),
                telem: telem.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("espread-net-shard-{i}"))
                .spawn(move || shard.run())
                .map_err(NetError::Io)?;
            shards.push(tx);
            shard_handles.push(handle);
        }
        drop(reaped_tx);
        let demux = Demux {
            socket,
            source: Arc::new(config.source),
            protocol: config.protocol,
            offer: config.offer,
            retry: config.retry,
            pace: config.pace,
            handshake_ttl: config.handshake_ttl,
            handshake_cap: config.handshake_cap,
            recv_buffer_bytes: config.recv_buffer_bytes,
            max_sessions: config.max_sessions,
            busy_retry_after_ms: config.busy_retry_after.as_millis() as u32,
            limits: SessionLimits {
                shed_lag: config.shed_lag,
                stale_retx_after: config.stale_retx_after,
                watchdog: config.watchdog,
            },
            shutdown: Arc::clone(&shutdown),
            live_gauge: Arc::clone(&live),
            telem,
            obs: config.recorder,
            shards,
            shard_handles,
            reaped_rx,
        };
        let handle = std::thread::Builder::new()
            .name("espread-net-demux".into())
            .spawn(move || demux.run())
            .map_err(NetError::Io)?;
        Ok(NetServer {
            local_addr,
            shutdown,
            live,
            demux: Some(handle),
        })
    }

    /// The bound address clients (or a proxy) should send to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Sessions currently in the connection table. Finished sessions are
    /// reaped immediately, so a long-lived server that has streamed many
    /// clients reads `0` here between bursts.
    pub fn live_sessions(&self) -> usize {
        self.live.load(AtomicOrdering::SeqCst)
    }

    /// Stops serving: signals every thread and joins them. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, AtomicOrdering::SeqCst);
        if let Some(handle) = self.demux.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// TTL + LRU cache of handshake verdicts, keyed by client nonce.
///
/// Duplicate `Hello`s (the reply was lost) get the cached bytes back
/// idempotently; entries expire after `ttl` and the oldest entry is
/// evicted once `cap` is reached, so a hostile nonce flood holds at most
/// `cap` replies — the unbounded-growth bug the threaded demux had.
struct HandshakeCache {
    ttl: Duration,
    cap: usize,
    map: HashMap<u64, (SocketAddr, Vec<u8>, Instant)>,
    /// Insertion order with each entry's timestamp; stale order entries
    /// (superseded by a re-insert) are skipped by timestamp mismatch.
    order: VecDeque<(u64, Instant)>,
}

impl HandshakeCache {
    fn new(ttl: Duration, cap: usize) -> Self {
        HandshakeCache {
            ttl,
            cap,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }

    /// A still-fresh cached verdict for `nonce`, if any.
    fn get(&self, nonce: u64, now: Instant) -> Option<(SocketAddr, &[u8])> {
        let (addr, reply, at) = self.map.get(&nonce)?;
        if now.saturating_duration_since(*at) >= self.ttl {
            return None;
        }
        Some((*addr, reply))
    }

    /// Caches a verdict, expiring stale entries and evicting past the
    /// cap. Returns how many entries were removed to make room.
    fn insert(&mut self, nonce: u64, addr: SocketAddr, reply: Vec<u8>, now: Instant) -> usize {
        let mut evicted = 0;
        while let Some(&(n, at)) = self.order.front() {
            if now.saturating_duration_since(at) < self.ttl {
                break;
            }
            self.order.pop_front();
            // Only drop the map entry if this order record is still its
            // newest (a re-insert leaves stale order records behind).
            if self.map.get(&n).is_some_and(|e| e.2 == at) {
                self.map.remove(&n);
                evicted += 1;
            }
        }
        self.map.insert(nonce, (addr, reply, now));
        self.order.push_back((nonce, now));
        while self.map.len() > self.cap {
            let Some((n, at)) = self.order.pop_front() else {
                break;
            };
            if self.map.get(&n).is_some_and(|e| e.2 == at) {
                self.map.remove(&n);
                evicted += 1;
            }
        }
        evicted
    }
}

/// Picks the next free connection id: skips [`CONN_NONE`] and any id
/// still present in the live table, so a wrapped counter can never
/// silently overwrite a live session's route. `None` only when every
/// one of the 2³²−1 ids is in use.
fn alloc_conn_id(next: &mut u32, live: &HashSet<u32>) -> Option<u32> {
    for _ in 0..u32::MAX {
        let id = *next;
        *next = next.wrapping_add(1).max(1);
        if id != CONN_NONE && !live.contains(&id) {
            return Some(id);
        }
    }
    None
}

struct Demux {
    socket: Arc<UdpSocket>,
    source: Arc<StreamSource>,
    protocol: ProtocolConfig,
    offer: SessionOffer,
    retry: RetryPolicy,
    pace: Duration,
    handshake_ttl: Duration,
    handshake_cap: usize,
    recv_buffer_bytes: usize,
    max_sessions: usize,
    busy_retry_after_ms: u32,
    limits: SessionLimits,
    shutdown: Arc<AtomicBool>,
    live_gauge: Arc<AtomicUsize>,
    telem: ServerTelem,
    obs: SessionRecorder,
    shards: Vec<Sender<ShardEvent>>,
    shard_handles: Vec<JoinHandle<()>>,
    reaped_rx: Receiver<u32>,
}

impl Demux {
    fn shard_of(&self, conn_id: u32) -> &Sender<ShardEvent> {
        &self.shards[(conn_id as usize) % self.shards.len()]
    }

    fn run(self) {
        let mut handshakes = HandshakeCache::new(self.handshake_ttl, self.handshake_cap);
        let mut live: HashSet<u32> = HashSet::new();
        let mut next_conn: u32 = 1;
        let mut buf = vec![0u8; self.recv_buffer_bytes];
        while !self.shutdown.load(AtomicOrdering::SeqCst) {
            // Fold in reaped conn-ids so the live set tracks the shards'
            // tables and freed ids become reusable.
            while let Ok(conn) = self.reaped_rx.try_recv() {
                live.remove(&conn);
            }
            let (len, from) = match self.socket.recv_from(&mut buf) {
                Ok(ok) => ok,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => continue,
            };
            self.handle_datagram(
                &buf[..len],
                from,
                &mut handshakes,
                &mut live,
                &mut next_conn,
            );
            // A connection wave queues datagrams faster than one read per
            // wake can retire them: drop the timeout to effectively zero
            // and drain whatever is already queued before blocking again.
            // A read timeout (not `set_nonblocking`) leaves the shards'
            // sends on the shared socket untouched; the batch cap keeps a
            // sustained flood from starving the shutdown check above.
            if self.socket.set_read_timeout(Some(DRAIN)).is_ok() {
                for _ in 1..DRAIN_BATCH {
                    match self.socket.recv_from(&mut buf) {
                        Ok((len, from)) => {
                            self.handle_datagram(
                                &buf[..len],
                                from,
                                &mut handshakes,
                                &mut live,
                                &mut next_conn,
                            );
                        }
                        Err(_) => break,
                    }
                }
                let _ = self.socket.set_read_timeout(Some(POLL));
            }
        }
        // Disconnect the shard channels, then join the workers.
        drop(self.shards);
        for handle in self.shard_handles {
            let _ = handle.join();
        }
    }

    /// Decodes and routes one datagram: Hello handshakes are answered
    /// inline, session traffic is forwarded to the owning shard.
    fn handle_datagram(
        &self,
        datagram: &[u8],
        from: SocketAddr,
        handshakes: &mut HandshakeCache,
        live: &mut HashSet<u32>,
        next_conn: &mut u32,
    ) {
        self.telem.on_rx();
        let (conn_id, msg) = match wire::decode(datagram) {
            Ok(ok) => ok,
            Err(_) => {
                self.telem.on_decode_error();
                return;
            }
        };
        match msg {
            Msg::Hello(hello) => {
                let now = Instant::now();
                if let Some((addr, reply)) = handshakes.get(hello.nonce, now) {
                    // Duplicate Hello (our reply was lost): resend the
                    // cached verdict, idempotently.
                    match self.socket.send_to(reply, addr) {
                        Ok(_) => self.telem.on_tx(reply.len()),
                        Err(_) => self.telem.on_send_error(),
                    }
                    return;
                }
                let caps = ClientCapabilities {
                    buffer_bytes: hello.buffer_bytes,
                    max_startup_delay_ms: hello.max_startup_delay_ms,
                };
                let reply = match negotiate(self.offer.clone(), caps)
                    .map_err(|e| e.to_string())
                    .and_then(|agreed| accept_msg(hello.nonce, &agreed, self.source.window_count()))
                {
                    // Admission control outranks session spawning: at the
                    // cap the refusal is a typed, retryable `Busy`, and
                    // the cache insert below makes duplicated Hellos get
                    // the identical Busy back.
                    Ok(_) if self.max_sessions != 0 && live.len() >= self.max_sessions => {
                        self.telem.on_busy_rejection();
                        wire::encode(
                            CONN_NONE,
                            &Msg::Busy {
                                retry_after_ms: self.busy_retry_after_ms,
                            },
                        )
                    }
                    Ok(accept) => match self.open_session(next_conn, live, from, &hello) {
                        Some(conn_id) => wire::encode(conn_id, &Msg::Accept(accept)),
                        None => wire::encode(
                            CONN_NONE,
                            &Msg::Reject(Reject {
                                nonce: hello.nonce,
                                reason: "server cannot spawn a session".into(),
                            }),
                        ),
                    },
                    Err(reason) => {
                        let reject = Msg::Reject(Reject {
                            nonce: hello.nonce,
                            reason,
                        });
                        match wire::try_encode(CONN_NONE, &reject) {
                            Ok(bytes) => bytes,
                            Err(_) => {
                                // A reason too long for the wire: send
                                // a short typed refusal instead of a
                                // silently cut one.
                                self.telem.on_encode_oversize();
                                wire::encode(
                                    CONN_NONE,
                                    &Msg::Reject(Reject {
                                        nonce: hello.nonce,
                                        reason: "negotiation failed".into(),
                                    }),
                                )
                            }
                        }
                    }
                };
                match self.socket.send_to(&reply, from) {
                    Ok(_) => self.telem.on_tx(reply.len()),
                    Err(_) => self.telem.on_send_error(),
                }
                for _ in 0..handshakes.insert(hello.nonce, from, reply, now) {
                    self.telem.on_handshake_eviction();
                }
            }
            other if conn_id != CONN_NONE && live.contains(&conn_id) => {
                let _ = self.shard_of(conn_id).send(ShardEvent::Msg {
                    conn: conn_id,
                    msg: other,
                    at: Instant::now(),
                });
            }
            _ => {} // sessionless non-Hello: ignore
        }
    }

    /// Builds a session state object and hands it to its shard. `None`
    /// when no conn-id is free or the shard is gone — the caller sends a
    /// Reject, mirroring the old spawn-failure path.
    fn open_session(
        &self,
        next_conn: &mut u32,
        live: &mut HashSet<u32>,
        from: SocketAddr,
        hello: &wire::Hello,
    ) -> Option<u32> {
        let conn_id = alloc_conn_id(next_conn, live)?;
        let core = SessionCore::new(
            conn_id,
            from,
            self.protocol.clone().with_ordering(hello.ordering),
            Arc::clone(&self.source),
            self.retry,
            self.pace,
            self.offer.fec,
            self.limits,
            self.telem.clone(),
            self.obs.clone(),
            Instant::now(),
        );
        if self
            .shard_of(conn_id)
            .send(ShardEvent::Open(Box::new(core)))
            .is_err()
        {
            return None;
        }
        live.insert(conn_id);
        self.live_gauge.fetch_add(1, AtomicOrdering::SeqCst);
        self.telem.on_session();
        Some(conn_id)
    }
}

/// Builds the wire `Accept`, refusing session shapes the wire's field
/// widths cannot carry.
fn accept_msg(nonce: u64, agreed: &AgreedSession, windows: usize) -> Result<Accept, String> {
    let narrow = |v: usize| -> Result<u16, String> {
        u16::try_from(v).map_err(|_| "session shape exceeds wire limits".to_string())
    };
    if agreed.layer_sizes.len() > wire::MAX_LAYERS {
        return Err(format!("session has more than {} layers", wire::MAX_LAYERS));
    }
    Ok(Accept {
        nonce,
        frames_per_window: narrow(agreed.offer.frames_per_window())?,
        windows_total: u32::try_from(windows).map_err(|_| "too many windows".to_string())?,
        packet_bytes: agreed.offer.packet_bytes,
        fps: agreed.offer.fps,
        layer_sizes: agreed
            .layer_sizes
            .iter()
            .map(|&s| narrow(s))
            .collect::<Result<_, _>>()?,
        critical_frames: agreed
            .critical_frames
            .iter()
            .map(|&f| narrow(f))
            .collect::<Result<_, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WindowEnd;
    use espread_protocol::FecPolicy;
    use espread_trace::{GopPattern, Movie, MpegTrace};

    fn paper_offer() -> SessionOffer {
        SessionOffer {
            gop_pattern: GopPattern::gop12(),
            gops_per_window: 2,
            open_gop: false,
            fps: 24,
            packet_bytes: 2048,
            max_frame_bytes: 62_776 / 8,
            fec: FecPolicy::off(),
        }
    }

    fn config() -> NetServerConfig {
        let trace = MpegTrace::new(Movie::JurassicPark, 1);
        NetServerConfig::new(
            espread_protocol::ProtocolConfig::paper(0.6, 1),
            paper_offer(),
            StreamSource::mpeg(&trace, 2, 3, false),
        )
    }

    #[test]
    fn config_validation_catches_mismatches() {
        assert!(config().validate().is_ok());

        let mut c = config();
        c.offer.gops_per_window = 1; // 12 frames vs source's 24
        assert!(matches!(c.validate(), Err(NetError::Config(why)) if why.contains("frames")));

        let mut c = config();
        c.offer.fps = 30;
        assert!(matches!(c.validate(), Err(NetError::Config(why)) if why.contains("fps")));

        let mut c = config();
        c.retry.max_attempts = 0;
        assert!(c.validate().is_err());

        let mut c = config();
        c.offer.packet_bytes = 100_000;
        c.protocol.packet_bytes = 100_000;
        assert!(matches!(c.validate(), Err(NetError::Config(why)) if why.contains("64 KiB")));

        let mut c = config();
        c.handshake_cap = 0;
        assert!(matches!(c.validate(), Err(NetError::Config(why)) if why.contains("handshake")));

        let mut c = config();
        c.handshake_ttl = Duration::ZERO;
        assert!(matches!(c.validate(), Err(NetError::Config(why)) if why.contains("TTL")));
    }

    #[test]
    fn accept_msg_narrows_or_refuses() {
        let agreed = negotiate(paper_offer(), ClientCapabilities::desktop()).unwrap();
        let accept = accept_msg(7, &agreed, 20).unwrap();
        assert_eq!(accept.nonce, 7);
        assert_eq!(accept.frames_per_window, 24);
        assert_eq!(accept.windows_total, 20);
        assert_eq!(accept.layer_sizes, vec![2, 2, 2, 2, 16]);
        assert_eq!(accept.critical_frames.len(), 8);
    }

    #[test]
    fn bind_and_shutdown_are_clean_and_idempotent() {
        let mut server = NetServer::bind("127.0.0.1:0", config()).unwrap();
        assert_eq!(
            server.local_addr().ip(),
            "127.0.0.1".parse::<std::net::IpAddr>().unwrap()
        );
        assert_eq!(server.live_sessions(), 0);
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn alien_datagrams_do_not_crash_the_demux() {
        let mut server = NetServer::bind("127.0.0.1:0", config()).unwrap();
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        probe
            .send_to(b"not espread at all", server.local_addr())
            .unwrap();
        probe.send_to(&[], server.local_addr()).unwrap();
        // A sessionless data message is ignored too.
        let stray = wire::encode(
            99,
            &Msg::WindowEnd(WindowEnd {
                window: 0,
                sent_at_us: 1,
                last: false,
            }),
        );
        probe.send_to(&stray, server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
    }

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    fn hello_bytes(nonce: u64) -> Vec<u8> {
        let caps = ClientCapabilities::desktop();
        wire::encode(
            CONN_NONE,
            &Msg::Hello(wire::Hello {
                nonce,
                buffer_bytes: caps.buffer_bytes,
                max_startup_delay_ms: caps.max_startup_delay_ms,
                ordering: espread_protocol::Ordering::spread(),
            }),
        )
    }

    /// Admission control: at the session cap a fresh Hello is refused
    /// with a typed Busy carrying the configured retry-after, and a
    /// duplicated Hello gets the byte-identical cached refusal.
    #[test]
    fn at_capacity_hellos_get_idempotent_busy_refusals() {
        let mut cfg = config();
        cfg.max_sessions = 1;
        cfg.busy_retry_after = Duration::from_millis(123);
        let mut server = NetServer::bind("127.0.0.1:0", cfg).unwrap();
        let mut buf = [0u8; 65_536];

        // Occupy the only slot with a real handshake.
        let first = UdpSocket::bind("127.0.0.1:0").unwrap();
        first
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        first.send_to(&hello_bytes(1), server.local_addr()).unwrap();
        let (len, _) = first.recv_from(&mut buf).unwrap();
        let (_, msg) = wire::decode(&buf[..len]).unwrap();
        assert!(matches!(msg, Msg::Accept(_)), "{msg:?}");
        assert_eq!(server.live_sessions(), 1);

        // A second client is refused, typed and retryable.
        let second = UdpSocket::bind("127.0.0.1:0").unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        second
            .send_to(&hello_bytes(2), server.local_addr())
            .unwrap();
        let (len, _) = second.recv_from(&mut buf).unwrap();
        let busy1 = buf[..len].to_vec();
        let (_, msg) = wire::decode(&busy1).unwrap();
        assert!(
            matches!(
                msg,
                Msg::Busy {
                    retry_after_ms: 123
                }
            ),
            "{msg:?}"
        );
        assert_eq!(
            server.live_sessions(),
            1,
            "the refused Hello opened nothing"
        );

        // The same Hello again (our reply "was lost"): the cached Busy
        // comes back byte-identical.
        second
            .send_to(&hello_bytes(2), server.local_addr())
            .unwrap();
        let (len, _) = second.recv_from(&mut buf).unwrap();
        assert_eq!(buf[..len], busy1[..], "duplicate Hello is idempotent");

        server.shutdown();
    }

    /// Regression (nonce flood): the handshake cache holds at most `cap`
    /// entries however many distinct nonces arrive, and expiry frees
    /// slots without eviction pressure.
    #[test]
    fn handshake_cache_is_bounded_under_nonce_flood() {
        let t0 = Instant::now();
        let mut cache = HandshakeCache::new(Duration::from_secs(30), 16);
        let mut evicted = 0;
        for nonce in 0..10_000u64 {
            evicted += cache.insert(nonce, addr(9), vec![1, 2, 3], t0);
        }
        assert_eq!(cache.len(), 16, "cap bounds the cache under flood");
        assert_eq!(evicted, 10_000 - 16, "every overflow entry was evicted");
        // LRU: the newest survive, the oldest are gone.
        assert!(cache.get(9_999, t0).is_some());
        assert!(cache.get(0, t0).is_none());
    }

    #[test]
    fn handshake_cache_expires_by_ttl() {
        let t0 = Instant::now();
        let ttl = Duration::from_millis(100);
        let mut cache = HandshakeCache::new(ttl, 1024);
        cache.insert(1, addr(9), vec![1], t0);
        assert!(cache.get(1, t0 + Duration::from_millis(99)).is_some());
        assert!(cache.get(1, t0 + ttl).is_none(), "expired entries miss");
        // The next insert sweeps the expired entry out of the map.
        cache.insert(2, addr(9), vec![2], t0 + ttl);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn handshake_cache_reinsert_does_not_double_free() {
        let t0 = Instant::now();
        let step = Duration::from_millis(10);
        let mut cache = HandshakeCache::new(Duration::from_secs(30), 2);
        cache.insert(1, addr(9), vec![1], t0);
        cache.insert(1, addr(9), vec![2], t0 + step); // re-insert: newer timestamp
        cache.insert(2, addr(9), vec![3], t0 + step * 2);
        // Cap eviction pops nonce 1's *stale* order record first; the
        // timestamp check must skip it (not count it as freeing a slot)
        // and keep walking to a record that really maps to an entry.
        let evicted = cache.insert(3, addr(9), vec![4], t0 + step * 3);
        assert_eq!(evicted, 1, "exactly one live entry evicted");
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, t0 + step * 3).is_none(), "oldest entry gone");
        assert!(cache.get(2, t0 + step * 3).is_some());
        assert!(cache.get(3, t0 + step * 3).is_some());
    }

    /// Regression (wraparound collision): a wrapped conn-id counter must
    /// skip ids still live in the connection table instead of silently
    /// reassigning them.
    #[test]
    fn conn_id_allocation_skips_live_ids_at_wrap() {
        let mut live: HashSet<u32> = [u32::MAX, 1, 2].into_iter().collect();
        let mut next = u32::MAX;
        // u32::MAX is live → skipped; 0 is CONN_NONE → never issued;
        // 1 and 2 are live → skipped; 3 is free.
        assert_eq!(alloc_conn_id(&mut next, &live), Some(3));
        assert_eq!(next, 4);
        // The old `wrapping_add(1).max(1)` would have yielded u32::MAX
        // (live!) here. Verify the very ids it collided on are refused.
        let mut next = 1;
        assert_eq!(alloc_conn_id(&mut next, &live), Some(3));
        live.insert(3);
        let mut next = 3;
        assert_eq!(alloc_conn_id(&mut next, &live), Some(4));
    }

    #[test]
    fn conn_id_allocation_exhausts_to_none_on_a_full_table() {
        // A synthetic "everything is live" set is too big to build, so
        // check the boundary behaviour instead: with every id in a small
        // wrap region live, allocation walks past all of them.
        let live: HashSet<u32> = (1..=64).collect();
        let mut next = 1;
        assert_eq!(alloc_conn_id(&mut next, &live), Some(65));
    }
}
