//! The initial negotiation of §4.2.
//!
//! "We assume that N, the buffer size, and the GOP pattern is known in
//! advance by both client and server. This can be obtained by an initial
//! negotiation." This module makes that handshake explicit: the server
//! proposes the session parameters, the client checks them against its
//! own resources (decoder buffer, §4.1's `N = W × GOP × maxFrame` sizing)
//! and either accepts or rejects with a reason. Both sides then derive
//! identical layer structure from the agreed parameters — the shared
//! knowledge the adaptive protocol relies on.

use std::error::Error;
use std::fmt;

use espread_trace::GopPattern;

/// Which fragments the erasure coder protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FecScope {
    /// No parity is generated — pure spreading (the seed behaviour).
    #[default]
    Off,
    /// Only critical-layer frames (the paper's anchor frames — the
    /// layers whose loss propagates through the GOP) get parity;
    /// non-critical layers rely on spreading alone.
    Critical,
    /// Every data fragment is grouped for parity.
    All,
}

/// Per-session erasure-coding policy, proposed with the rest of the
/// offer and applied identically on both sides.
///
/// Parity is computed over **transmission-order groups**: the server
/// collects `group_k` consecutive in-scope fragments as it sends them
/// and emits `parity_m` parity datagrams per group, so parity protects
/// exactly the bursts the spread order produces on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FecPolicy {
    /// Which fragments are grouped.
    pub scope: FecScope,
    /// Data fragments per parity group (`k` of the `(k, m)` code).
    pub group_k: u8,
    /// Parity shards per group (`m`); any `≤ m` losses inside a group
    /// are recoverable.
    pub parity_m: u8,
}

impl FecPolicy {
    /// No erasure coding (the default).
    pub fn off() -> Self {
        FecPolicy::default()
    }

    /// XOR parity (`m = 1`) over groups of `k` critical-layer fragments.
    pub fn xor_critical(k: u8) -> Self {
        FecPolicy {
            scope: FecScope::Critical,
            group_k: k,
            parity_m: 1,
        }
    }

    /// A Reed–Solomon-style `(k, m)` code over the given scope.
    pub fn rs(scope: FecScope, k: u8, m: u8) -> Self {
        FecPolicy {
            scope,
            group_k: k,
            parity_m: m,
        }
    }

    /// Whether any parity will be generated.
    pub fn enabled(&self) -> bool {
        self.scope != FecScope::Off
    }

    /// Validates the geometry against the GF(256) code's limits.
    ///
    /// # Errors
    ///
    /// Returns [`NegotiationError::Invalid`] when the scope is on but
    /// `k` or `m` is zero, or `k + m` exceeds the field's 255 symbols.
    pub fn validate(&self) -> Result<(), NegotiationError> {
        if !self.enabled() {
            return Ok(());
        }
        if self.group_k == 0 || self.parity_m == 0 {
            return Err(NegotiationError::Invalid(
                "FEC group and parity counts must be positive".into(),
            ));
        }
        if usize::from(self.group_k) + usize::from(self.parity_m) > 255 {
            return Err(NegotiationError::Invalid(
                "FEC k + m exceeds the GF(256) symbol budget".into(),
            ));
        }
        Ok(())
    }
}

/// The server's proposed session parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOffer {
    /// Display-order GOP pattern of the stream.
    pub gop_pattern: GopPattern,
    /// GOPs per buffer window (W).
    pub gops_per_window: usize,
    /// Whether GOPs are open (trailing B-frames reference the next GOP).
    pub open_gop: bool,
    /// Frame rate in frames per second.
    pub fps: u32,
    /// Negotiated packet payload size in bytes.
    pub packet_bytes: u32,
    /// Upper bound on any frame's encoded size in bytes (for §4.1 buffer
    /// sizing).
    pub max_frame_bytes: u32,
    /// Erasure-coding policy ([`FecPolicy::off`] reproduces the paper's
    /// pure-spreading protocol bit for bit).
    pub fec: FecPolicy,
}

impl SessionOffer {
    /// Frames per buffer window (`N` of the paper).
    pub fn frames_per_window(&self) -> usize {
        self.gop_pattern.len() * self.gops_per_window
    }

    /// The §4.1 buffer requirement in bytes:
    /// `N_bytes = W × GOP × maxFrame` on each side.
    pub fn buffer_bytes(&self) -> u64 {
        self.frames_per_window() as u64 * u64::from(self.max_frame_bytes)
    }

    /// Client-side start-up delay: one buffer window.
    pub fn startup_delay_secs(&self) -> f64 {
        self.frames_per_window() as f64 / f64::from(self.fps)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), NegotiationError> {
        if self.gops_per_window == 0 {
            return Err(NegotiationError::Invalid("W must be at least 1 GOP".into()));
        }
        if self.fps == 0 {
            return Err(NegotiationError::Invalid("fps must be positive".into()));
        }
        if self.packet_bytes == 0 {
            return Err(NegotiationError::Invalid(
                "packet size must be positive".into(),
            ));
        }
        if self.max_frame_bytes == 0 {
            return Err(NegotiationError::Invalid(
                "max frame size must be positive".into(),
            ));
        }
        self.fec.validate()
    }
}

/// Client resource constraints checked against an offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientCapabilities {
    /// Client decoder/reassembly buffer in bytes.
    pub buffer_bytes: u64,
    /// Largest start-up delay the application tolerates, in milliseconds.
    pub max_startup_delay_ms: u64,
}

impl ClientCapabilities {
    /// A comfortable desktop client (1 MiB buffer, 2 s start-up).
    pub fn desktop() -> Self {
        ClientCapabilities {
            buffer_bytes: 1024 * 1024,
            max_startup_delay_ms: 2_000,
        }
    }

    /// An interactive client (256 KiB buffer, 600 ms start-up) — Internet
    /// phone territory.
    pub fn interactive() -> Self {
        ClientCapabilities {
            buffer_bytes: 256 * 1024,
            max_startup_delay_ms: 600,
        }
    }
}

/// Negotiation failure reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegotiationError {
    /// The offer itself is malformed.
    Invalid(String),
    /// The client cannot buffer `required` bytes (`available` on hand).
    BufferTooSmall {
        /// Bytes the offer requires.
        required: u64,
        /// Bytes the client has.
        available: u64,
    },
    /// The start-up delay exceeds the client's tolerance.
    StartupDelayTooLong {
        /// Offered delay in milliseconds.
        offered_ms: u64,
        /// Client limit in milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegotiationError::Invalid(why) => write!(f, "invalid offer: {why}"),
            NegotiationError::BufferTooSmall {
                required,
                available,
            } => write!(
                f,
                "client buffer too small: offer needs {required} B, client has {available} B"
            ),
            NegotiationError::StartupDelayTooLong {
                offered_ms,
                limit_ms,
            } => write!(
                f,
                "start-up delay {offered_ms} ms exceeds client limit {limit_ms} ms"
            ),
        }
    }
}

impl Error for NegotiationError {}

/// The agreement both sides derive their shared state from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgreedSession {
    /// The accepted offer.
    pub offer: SessionOffer,
    /// Per-window layer sizes (identical on both sides by construction).
    pub layer_sizes: Vec<usize>,
    /// Playout indices of the critical (anchor) frames per window.
    pub critical_frames: Vec<usize>,
}

/// Runs the negotiation: validates the offer, checks it against the
/// client's capabilities, and derives the shared layer structure.
///
/// # Errors
///
/// Returns a [`NegotiationError`] when the offer is malformed or exceeds
/// the client's resources.
pub fn negotiate(
    offer: SessionOffer,
    client: ClientCapabilities,
) -> Result<AgreedSession, NegotiationError> {
    offer.validate()?;
    let required = offer.buffer_bytes();
    if required > client.buffer_bytes {
        return Err(NegotiationError::BufferTooSmall {
            required,
            available: client.buffer_bytes,
        });
    }
    let offered_ms = (offer.startup_delay_secs() * 1000.0).round() as u64;
    if offered_ms > client.max_startup_delay_ms {
        return Err(NegotiationError::StartupDelayTooLong {
            offered_ms,
            limit_ms: client.max_startup_delay_ms,
        });
    }
    let poset = offer
        .gop_pattern
        .dependency_poset(offer.gops_per_window, offer.open_gop);
    let decomposition = poset.depth_decomposition();
    let layer_sizes = decomposition.iter().map(|l| l.len()).collect();
    let mut critical_frames: Vec<usize> = decomposition
        .iter()
        .filter(|layer| layer.iter().any(|&f| poset.upset_size(f) > 0))
        .flatten()
        .copied()
        .collect();
    critical_frames.sort_unstable();
    Ok(AgreedSession {
        offer,
        layer_sizes,
        critical_frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_offer() -> SessionOffer {
        SessionOffer {
            gop_pattern: GopPattern::gop12(),
            gops_per_window: 2,
            open_gop: false,
            fps: 24,
            packet_bytes: 2048,
            max_frame_bytes: 62_776 / 8, // Jurassic Park's worst GOP bounds any frame
            fec: FecPolicy::off(),
        }
    }

    #[test]
    fn offer_derived_quantities() {
        let offer = paper_offer();
        assert_eq!(offer.frames_per_window(), 24);
        assert!((offer.startup_delay_secs() - 1.0).abs() < 1e-12);
        assert_eq!(offer.buffer_bytes(), 24 * u64::from(offer.max_frame_bytes));
    }

    #[test]
    fn desktop_client_accepts_paper_offer() {
        let agreed = negotiate(paper_offer(), ClientCapabilities::desktop()).unwrap();
        assert_eq!(agreed.layer_sizes, vec![2, 2, 2, 2, 16]);
        assert_eq!(agreed.critical_frames.len(), 8);
        assert!(agreed.critical_frames.contains(&0));
        assert!(agreed.critical_frames.contains(&21));
    }

    #[test]
    fn interactive_client_rejects_long_startup() {
        let err = negotiate(paper_offer(), ClientCapabilities::interactive()).unwrap_err();
        assert_eq!(
            err,
            NegotiationError::StartupDelayTooLong {
                offered_ms: 1000,
                limit_ms: 600
            }
        );
        // A W=1 offer halves the delay below the limit.
        let offer = SessionOffer {
            gops_per_window: 1,
            ..paper_offer()
        };
        assert!(negotiate(offer, ClientCapabilities::interactive()).is_ok());
    }

    #[test]
    fn tiny_client_rejects_big_buffers() {
        let client = ClientCapabilities {
            buffer_bytes: 1024,
            max_startup_delay_ms: 10_000,
        };
        let err = negotiate(paper_offer(), client).unwrap_err();
        assert!(matches!(err, NegotiationError::BufferTooSmall { .. }));
    }

    #[test]
    fn malformed_offers_rejected() {
        let mut offer = paper_offer();
        offer.gops_per_window = 0;
        assert!(matches!(
            negotiate(offer, ClientCapabilities::desktop()),
            Err(NegotiationError::Invalid(_))
        ));
        let mut offer = paper_offer();
        offer.fps = 0;
        assert!(negotiate(offer, ClientCapabilities::desktop()).is_err());
        let mut offer = paper_offer();
        offer.packet_bytes = 0;
        assert!(negotiate(offer, ClientCapabilities::desktop()).is_err());
        let mut offer = paper_offer();
        offer.max_frame_bytes = 0;
        assert!(negotiate(offer, ClientCapabilities::desktop()).is_err());
    }

    #[test]
    fn fec_geometry_is_validated() {
        assert!(FecPolicy::off().validate().is_ok());
        assert!(FecPolicy::xor_critical(8).validate().is_ok());
        assert!(FecPolicy::rs(FecScope::All, 200, 55).validate().is_ok());
        assert!(FecPolicy::rs(FecScope::All, 200, 56).validate().is_err());
        assert!(FecPolicy::rs(FecScope::Critical, 0, 1).validate().is_err());
        assert!(FecPolicy::rs(FecScope::Critical, 4, 0).validate().is_err());
        // Zero geometry is fine as long as the scope is off.
        assert!(FecPolicy::rs(FecScope::Off, 0, 0).validate().is_ok());

        let mut offer = paper_offer();
        offer.fec = FecPolicy::xor_critical(0);
        assert!(matches!(
            negotiate(offer, ClientCapabilities::desktop()),
            Err(NegotiationError::Invalid(_))
        ));
        let mut offer = paper_offer();
        offer.fec = FecPolicy::rs(FecScope::All, 6, 2);
        let agreed = negotiate(offer, ClientCapabilities::desktop()).unwrap();
        assert!(agreed.offer.fec.enabled());
    }

    #[test]
    fn error_display() {
        let e = NegotiationError::BufferTooSmall {
            required: 100,
            available: 10,
        };
        assert!(e.to_string().contains("too small"));
        let e = NegotiationError::StartupDelayTooLong {
            offered_ms: 900,
            limit_ms: 600,
        };
        assert!(e.to_string().contains("start-up delay"));
        assert!(NegotiationError::Invalid("x".into())
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn agreement_matches_window_plan_layering() {
        // The client-side derivation equals what the server's planner uses.
        use crate::config::Ordering;
        use crate::layers::WindowPlan;
        let agreed = negotiate(paper_offer(), ClientCapabilities::desktop()).unwrap();
        let poset = agreed
            .offer
            .gop_pattern
            .dependency_poset(agreed.offer.gops_per_window, agreed.offer.open_gop);
        let plan = WindowPlan::build(Ordering::spread(), &poset, &agreed.layer_sizes);
        assert_eq!(plan.layer_sizes(), agreed.layer_sizes);
        assert_eq!(plan.critical_frames(), agreed.critical_frames);
    }
}
