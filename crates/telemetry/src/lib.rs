//! # espread-telemetry
//!
//! Observability substrate for the error-spreading workspace: a lock-cheap
//! [`Registry`] of counters / gauges / log-linear histograms, RAII
//! [span timing](Histogram::start_timer) for hot paths, a streaming-domain
//! [event log](Event) (adaptation decisions, per-window continuity
//! metrics), and pluggable [sinks](sink) — JSON-lines, Prometheus text
//! exposition, and an in-memory sink for test assertions.
//!
//! ## Design
//!
//! * **Recording is lock-free.** Handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) are `Arc`s over atomics; the registry's maps are only
//!   locked at registration/lookup and snapshot time. Hot paths keep their
//!   handle and record with a single atomic RMW.
//! * **Snapshot anywhere.** [`Registry::snapshot`] reads every instrument
//!   without stopping writers; [`Snapshot::merge`] folds snapshots from
//!   several registries (or runs) together, and [`Registry::absorb`]
//!   folds a snapshot back into a live registry.
//! * **Thread-scoped routing.** [`with_current`] installs a thread-local
//!   registry override that [`current`] resolves; the per-crate shims
//!   record through [`current`], so a parallel executor can hand each
//!   worker a private registry and merge the deltas once at join instead
//!   of contending on shared atomics in the hot loop.
//! * **Compile-out-able.** This crate is always cheap to build (std only);
//!   the *instrumented* crates gate their call sites behind their own
//!   `telemetry` cargo feature (on by default), so
//!   `--no-default-features` builds reduce every call site to a no-op.
//!
//! ## Example
//!
//! ```
//! use espread_telemetry::{Registry, sink::{InMemorySink, Sink}};
//!
//! let registry = Registry::new();
//! registry.counter("windows.sent").add(3);
//! registry.gauge("window.alf").set(0.25);
//! let hist = registry.histogram("plan.ns");
//! hist.record(1_200);
//! {
//!     let _span = hist.start_timer(); // records on drop
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("windows.sent"), Some(3));
//!
//! let mut sink = InMemorySink::new();
//! // export() returns a typed ExportError — no sink panics on export.
//! if let Err(e) = sink.export(&snapshot) {
//!     eprintln!("telemetry export failed: {e}");
//! }
//! assert_eq!(sink.last().unwrap().counter("windows.sent"), Some(3));
//! ```

mod event;
mod hist;
pub(crate) mod json;
mod registry;
pub mod sink;

pub use event::Event;
pub use hist::HistogramSnapshot;
pub use registry::{
    current, global, with_current, Counter, Gauge, Histogram, Registry, Snapshot, SpanGuard,
};
