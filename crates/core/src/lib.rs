//! Error spreading: permutation-based bursty-loss dispersal for continuous
//! media streaming.
//!
//! This crate is the primary contribution of
//! *"An Adaptive, Perception-Driven Error Spreading Scheme in Continuous
//! Media Streaming"* (Varadarajan, Ngo & Srivastava, ICDCS 2000): a
//! transformation that **permutes the frames of each sender-buffer window
//! before transmission** and un-permutes them at the receiver, so that a
//! bursty network loss lands on frames that are far apart in playout order.
//! Bursty loss (high CLF — the perceptually damaging kind) is traded for
//! spread-out loss (higher tolerated ALF) at **zero extra bandwidth**.
//!
//! The crate provides:
//!
//! * [`Permutation`] — validated transmission orders with apply/unapply;
//! * [`worst_case_clf`] / [`burst_loss_pattern`] — exact adversarial
//!   analysis of an order against single bursts of bounded size;
//! * [`calculate_permutation`] — the paper's `calculatePermutation(n, b)`:
//!   the optimal spreading order for a window of `n` under burst bound `b`
//!   (exact search over cyclic strides, block interleavers, and — for tiny
//!   windows — all orders);
//! * [`bounds`] — the reconstructed Theorem 1 (min supportable CLF);
//! * [`LayeredOrder`] — the Layered Permutation Transmission Order for
//!   streams with inter-frame dependency (MPEG), built on
//!   [`espread_poset`];
//! * [`BurstEstimator`] — the adaptive exponential-averaging loss
//!   estimator of eq. (1);
//! * [`ibo`] — CMT's Inverse Binary Order, the baseline of Table 2.
//!
//! # Quick start
//!
//! ```
//! use espread_core::{calculate_permutation, worst_case_clf, Permutation};
//!
//! // A 17-frame sender buffer facing bursts of up to 5 packets (Table 1).
//! let choice = calculate_permutation(17, 5);
//! assert_eq!(choice.worst_clf, 1);
//!
//! // The same burst against in-order transmission wipes 5 consecutive frames.
//! assert_eq!(worst_case_clf(&Permutation::identity(17), 5), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod bounds;
pub mod burst;
pub mod cache;
pub mod cpo;
pub mod estimator;
pub mod ibo;
pub mod interleave;
pub mod layered;
pub mod module;
pub mod permutation;
pub mod stochastic;
mod telem;

pub use anneal::{optimize_order, OptimizedOrder};
pub use bounds::{clf_lower_bound, theorem_one, TheoremOneBound};
pub use burst::{
    burst_clf, burst_loss_pattern, clf_profile, multi_burst_lower_bound, try_burst_clf,
    try_burst_loss_pattern, worst_case_clf, worst_case_clf_multi,
};
pub use cache::{
    calculate_permutation_cached, layered_cache_stats, layered_uniform_cached, spread_cache_stats,
    CacheStats, OrderCache, DEFAULT_CACHE_CAPACITY,
};
pub use cpo::{
    calculate_permutation, k_cpo, k_cpo_cached, max_tolerable_burst, min_window_for, OrderFamily,
    SpreadChoice,
};
pub use estimator::{BurstEstimator, ObservationError};
pub use layered::{LayerPlan, LayeredOrder};
pub use module::{Descrambler, Scrambled, Scrambler};
pub use permutation::{Permutation, PermutationError};
pub use stochastic::{monte_carlo_clf, monte_carlo_series, rank_orders, rank_orders_by};
