//! Perceptual tolerance profiles for continuity metrics.
//!
//! The user study the paper relies on (Wijesekera, Srivastava, Nerode &
//! Foresti, reference \[6\]) established that viewer dissatisfaction rises
//! dramatically once consecutive loss exceeds a small threshold: about **2
//! frames for video** and **3 frames for audio** (§2.1). Aggregate loss is
//! far better tolerated provided it is spread out.
//!
//! [`PerceptionProfile`] packages those thresholds so protocols and
//! experiments can ask a single question: *is this window perceptually
//! acceptable?*

use std::fmt;

use crate::ldu::MediaKind;
use crate::metrics::ContinuityMetrics;

/// The paper's tolerable CLF for video streams (2 consecutive frames).
pub const VIDEO_CLF_THRESHOLD: usize = 2;

/// The paper's tolerable CLF for audio streams (3 consecutive LDUs).
pub const AUDIO_CLF_THRESHOLD: usize = 3;

/// Default tolerable ALF used when a profile does not override it.
///
/// Reference \[6\] reports that "a reasonable amount of overall error is
/// acceptable, as long as it is spread out"; we adopt a 20 % default, which
/// callers can override with [`PerceptionProfile::with_alf_threshold`].
pub const DEFAULT_ALF_THRESHOLD: f64 = 0.20;

/// Verdict on one window of a stream against a perception profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Acceptability {
    /// Both CLF and ALF are within tolerance.
    Acceptable,
    /// The consecutive-loss threshold was exceeded (the "annoying" failure
    /// mode error spreading exists to prevent).
    TooBursty,
    /// Aggregate loss alone exceeded tolerance.
    TooLossy,
    /// Both thresholds were exceeded.
    Unwatchable,
}

impl Acceptability {
    /// Returns `true` for [`Acceptability::Acceptable`].
    pub fn is_acceptable(self) -> bool {
        self == Acceptability::Acceptable
    }
}

impl fmt::Display for Acceptability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Acceptability::Acceptable => "acceptable",
            Acceptability::TooBursty => "too bursty (CLF over threshold)",
            Acceptability::TooLossy => "too lossy (ALF over threshold)",
            Acceptability::Unwatchable => "unwatchable (ALF and CLF over threshold)",
        };
        f.write_str(text)
    }
}

/// Tolerance thresholds for a medium, used to judge continuity metrics.
///
/// # Example
///
/// ```
/// use espread_qos::{ContinuityMetrics, LossPattern, MediaKind, PerceptionProfile};
///
/// let profile = PerceptionProfile::for_media(MediaKind::Video);
/// let bursty = ContinuityMetrics::of(&LossPattern::from_lost_indices(30, [4, 5, 6]));
/// let spread = ContinuityMetrics::of(&LossPattern::from_lost_indices(30, [4, 14, 24]));
///
/// assert!(!profile.judge(bursty).is_acceptable()); // CLF 3 > 2
/// assert!(profile.judge(spread).is_acceptable());  // CLF 1, ALF 10 %
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerceptionProfile {
    max_clf: usize,
    max_alf: f64,
}

impl PerceptionProfile {
    /// Creates a profile with an explicit CLF threshold and the default ALF
    /// threshold.
    pub fn new(max_clf: usize) -> Self {
        PerceptionProfile {
            max_clf,
            max_alf: DEFAULT_ALF_THRESHOLD,
        }
    }

    /// The paper's thresholds for a medium: CLF ≤ 2 for video, ≤ 3 for
    /// audio.
    pub fn for_media(kind: MediaKind) -> Self {
        match kind {
            MediaKind::Video => Self::new(VIDEO_CLF_THRESHOLD),
            MediaKind::Audio => Self::new(AUDIO_CLF_THRESHOLD),
        }
    }

    /// Replaces the aggregate-loss threshold (a fraction in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `max_alf` is not a finite fraction in `[0, 1]`.
    pub fn with_alf_threshold(mut self, max_alf: f64) -> Self {
        assert!(
            max_alf.is_finite() && (0.0..=1.0).contains(&max_alf),
            "ALF threshold must be a fraction in [0, 1]"
        );
        self.max_alf = max_alf;
        self
    }

    /// The maximum tolerable consecutive loss.
    pub fn max_clf(self) -> usize {
        self.max_clf
    }

    /// The maximum tolerable aggregate-loss fraction.
    pub fn max_alf(self) -> f64 {
        self.max_alf
    }

    /// Judges one window's metrics against the thresholds.
    pub fn judge(self, metrics: ContinuityMetrics) -> Acceptability {
        let bursty = metrics.clf() > self.max_clf;
        let lossy = metrics.alf().as_f64() > self.max_alf;
        match (bursty, lossy) {
            (false, false) => Acceptability::Acceptable,
            (true, false) => Acceptability::TooBursty,
            (false, true) => Acceptability::TooLossy,
            (true, true) => Acceptability::Unwatchable,
        }
    }
}

impl Default for PerceptionProfile {
    /// Defaults to the video profile, the stricter of the paper's two.
    fn default() -> Self {
        Self::for_media(MediaKind::Video)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossPattern;

    fn metrics(len: usize, lost: &[usize]) -> ContinuityMetrics {
        ContinuityMetrics::of(&LossPattern::from_lost_indices(len, lost.iter().copied()))
    }

    #[test]
    fn media_thresholds_match_paper() {
        assert_eq!(PerceptionProfile::for_media(MediaKind::Video).max_clf(), 2);
        assert_eq!(PerceptionProfile::for_media(MediaKind::Audio).max_clf(), 3);
    }

    #[test]
    fn video_tolerates_two_but_not_three_consecutive() {
        let p = PerceptionProfile::for_media(MediaKind::Video);
        assert!(p.judge(metrics(30, &[5, 6])).is_acceptable());
        assert_eq!(p.judge(metrics(30, &[5, 6, 7])), Acceptability::TooBursty);
    }

    #[test]
    fn audio_tolerates_three_consecutive() {
        let p = PerceptionProfile::for_media(MediaKind::Audio);
        assert!(p.judge(metrics(30, &[5, 6, 7])).is_acceptable());
        assert_eq!(
            p.judge(metrics(30, &[5, 6, 7, 8])),
            Acceptability::TooBursty
        );
    }

    #[test]
    fn aggregate_threshold_applies() {
        let p = PerceptionProfile::new(2).with_alf_threshold(0.10);
        // CLF 1 everywhere but 20 % aggregate loss.
        let spread = metrics(10, &[0, 5]);
        assert_eq!(p.judge(spread), Acceptability::TooLossy);
    }

    #[test]
    fn both_violations_is_unwatchable() {
        let p = PerceptionProfile::new(2).with_alf_threshold(0.10);
        assert_eq!(p.judge(metrics(10, &[0, 1, 2])), Acceptability::Unwatchable);
    }

    #[test]
    fn clean_window_is_acceptable() {
        let p = PerceptionProfile::default();
        assert_eq!(p.judge(metrics(10, &[])), Acceptability::Acceptable);
    }

    #[test]
    #[should_panic(expected = "fraction in [0, 1]")]
    fn invalid_alf_threshold_rejected() {
        let _ = PerceptionProfile::new(2).with_alf_threshold(1.5);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Acceptability::Acceptable.to_string(), "acceptable");
        assert!(Acceptability::TooBursty.to_string().contains("CLF"));
        assert!(Acceptability::TooLossy.to_string().contains("ALF"));
        assert!(Acceptability::Unwatchable
            .to_string()
            .contains("unwatchable"));
    }
}
