//! Deterministic chaos soak over the UDP stack.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin chaos_soak [--jobs N] [--quick]
//! ```
//!
//! Runs [`espread_chaos::DEFAULT_SEEDS`] (or a four-seed subset with
//! `--quick`) through the full client/server/proxy stack under seeded
//! fault schedules, checks every invariant, and writes the report to
//! `results/chaos_soak.json`. It then runs the overload regime
//! ([`espread_chaos::DEFAULT_OVERLOAD_SEEDS`], or the first seed with
//! `--quick`) — a capacity-capped server under a handshake flood, a
//! wedged reader, and a client swarm above the cap — and writes that
//! report to `results/chaos_overload.json`. Both artifacts are
//! byte-identical for any `--jobs` value and any rerun — CI diffs two
//! runs and greps for `"violations": 0`. On a violation, one minimized
//! `REPRODUCER seed=… cell=… schedule=… trace=…` line per breakage goes
//! to stdout and the process exits nonzero.
//!
//! Every cell also dumps its flight-recorder trio (server, proxy,
//! client event rings) to `results/timeline_seed<seed>.jsonl`
//! (`timeline_overload_seed<seed>.jsonl` for overload cells); replay
//! one with `cargo run --release -p espread-bench --bin timeline -- \
//! --check results/timeline_seed<seed>.jsonl`. The dumps carry
//! timestamps and are excluded from the byte-identical diff.

use std::process::ExitCode;
use std::time::Instant;

use espread_bench::sweep;
use espread_chaos::{
    run_overload_soak, run_soak, InvariantReport, SoakConfig, DEFAULT_OVERLOAD_SEEDS,
};

/// One seed per invariant regime plus a second compare cell — the same
/// subset the `espread-chaos` integration test drives.
const QUICK_SEEDS: [u64; 4] = [3, 4, 8, 9];

fn print_cells(report: &InvariantReport, elapsed_s: f64) {
    for cell in &report.cells {
        let verdict = if cell.violations.is_empty() {
            "ok  "
        } else {
            "FAIL"
        };
        println!("  {verdict} seed={:<3} {}", cell.seed, cell.schedule);
    }
    for line in report.reproducers() {
        println!("{line}");
    }
    println!(
        "\n{} cells, {} violations in {elapsed_s:.1}s",
        report.cells.len(),
        report.violation_count(),
    );
}

fn main() -> ExitCode {
    let jobs = sweep::jobs_from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let mut config = if quick {
        SoakConfig::new(QUICK_SEEDS.to_vec())
    } else {
        SoakConfig::default_seeds()
    };
    config.jobs = jobs;
    config.trace_dir = Some("results".into());

    println!(
        "Chaos soak: {} seeded fault schedules through the UDP \
         client/server/proxy stack\n",
        config.seeds.len()
    );
    let started = Instant::now();
    let report = run_soak(&config);
    print_cells(&report, started.elapsed().as_secs_f64());
    sweep::write_results("chaos_soak", &report.to_json());

    let mut overload_config = if quick {
        SoakConfig::new(DEFAULT_OVERLOAD_SEEDS[..1].to_vec())
    } else {
        SoakConfig::default_overload_seeds()
    };
    overload_config.jobs = jobs;
    overload_config.trace_dir = Some("results".into());

    println!(
        "\nOverload regime: {} seeded demand storms against a \
         capacity-capped server\n",
        overload_config.seeds.len()
    );
    let overload_started = Instant::now();
    let overload_report = run_overload_soak(&overload_config);
    print_cells(&overload_report, overload_started.elapsed().as_secs_f64());
    sweep::write_results("chaos_overload", &overload_report.to_json());

    espread_bench::write_telemetry_snapshot("chaos_soak");
    if report.is_clean() && overload_report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
