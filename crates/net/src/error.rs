//! Transport-level errors.

use std::error::Error;
use std::fmt;
use std::io;

use crate::wire::WireError;

/// Anything that can go wrong running the protocol over real sockets.
#[derive(Debug)]
pub enum NetError {
    /// An operating-system socket error.
    Io(io::Error),
    /// The configuration is internally inconsistent (field named in the
    /// message).
    Config(String),
    /// The server rejected the handshake, with its stated reason.
    Rejected(String),
    /// The server is at its admission cap (`Msg::Busy`); retrying after
    /// the stated wait (with the client's own jitter) may succeed. This
    /// is surfaced only once the handshake's retry budget — which honors
    /// the server's retry-after between attempts — is exhausted.
    ServerBusy {
        /// The server's last suggested wait, in milliseconds.
        retry_after_ms: u32,
    },
    /// The handshake exhausted its retries without an answer.
    HandshakeTimeout,
    /// The stream stalled past the client's overall deadline.
    StreamTimeout,
    /// The peer spoke the protocol wrongly (a decodable but out-of-place
    /// or internally inconsistent message).
    Protocol(String),
    /// A datagram failed to decode (only surfaced where a first reply
    /// *must* be well-formed; data-path decode errors are counted and
    /// skipped instead).
    Wire(WireError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Config(why) => write!(f, "invalid configuration: {why}"),
            NetError::Rejected(why) => write!(f, "server rejected session: {why}"),
            NetError::ServerBusy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms} ms")
            }
            NetError::HandshakeTimeout => f.write_str("handshake timed out"),
            NetError::StreamTimeout => f.write_str("stream timed out"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::Wire(e) => write!(f, "malformed datagram: {e}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(NetError, &str)> = vec![
            (NetError::Io(io::Error::other("x")), "socket error"),
            (NetError::Config("bad".into()), "invalid configuration"),
            (NetError::Rejected("no".into()), "rejected"),
            (
                NetError::ServerBusy {
                    retry_after_ms: 250,
                },
                "server busy",
            ),
            (NetError::HandshakeTimeout, "handshake"),
            (NetError::StreamTimeout, "stream timed out"),
            (NetError::Protocol("odd".into()), "protocol violation"),
            (NetError::Wire(WireError::BadMagic(3)), "malformed datagram"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn sources_chain() {
        let e = NetError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        let e = NetError::from(WireError::TrailingBytes(1));
        assert!(e.source().is_some());
        assert!(NetError::HandshakeTimeout.source().is_none());
    }
}
