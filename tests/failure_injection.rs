//! Failure-injection tests: the protocol must stay sane at the extremes —
//! dead feedback paths, total loss, absurd fragmentation, degenerate
//! windows.

use error_spreading::netsim::SimDuration;
use error_spreading::prelude::*;
use error_spreading::protocol::Recovery;

fn mpeg_source(windows: usize) -> StreamSource {
    let trace = MpegTrace::new(Movie::JurassicPark, 1);
    StreamSource::mpeg(&trace, 2, windows, false)
}

#[test]
fn dead_data_path_loses_every_window() {
    // GOOD state unreachable: every packet dies.
    let mut cfg = ProtocolConfig::paper(1.0, 3);
    cfg.p_good = 0.0;
    cfg.p_bad = 1.0;
    let report = Session::new(cfg, mpeg_source(10)).run();
    for m in report.series.windows() {
        assert_eq!(m.lost(), m.window_len());
        assert_eq!(m.clf(), m.window_len());
    }
    assert_eq!(report.packets_lost, report.packets_offered);
}

#[test]
fn dead_feedback_path_only_stalls_adaptation() {
    // The forward path works; the reverse path never delivers. Estimates
    // must stay at the prior and streaming must continue unharmed.
    let mut cfg = ProtocolConfig::paper(0.6, 5);
    cfg.feedback_bandwidth_bps = 1; // ~infinite serialisation: ACKs never land in time
    let report = Session::new(cfg, mpeg_source(15)).run();
    assert_eq!(report.series.len(), 15);
    let first = report.estimate_history.first().unwrap().clone();
    let last = report.estimate_history.last().unwrap().clone();
    assert_eq!(first, last, "no feedback ⇒ no adaptation");
    // Spreading still works off the prior.
    assert!(report.summary().mean_clf < 24.0);
}

#[test]
fn retransmission_with_dead_reverse_path_degrades_to_plain() {
    let mut cfg = ProtocolConfig::paper(0.7, 5).with_recovery(Recovery::Retransmit);
    cfg.feedback_bandwidth_bps = 1;
    let report = Session::new(cfg, mpeg_source(10)).run();
    // NACKs never arrive, so nothing is retransmitted — but nothing breaks.
    assert_eq!(report.retransmissions, 0);
    assert_eq!(report.series.len(), 10);
}

#[test]
fn extreme_fragmentation_still_round_trips() {
    // 64-byte packets: every frame becomes dozens of fragments.
    let mut cfg = ProtocolConfig::paper(0.0, 1).with_bandwidth(50_000_000);
    cfg.p_good = 1.0;
    cfg.p_bad = 0.0;
    cfg.packet_bytes = 64;
    let report = Session::new(cfg, mpeg_source(5)).run();
    assert_eq!(report.summary().total_lost, 0);
    assert!(
        report.packets_offered > 500,
        "fragmentation must multiply packets"
    );
}

#[test]
fn single_gop_single_window_works() {
    let trace = MpegTrace::new(Movie::JurassicPark, 2);
    let src = StreamSource::mpeg(&trace, 1, 1, false);
    let report = Session::new(ProtocolConfig::paper(0.6, 2), src).run();
    assert_eq!(report.series.len(), 1);
}

#[test]
fn tiny_audio_windows_work() {
    // Window of 2 LDUs: the permutation space is trivial but nothing panics.
    let src = StreamSource::audio(AudioStream::sun_audio(), 2, 8);
    let mut cfg = ProtocolConfig::paper(0.6, 4);
    cfg.fps = 30;
    let report = Session::new(cfg, src).run();
    assert_eq!(report.series.len(), 8);
}

#[test]
fn zero_loss_zero_everything() {
    let mut cfg = ProtocolConfig::paper(0.0, 9).with_recovery(Recovery::Fec { group: 3 });
    cfg.p_good = 1.0;
    cfg.p_bad = 0.0;
    let report = Session::new(cfg, mpeg_source(5)).run();
    assert_eq!(report.summary().total_lost, 0);
    assert_eq!(report.fec_recovered, 0);
    assert_eq!(report.critical_lost, 0);
    assert_eq!(report.timing.late_frames, 0);
}

#[test]
fn giant_jitter_with_losses_stays_consistent() {
    let cfg = ProtocolConfig::paper(0.7, 12).with_jitter(SimDuration::from_millis(200));
    let report = Session::new(cfg, mpeg_source(12)).run();
    assert_eq!(report.series.len(), 12);
    for m in report.series.windows() {
        assert!(m.clf() <= m.lost());
    }
}

#[test]
fn bandwidth_starvation_prioritises_anchors() {
    // At 30 kbps (< half the stream rate) most of the window is dropped;
    // the layered order must keep anchors alive preferentially.
    let cfg = ProtocolConfig::paper(0.0, 1).with_bandwidth(30_000);
    let mut cfg = cfg;
    cfg.p_good = 1.0;
    cfg.p_bad = 0.0;
    let report = Session::new(cfg, mpeg_source(10)).run();
    assert!(report.dropped_frames > 0);
    let overall_loss = report.summary().total_lost as f64 / (report.series.len() * 24) as f64;
    assert!(
        report.critical_loss_rate() < overall_loss,
        "anchors must fare better than average: {} !< {overall_loss}",
        report.critical_loss_rate()
    );
}

#[test]
fn estimator_saturates_gracefully_under_total_loss_feedback() {
    // Estimates are clamped to layer lengths even if the observed bursts
    // equal the full window repeatedly.
    let mut cfg = ProtocolConfig::paper(0.97, 8);
    cfg.p_good = 0.5; // heavy, highly bursty loss
    let report = Session::new(cfg, mpeg_source(30)).run();
    for estimates in &report.estimate_history {
        for &e in estimates {
            assert!(e.is_finite() && e >= 0.0);
        }
    }
}
