//! The common prioritised frame buffer between FileSegment and PktSrc.
//!
//! In CMT, cmFileSegment "reads the file in, decodes it into separate
//! frames, prioritizes and reorders the frames based on frame types and
//! puts them into a common buffer"; PktSrc later "picks up frames from the
//! common buffer" and "can drop a set of low priority frames". Frame
//! priority: "All I frames have highest priority, P frames are lower, and
//! B frames are lowest" (§4.4).

use espread_trace::{Frame, FrameType};

/// A frame staged for transmission, with its CMT priority class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedFrame {
    /// The underlying trace frame (playout index, type, size).
    pub frame: Frame,
    /// Priority class: 0 = I (highest), 1 = P, 2 = B.
    pub priority: u8,
    /// Playout deadline in microseconds (frames past it are useless).
    pub deadline_us: u64,
}

/// Priority class of a frame type (lower = more important).
pub fn priority_of(t: FrameType) -> u8 {
    match t {
        FrameType::I => 0,
        FrameType::P => 1,
        FrameType::B => 2,
    }
}

/// The common buffer: one buffer-window's frames, priority-ordered.
#[derive(Debug, Clone, Default)]
pub struct PriorityBuffer {
    frames: Vec<BufferedFrame>,
}

impl PriorityBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages a frame with its playout deadline.
    pub fn push(&mut self, frame: Frame, deadline_us: u64) {
        self.frames.push(BufferedFrame {
            priority: priority_of(frame.frame_type),
            frame,
            deadline_us,
        });
    }

    /// Number of staged frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Drops frames whose playback deadline has elapsed; returns how many
    /// were discarded ("frame dropping can potentially occur at any of the
    /// objects … if a frame playback deadline has elapsed").
    pub fn expire(&mut self, now_us: u64) -> usize {
        let before = self.frames.len();
        self.frames.retain(|f| f.deadline_us > now_us);
        before - self.frames.len()
    }

    /// Drains the buffer in priority order (I, then P, then B), stable by
    /// playout index within a class. This is the order PktSrc considers
    /// frames for transmission and the order in which it *keeps* frames
    /// when bandwidth runs short.
    pub fn drain_prioritised(&mut self) -> Vec<BufferedFrame> {
        let mut out = std::mem::take(&mut self.frames);
        out.sort_by_key(|f| (f.priority, f.frame.index));
        out
    }

    /// The staged frames of one priority class, in playout order.
    pub fn of_class(&self, priority: u8) -> Vec<BufferedFrame> {
        let mut out: Vec<BufferedFrame> = self
            .frames
            .iter()
            .copied()
            .filter(|f| f.priority == priority)
            .collect();
        out.sort_by_key(|f| f.frame.index);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(index: usize, t: FrameType) -> Frame {
        Frame {
            index,
            frame_type: t,
            size_bytes: 100,
        }
    }

    #[test]
    fn priorities_match_cmt() {
        assert_eq!(priority_of(FrameType::I), 0);
        assert_eq!(priority_of(FrameType::P), 1);
        assert_eq!(priority_of(FrameType::B), 2);
    }

    #[test]
    fn drain_orders_by_class_then_index() {
        let mut buf = PriorityBuffer::new();
        buf.push(frame(1, FrameType::B), 1000);
        buf.push(frame(0, FrameType::I), 1000);
        buf.push(frame(3, FrameType::P), 1000);
        buf.push(frame(2, FrameType::B), 1000);
        buf.push(frame(6, FrameType::P), 1000);
        let order: Vec<usize> = buf
            .drain_prioritised()
            .iter()
            .map(|f| f.frame.index)
            .collect();
        assert_eq!(order, vec![0, 3, 6, 1, 2]);
        assert!(buf.is_empty());
    }

    #[test]
    fn expiry_drops_late_frames() {
        let mut buf = PriorityBuffer::new();
        buf.push(frame(0, FrameType::I), 500);
        buf.push(frame(1, FrameType::B), 1500);
        assert_eq!(buf.expire(1000), 1);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.of_class(2)[0].frame.index, 1);
    }

    #[test]
    fn class_selection() {
        let mut buf = PriorityBuffer::new();
        buf.push(frame(4, FrameType::B), 1000);
        buf.push(frame(1, FrameType::B), 1000);
        buf.push(frame(0, FrameType::I), 1000);
        let bs = buf.of_class(2);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].frame.index, 1);
        assert_eq!(bs[1].frame.index, 4);
    }
}
