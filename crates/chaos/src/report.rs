//! Invariant reports and minimized reproducer lines.
//!
//! The report is the soak's *only* output surface, and it is part of the
//! determinism contract: the same seed list must render to a
//! byte-identical document for any worker count and any rerun. To keep
//! that promise, cells record only deterministic facts — violation
//! strings and, for compare-mode cells, the CLF realisation — never
//! wall-clock-dependent counters such as retry tallies.

use espread_exec::Json;

/// What a compare-mode cell measured on its matched channel realisation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareOutcome {
    /// Per-window CLF under the spread ordering.
    pub spread_clf: Vec<usize>,
    /// Per-window CLF under the in-order ordering, same realisation.
    pub inorder_clf: Vec<usize>,
    /// Per-window CLF under spread + critical-layer FEC, same channel
    /// seed (parity datagrams step the chain, so the realisation is
    /// seed-matched rather than drop-for-drop identical).
    pub fec_clf: Vec<usize>,
    /// Mean CLF under spread.
    pub spread_mean_clf: f64,
    /// Mean CLF under in-order.
    pub inorder_mean_clf: f64,
    /// Mean CLF under spread + FEC; must not exceed `spread_mean_clf`.
    pub fec_mean_clf: f64,
    /// Data datagrams the proxy's channel swallowed (identical for both
    /// orderings by construction — asserted as an invariant).
    pub dropped_data: u64,
    /// Parity datagrams the channel swallowed on the FEC arm.
    pub dropped_parity: u64,
    /// Fragments the FEC arm's client repaired from parity.
    pub fec_recovered: u64,
}

/// One cell's verdict: the schedule it ran, and every invariant it broke.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The seed the cell's schedule was derived from.
    pub seed: u64,
    /// The cell's index in the seed list.
    pub index: usize,
    /// [`crate::FaultSchedule::summary`] of the derived schedule.
    pub schedule: String,
    /// Every invariant violation observed (empty = clean cell).
    pub violations: Vec<String>,
    /// Compare-mode measurements, when the cell ran in that regime.
    pub compare: Option<CompareOutcome>,
    /// Path of the cell's flight-recorder dump, when the soak was
    /// configured with a trace directory. The path is seed-derived (so
    /// the report stays deterministic); the dump itself holds wall-clock
    /// timestamps and is *not* part of the byte-identical contract.
    pub trace: Option<String>,
}

impl CellReport {
    /// One minimized reproducer line per violation: everything needed to
    /// re-create the failing cell (`seed` regenerates the schedule;
    /// `cell` pins the executor index; the summary is for humans).
    pub fn reproducers(&self) -> impl Iterator<Item = String> + '_ {
        self.violations.iter().map(move |viol| {
            let trace = match &self.trace {
                Some(path) => format!(" trace={path}"),
                None => String::new(),
            };
            format!(
                "REPRODUCER seed={} cell={} schedule={}{} :: {}",
                self.seed, self.index, self.schedule, trace, viol
            )
        })
    }

    fn to_json(&self) -> Json {
        let mut cell = Json::object();
        cell.push("seed", self.seed)
            .push("cell", self.index)
            .push("schedule", self.schedule.as_str())
            .push(
                "violations",
                Json::Array(
                    self.violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            );
        match &self.trace {
            None => cell.push("trace", Json::Null),
            Some(path) => cell.push("trace", path.as_str()),
        };
        match &self.compare {
            None => cell.push("compare", Json::Null),
            Some(c) => {
                let mut cmp = Json::object();
                cmp.push(
                    "spread_clf",
                    Json::Array(c.spread_clf.iter().map(|&v| Json::Int(v as i64)).collect()),
                )
                .push(
                    "inorder_clf",
                    Json::Array(c.inorder_clf.iter().map(|&v| Json::Int(v as i64)).collect()),
                )
                .push(
                    "fec_clf",
                    Json::Array(c.fec_clf.iter().map(|&v| Json::Int(v as i64)).collect()),
                )
                .push("spread_mean_clf", c.spread_mean_clf)
                .push("inorder_mean_clf", c.inorder_mean_clf)
                .push("fec_mean_clf", c.fec_mean_clf)
                .push("dropped_data", c.dropped_data)
                .push("dropped_parity", c.dropped_parity)
                .push("fec_recovered", c.fec_recovered);
                cell.push("compare", cmp)
            }
        };
        cell
    }
}

/// The whole soak's verdict, one entry per seed, in seed-list order.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantReport {
    /// Experiment tag rendered at the top of the JSON document —
    /// `"chaos_soak"` for the fault soak, `"chaos_overload"` for the
    /// overload regime. Keeping the two in separate documents is what
    /// lets the overload regime exist without touching a byte of the
    /// existing soak artifact.
    pub experiment: &'static str,
    /// Per-cell reports, in the order the seeds were given.
    pub cells: Vec<CellReport>,
}

impl Default for InvariantReport {
    fn default() -> Self {
        InvariantReport::new(Vec::new())
    }
}

impl InvariantReport {
    /// Wraps executor output (already in cell order) into a report.
    pub fn new(cells: Vec<CellReport>) -> Self {
        InvariantReport::with_experiment("chaos_soak", cells)
    }

    /// Like [`InvariantReport::new`] with an explicit experiment tag.
    pub fn with_experiment(experiment: &'static str, cells: Vec<CellReport>) -> Self {
        InvariantReport { experiment, cells }
    }

    /// Total violations across all cells.
    pub fn violation_count(&self) -> usize {
        self.cells.iter().map(|c| c.violations.len()).sum()
    }

    /// Whether every invariant held in every cell.
    pub fn is_clean(&self) -> bool {
        self.violation_count() == 0
    }

    /// Every reproducer line, in cell order.
    pub fn reproducers(&self) -> Vec<String> {
        self.cells
            .iter()
            .flat_map(CellReport::reproducers)
            .collect()
    }

    /// Deterministic JSON document. The `"violations"` total sits near
    /// the top so CI can gate on a plain `grep '"violations": 0,'`.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.push("experiment", self.experiment)
            .push("seeds", self.cells.len())
            .push("violations", self.violation_count() as i64)
            .push(
                "cells",
                Json::Array(self.cells.iter().map(CellReport::to_json).collect()),
            );
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvariantReport {
        InvariantReport::new(vec![
            CellReport {
                seed: 11,
                index: 0,
                schedule: "mode=compare windows=3 gops=1".into(),
                violations: vec![],
                compare: Some(CompareOutcome {
                    spread_clf: vec![0, 2],
                    inorder_clf: vec![0, 3],
                    fec_clf: vec![0, 1],
                    spread_mean_clf: 1.0,
                    inorder_mean_clf: 1.5,
                    fec_mean_clf: 0.5,
                    dropped_data: 9,
                    dropped_parity: 2,
                    fec_recovered: 3,
                }),
                trace: None,
            },
            CellReport {
                seed: 13,
                index: 1,
                schedule: "mode=full windows=4 gops=2 trunc=3".into(),
                violations: vec!["conservation law broken".into(), "panicked: boom".into()],
                compare: None,
                trace: Some("results/timeline_seed13.jsonl".into()),
            },
        ])
    }

    #[test]
    fn counts_and_cleanliness() {
        let report = sample();
        assert_eq!(report.violation_count(), 2);
        assert!(!report.is_clean());
        assert!(InvariantReport::default().is_clean());
    }

    #[test]
    fn reproducer_lines_carry_seed_cell_and_schedule() {
        let lines = sample().reproducers();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "REPRODUCER seed=13 cell=1 schedule=mode=full windows=4 gops=2 trunc=3 \
             trace=results/timeline_seed13.jsonl :: conservation law broken"
        );
        assert!(lines[1].ends_with(":: panicked: boom"));
    }

    #[test]
    fn json_shape_is_grep_gateable() {
        let text = sample().to_json().render_pretty();
        assert!(text.starts_with("{\n  \"experiment\": \"chaos_soak\",\n"));
        assert!(text.contains("\"violations\": 2,"));
        assert!(text.contains("\"compare\": null"));
        assert!(text.contains("\"dropped_data\": 9"));
        assert!(text.contains("\"fec_mean_clf\": 0.5"));
        assert!(text.contains("\"fec_recovered\": 3"));
        assert!(text.contains("\"trace\": null"));
        assert!(text.contains("\"trace\": \"results/timeline_seed13.jsonl\""));
        // A clean soak renders the exact token the CI gate greps for.
        let clean = InvariantReport::new(vec![CellReport {
            seed: 1,
            index: 0,
            schedule: "mode=control windows=3 gops=1".into(),
            violations: vec![],
            compare: None,
            trace: None,
        }]);
        assert!(clean
            .to_json()
            .render_pretty()
            .contains("\"violations\": 0,"));
    }

    #[test]
    fn overload_reports_carry_their_own_experiment_tag() {
        let report = InvariantReport::with_experiment("chaos_overload", vec![]);
        let text = report.to_json().render_pretty();
        assert!(text.starts_with("{\n  \"experiment\": \"chaos_overload\",\n"));
        assert!(text.contains("\"violations\": 0,"));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(
            sample().to_json().render_pretty(),
            sample().to_json().render_pretty()
        );
    }
}
