//! Causal session timelines from flight-recorder dumps.
//!
//! ```sh
//! # Record one proxy-faulted session, dump the trio, reconstruct:
//! cargo run --release -p espread-bench --bin timeline
//!
//! # Re-validate existing dumps (e.g. the chaos soak's):
//! cargo run --release -p espread-bench --bin timeline -- \
//!     --check results/timeline_seed*.jsonl
//! ```
//!
//! The live mode streams Jurassic Park through a seeded Gilbert–Elliott
//! proxy with server, proxy, and client each recording into one
//! `espread_obs::trio`, dumps all three rings to
//! `results/timeline_session.jsonl`, re-parses that file, and
//! reconstructs the causal timeline from the bytes on disk. It exits
//! nonzero unless **every** residual loss is attributed to a concrete
//! cause, causality holds (nothing delivered before it was sent), and
//! the reconstructed per-window CLF reproduces what the client's own
//! `espread-qos` series measured on the same realisation. The summary
//! artifact `results/timeline.json` keeps only realisation-derived
//! facts (no latencies), so it is byte-identical across reruns.
//!
//! `--check` skips the live session and just parses + reconstructs each
//! given dump, exiting nonzero on unattributed losses, causality
//! violations, or malformed files.

use std::process::ExitCode;

use espread_bench::sweep;
use espread_exec::Json;
use espread_obs::{parse_json_lines, reconstruct, Cause, TimelineReport, ALL_CAUSES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        return check_dumps(&args[1..]);
    }
    live()
}

/// Parse + reconstruct pre-recorded dumps; nonzero exit on any breakage.
fn check_dumps(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: timeline --check <dump.jsonl>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                println!("FAIL {path}: {e}");
                failed = true;
                continue;
            }
        };
        let recordings = match parse_json_lines(&text) {
            Ok(recordings) => recordings,
            Err(e) => {
                println!("FAIL {path}: {e}");
                failed = true;
                continue;
            }
        };
        let timeline = reconstruct(&recordings);
        let windows: usize = timeline.sessions.iter().map(|s| s.windows.len()).sum();
        if timeline.is_clean() {
            println!(
                "ok   {path}: {} recordings, {} session(s), {windows} windows, \
                 {} lost ({} recovered), all attributed",
                recordings.len(),
                timeline.sessions.len(),
                timeline.total_lost(),
                timeline.total_recovered(),
            );
        } else {
            println!("FAIL {path}:");
            for viol in &timeline.violations {
                println!("  {viol}");
            }
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One recorded live session; see the module docs.
fn live() -> ExitCode {
    const SEED: u64 = 42;
    const WINDOWS: usize = 8;
    println!(
        "Timeline: one {WINDOWS}-window session through a seeded lossy proxy \
         (seed {SEED}), flight-recorded at all three nodes\n"
    );

    let (measured_clf, dump) = match session::run(SEED, WINDOWS) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("session failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The reconstruction input is the dump *file*, so the artifact
    // certifies the full record → dump → parse → attribute pipeline.
    let dump_path = "results/timeline_session.jsonl";
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(dump_path, &dump))
    {
        eprintln!("could not write {dump_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("trace dump written to {dump_path}");
    let text = std::fs::read_to_string(dump_path).expect("just written");
    let recordings = match parse_json_lines(&text) {
        Ok(recordings) => recordings,
        Err(e) => {
            eprintln!("dump round-trip failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let timeline = reconstruct(&recordings);

    let mut ok = timeline.is_clean();
    for viol in &timeline.violations {
        println!("VIOLATION {viol}");
    }
    let reconstructed: Vec<usize> = timeline
        .sessions
        .iter()
        .flat_map(|s| s.clf_values())
        .collect();
    if reconstructed != measured_clf {
        println!(
            "VIOLATION reconstructed CLF {reconstructed:?} disagrees with the \
             client-measured {measured_clf:?}"
        );
        ok = false;
    }

    for session in &timeline.sessions {
        println!("session {} conn {}:", session.session, session.conn);
        for w in &session.windows {
            println!(
                "  window {:>2}: {:>2}/{} lost, clf={}, bursts={:?}, gaps={:?}",
                w.window, w.lost, w.frames_total, w.clf, w.burst_lengths, w.gap_lengths
            );
        }
        for &(cause, n) in &session.cause_totals {
            if n > 0 {
                println!("  {:>18}: {n}", cause.as_str());
            }
        }
    }
    println!(
        "\n{} lost, {} recovered, {} violations — CLF cross-check {}",
        timeline.total_lost(),
        timeline.total_recovered(),
        timeline.violations.len(),
        if reconstructed == measured_clf {
            "passed"
        } else {
            "FAILED"
        }
    );

    sweep::write_results(
        "timeline",
        &artifact(SEED, &timeline, reconstructed == measured_clf),
    );
    espread_bench::write_telemetry_snapshot("timeline");
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The deterministic summary: realisation-derived facts only — no
/// latencies, no timestamps.
fn artifact(seed: u64, timeline: &TimelineReport, clf_match: bool) -> Json {
    let mut doc = Json::object();
    doc.push("experiment", "timeline")
        .push("seed", seed)
        .push("violations", timeline.violations.len() as i64)
        .push("clf_match", clf_match)
        .push("lost", timeline.total_lost() as i64)
        .push("recovered", timeline.total_recovered() as i64);
    let mut causes = Json::object();
    for &cause in &ALL_CAUSES {
        let total: usize = timeline
            .sessions
            .iter()
            .flat_map(|s| &s.cause_totals)
            .filter(|&&(c, _)| c == cause)
            .map(|&(_, n)| n)
            .sum();
        causes.push(Cause::as_str(cause), total as i64);
    }
    doc.push("causes", causes);
    let mut windows = Vec::new();
    for session in &timeline.sessions {
        for w in &session.windows {
            let mut row = Json::object();
            row.push("window", w.window)
                .push("frames", w.frames_total as i64)
                .push("lost", w.lost as i64)
                .push("clf", w.clf as i64)
                .push(
                    "bursts",
                    Json::Array(
                        w.burst_lengths
                            .iter()
                            .map(|&b| Json::Int(b as i64))
                            .collect(),
                    ),
                )
                .push(
                    "gaps",
                    Json::Array(w.gap_lengths.iter().map(|&g| Json::Int(g as i64)).collect()),
                );
            windows.push(row);
        }
    }
    doc.push("windows", Json::Array(windows));
    doc
}

#[cfg(feature = "telemetry")]
mod session {
    use std::time::Duration;

    use espread_net::{
        FaultPolicy, FaultProxy, NetClient, NetClientConfig, NetServer, NetServerConfig,
        RetryPolicy, SessionRecorder,
    };
    use espread_obs::{all_to_json_lines, trio, DEFAULT_CAPACITY};
    use espread_protocol::{FecPolicy, ProtocolConfig, SessionOffer, StreamSource};
    use espread_trace::{GopPattern, Movie, MpegTrace};

    /// Runs the recorded session; returns the client-measured per-window
    /// CLF values and the trio's JSONL dump.
    pub fn run(seed: u64, windows: usize) -> Result<(Vec<usize>, String), String> {
        let (srec, prec, crec) = trio(DEFAULT_CAPACITY, 0);
        let trace = MpegTrace::new(Movie::JurassicPark, 1);
        let offer = SessionOffer {
            gop_pattern: GopPattern::gop12(),
            gops_per_window: 2,
            open_gop: false,
            fps: 24,
            packet_bytes: 2048,
            max_frame_bytes: 62_776 / 8,
            fec: FecPolicy::off(),
        };
        let mut server_config = NetServerConfig::new(
            ProtocolConfig::paper(0.6, 1),
            offer,
            StreamSource::mpeg(&trace, 2, windows, false),
        );
        server_config.recorder = SessionRecorder::attached(srec.clone());
        let mut server =
            NetServer::bind("127.0.0.1:0", server_config).map_err(|e| e.to_string())?;
        let mut proxy = FaultProxy::spawn_with_recorder(
            server.local_addr(),
            FaultPolicy::transparent().gilbert_data_loss(0.92, 0.6, seed),
            FaultPolicy::transparent(),
            SessionRecorder::attached(prec.clone()),
        )
        .map_err(|e| e.to_string())?;
        let client_config = NetClientConfig {
            recovery: true,
            retry: RetryPolicy {
                max_attempts: 6,
                base: Duration::from_millis(20),
                max: Duration::from_millis(200),
            },
            recorder: SessionRecorder::attached(crec.clone()),
            ..NetClientConfig::default()
        };
        let report = NetClient::connect(proxy.client_addr(), client_config)
            .and_then(|client| client.stream());
        proxy.shutdown();
        server.shutdown();
        let report = report.map_err(|e| e.to_string())?;
        if report.windows_completed != windows {
            return Err(format!(
                "only {}/{} windows completed",
                report.windows_completed, windows
            ));
        }
        let recordings = vec![srec.recording(), prec.recording(), crec.recording()];
        Ok((
            report.series.clf_values().collect(),
            all_to_json_lines(&recordings),
        ))
    }
}

#[cfg(not(feature = "telemetry"))]
mod session {
    /// Without the `telemetry` feature nothing records; the live mode
    /// cannot run (use `--check` on existing dumps instead).
    pub fn run(_seed: u64, _windows: usize) -> Result<(Vec<usize>, String), String> {
        Err("the live timeline mode needs the `telemetry` feature \
             (use --check <dump.jsonl> instead)"
            .into())
    }
}
