//! The metrics registry and its instrument handles.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::event::Event;
use crate::hist::{HistogramCore, HistogramSnapshot};

/// Default upper bound on retained events; beyond it new events are
/// counted as dropped rather than growing without bound. Override per
/// registry with [`Registry::with_event_cap`].
const EVENT_CAP: usize = 65_536;

/// A monotone counter handle (cloning shares the underlying cell).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle storing an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log-linear histogram handle (see [`crate::hist`] for bucketing).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Times `f` and records the elapsed wall-clock nanoseconds.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed().as_nanos() as u64);
        out
    }

    /// Folds a [`HistogramSnapshot`] into this live histogram —
    /// bucket-wise addition, widening min/max. Used by
    /// [`Registry::absorb`] to merge per-worker deltas at thread join.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        self.0.absorb(snap);
    }

    /// Starts an RAII span: the guard records elapsed nanoseconds into
    /// this histogram when dropped.
    pub fn start_timer(&self) -> SpanGuard {
        SpanGuard {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// A point-in-time copy of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// RAII span guard from [`Histogram::start_timer`].
#[derive(Debug)]
pub struct SpanGuard {
    hist: Histogram,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

#[derive(Debug)]
struct Inner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    events: Mutex<Vec<Event>>,
    events_dropped: AtomicU64,
    event_cap: usize,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            counters: RwLock::default(),
            gauges: RwLock::default(),
            histograms: RwLock::default(),
            events: Mutex::default(),
            events_dropped: AtomicU64::new(0),
            event_cap: EVENT_CAP,
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }
}

/// A registry of named instruments plus an event log.
///
/// Cloning is cheap and shares state. Lookup by name takes a short
/// read-lock; keep the returned handle for hot paths.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

macro_rules! instrument_accessor {
    ($fn_name:ident, $map:ident, $ty:ident, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name(&self, name: &str) -> $ty {
            if let Some(existing) = read_lock(&self.inner.$map).get(name) {
                return existing.clone();
            }
            write_lock(&self.inner.$map)
                .entry(name.to_string())
                .or_default()
                .clone()
        }
    };
}

// Lock acquisition with poison recovery: the registry is shared by every
// instrumented thread (including the net server's per-session workers), so
// one panicking thread must not cascade-poison telemetry for the rest of
// the process. All registry state stays consistent under a recovered
// guard — counters/gauges/histograms are atomics and the maps/event log
// are only ever mutated by single infallible operations.
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

fn mutex_lock<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Creates an empty registry whose event log retains at most `cap`
    /// events (further [`emit`](Registry::emit)s are counted as dropped,
    /// exactly once each). The default cap is 65 536.
    pub fn with_event_cap(cap: usize) -> Self {
        Registry {
            inner: Arc::new(Inner {
                event_cap: cap,
                ..Inner::default()
            }),
        }
    }

    /// The event-log retention cap.
    pub fn event_cap(&self) -> usize {
        self.inner.event_cap
    }

    instrument_accessor!(
        counter,
        counters,
        Counter,
        "Returns (registering on first use) the named counter."
    );
    instrument_accessor!(
        gauge,
        gauges,
        Gauge,
        "Returns (registering on first use) the named gauge."
    );
    instrument_accessor!(
        histogram,
        histograms,
        Histogram,
        "Returns (registering on first use) the named histogram."
    );

    /// Appends an event to the log (dropped and counted once the cap is
    /// reached).
    pub fn emit(&self, event: Event) {
        let mut events = mutex_lock(&self.inner.events);
        if events.len() < self.inner.event_cap {
            events.push(event);
        } else {
            self.inner.events_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A copy of the event log.
    pub fn events(&self) -> Vec<Event> {
        mutex_lock(&self.inner.events).clone()
    }

    /// Folds a [`Snapshot`] (typically taken from a worker thread's
    /// private registry) into this live registry: counters add, gauges
    /// take the snapshot's value, histograms merge bucket-wise, events
    /// append. This is how a parallel executor merges per-worker telemetry
    /// deltas **once at join** instead of contending on shared atomics in
    /// the hot loop.
    pub fn absorb(&self, snap: &Snapshot) {
        for (name, v) in &snap.counters {
            self.counter(name).add(*v);
        }
        for (name, v) in &snap.gauges {
            self.gauge(name).set(*v);
        }
        for (name, h) in &snap.histograms {
            self.histogram(name).absorb(h);
        }
        {
            let mut events = mutex_lock(&self.inner.events);
            for event in &snap.events {
                if events.len() < self.inner.event_cap {
                    events.push(event.clone());
                } else {
                    self.inner.events_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.inner
            .events_dropped
            .fetch_add(snap.events_dropped, Ordering::Relaxed);
    }

    /// Reads every instrument and the event log into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: read_lock(&self.inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: read_lock(&self.inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: read_lock(&self.inner.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            events: self.events(),
            events_dropped: self.inner.events_dropped.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide default registry, used by instrumentation that has no
/// natural place to thread a handle through (free functions, loss models).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

thread_local! {
    /// Stack of thread-local registry overrides (see [`with_current`]).
    static CURRENT: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
}

/// Pops the thread-local override on scope exit, including unwinds.
struct CurrentGuard;

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `registry` installed as this thread's [`current`]
/// registry. Overrides nest (a stack) and are restored on exit, including
/// panics. Instrumentation that resolves its registry through [`current`]
/// — the per-crate telemetry shims — records into `registry` for the
/// duration, letting a parallel executor give each worker thread a
/// private registry and merge the deltas once at join.
pub fn with_current<R>(registry: &Registry, f: impl FnOnce() -> R) -> R {
    CURRENT.with(|stack| stack.borrow_mut().push(registry.clone()));
    let _guard = CurrentGuard;
    f()
}

/// This thread's effective registry: the innermost [`with_current`]
/// override, or [`global`] when none is installed.
pub fn current() -> Registry {
    CURRENT
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(|| global().clone())
}

/// A point-in-time copy of a whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` for every histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// The event log at snapshot time.
    pub events: Vec<Event>,
    /// Events discarded because the log cap was reached.
    pub events_dropped: u64,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value (latest wins), histograms merge bucket-wise, events append.
    pub fn merge(&mut self, other: &Snapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, v) in &other.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, f64> = self.gauges.drain(..).collect();
        for (name, v) in &other.gauges {
            gauges.insert(name.clone(), *v);
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.drain(..).collect();
        for (name, h) in &other.histograms {
            histograms.entry(name.clone()).or_default().merge(h);
        }
        self.histograms = histograms.into_iter().collect();

        self.events.extend(other.events.iter().cloned());
        self.events_dropped += other.events_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_register_once() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn gauge_stores_last_value() {
        let r = Registry::new();
        let g = r.gauge("alf");
        g.set(0.25);
        g.set(0.5);
        assert_eq!(r.snapshot().gauge("alf"), Some(0.5));
    }

    #[test]
    fn span_guard_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("span.ns");
        {
            let _guard = h.start_timer();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.bucket_total(), 1);
    }

    #[test]
    fn time_returns_closure_value() {
        let r = Registry::new();
        let h = r.histogram("f.ns");
        assert_eq!(h.time(|| 41 + 1), 42);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn snapshot_merge_combines_all_instrument_kinds() {
        let a = Registry::new();
        a.counter("c").add(1);
        a.gauge("g").set(1.0);
        a.histogram("h").record(5);
        a.emit(Event::WindowMetrics {
            window: 0,
            lost: 1,
            window_len: 4,
            clf: 1,
        });

        let b = Registry::new();
        b.counter("c").add(2);
        b.counter("only_b").add(7);
        b.gauge("g").set(2.0);
        b.histogram("h").record(9);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("c"), Some(3));
        assert_eq!(merged.counter("only_b"), Some(7));
        assert_eq!(merged.gauge("g"), Some(2.0));
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 14);
        assert_eq!(h.bucket_total(), 2);
        assert_eq!(merged.events.len(), 1);
    }

    #[test]
    fn event_log_caps_and_counts_drops() {
        let r = Registry::new();
        for w in 0..(EVENT_CAP + 10) as u64 {
            r.emit(Event::WindowMetrics {
                window: w,
                lost: 0,
                window_len: 1,
                clf: 0,
            });
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAP);
        assert_eq!(snap.events_dropped, 10);
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("telemetry.test.global").inc();
        assert!(
            global()
                .snapshot()
                .counter("telemetry.test.global")
                .unwrap()
                >= 1
        );
    }

    #[test]
    fn absorb_folds_a_worker_snapshot() {
        let main = Registry::new();
        main.counter("c").add(5);
        main.histogram("h").record(3);

        let worker = Registry::new();
        worker.counter("c").add(2);
        worker.gauge("g").set(0.75);
        worker.histogram("h").record(7);
        worker.emit(Event::WindowMetrics {
            window: 1,
            lost: 2,
            window_len: 8,
            clf: 2,
        });

        main.absorb(&worker.snapshot());
        let snap = main.snapshot();
        assert_eq!(snap.counter("c"), Some(7));
        assert_eq!(snap.gauge("g"), Some(0.75));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 10);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 7);
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn absorb_respects_event_cap() {
        let main = Registry::new();
        let worker = Registry::new();
        for w in 0..(EVENT_CAP + 5) as u64 {
            worker.emit(Event::WindowMetrics {
                window: w,
                lost: 0,
                window_len: 1,
                clf: 0,
            });
        }
        main.absorb(&worker.snapshot());
        let snap = main.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAP);
        assert_eq!(snap.events_dropped, 5);
    }

    #[test]
    fn with_current_overrides_and_restores() {
        let local = Registry::new();
        with_current(&local, || {
            current().counter("scoped").inc();
            // Nested override wins over the outer one.
            let inner = Registry::new();
            with_current(&inner, || current().counter("scoped").inc());
            assert_eq!(inner.snapshot().counter("scoped"), Some(1));
        });
        assert_eq!(local.snapshot().counter("scoped"), Some(1));
        // Outside any override, current() is the global registry.
        assert_eq!(
            global().snapshot().counter("scoped"),
            current().snapshot().counter("scoped")
        );
    }

    #[test]
    fn with_current_restores_after_panic() {
        let local = Registry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_current(&local, || panic!("boom"));
        }));
        assert!(result.is_err());
        // The override stack must be empty again.
        current().counter("telemetry.test.after_panic").inc();
        assert!(local
            .snapshot()
            .counter("telemetry.test.after_panic")
            .is_none());
    }

    #[test]
    fn current_is_thread_local() {
        let local = Registry::new();
        with_current(&local, || {
            let handle = std::thread::spawn(|| {
                // The spawned thread sees no override.
                current().counter("telemetry.test.other_thread").inc();
            });
            handle.join().unwrap();
        });
        assert!(local
            .snapshot()
            .counter("telemetry.test.other_thread")
            .is_none());
    }

    #[test]
    fn poisoned_event_lock_recovers() {
        let r = Registry::new();
        r.emit(Event::WindowMetrics {
            window: 0,
            lost: 0,
            window_len: 1,
            clf: 0,
        });
        // Poison the event mutex: panic while holding it.
        let r2 = r.clone();
        let result = std::thread::spawn(move || {
            let _guard = r2.inner.events.lock().unwrap();
            panic!("poisoning the event log");
        })
        .join();
        assert!(result.is_err());
        // The registry keeps working for every other thread.
        r.emit(Event::WindowMetrics {
            window: 1,
            lost: 1,
            window_len: 2,
            clf: 1,
        });
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.snapshot().events.len(), 2);
    }

    #[test]
    fn poisoned_instrument_locks_recover() {
        let r = Registry::new();
        r.counter("pre").inc();
        let r2 = r.clone();
        let result = std::thread::spawn(move || {
            let _guard = r2.inner.counters.write().unwrap();
            panic!("poisoning the counter map");
        })
        .join();
        assert!(result.is_err());
        // Lookup, registration, and snapshotting all still work.
        r.counter("pre").inc();
        r.counter("post").add(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("pre"), Some(2));
        assert_eq!(snap.counter("post"), Some(3));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Registry::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = r.counter("n");
                let h = r.histogram("v");
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 100);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("n"), Some(40_000));
        let h = snap.histogram("v").unwrap();
        assert_eq!(h.count, 40_000);
        assert_eq!(h.bucket_total(), 40_000);
    }
}
