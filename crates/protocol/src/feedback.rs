//! Client→server feedback: per-window loss estimates and critical NACKs.
//!
//! "It keeps track of the previous window's estimate of loss rate for all
//! layers … and transmits the next estimated loss rate for all non-critical
//! layers to the server. It sends feedback (ACK) in a UDP packet. Note that
//! the ACK packet is also given a sequence number so that out-of-order ACK
//! packets will be ignored. The server makes its decision based on the
//! maximum sequence numbered ACK." (§4.2)

use std::fmt;

/// Feedback message payloads on the reverse channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedbackMsg {
    /// Immediate reactive report after the critical phase: the critical
    /// frames of `window` still missing (drives retransmission).
    CriticalNack {
        /// Window the NACK describes.
        window: u64,
        /// Missing critical frame indices (playout positions in window).
        missing: Vec<usize>,
    },
    /// End-of-window report driving adaptation.
    WindowAck(WindowFeedback),
}

/// The end-of-window ACK: observed per-layer loss-burst bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowFeedback {
    /// Window the feedback describes.
    pub window: u64,
    /// For each layer, the largest run of consecutive **transmission
    /// slots** of that layer whose frames were lost — the `b` input of
    /// `calculatePermutation`.
    pub per_layer_burst: Vec<usize>,
}

impl fmt::Display for WindowFeedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ack(w{}, bursts {:?})",
            self.window, self.per_layer_burst
        )
    }
}

/// Server-side ACK bookkeeping: keeps only the highest-sequence-number
/// window ACK, ignoring out-of-order arrivals.
#[derive(Debug, Clone, Default)]
pub struct AckTracker {
    latest: Option<(u64, WindowFeedback)>, // (ack seq, feedback)
}

impl AckTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers an arrived ACK with its channel sequence number. Returns
    /// `true` when the ACK was newer than anything seen and was accepted.
    pub fn offer(&mut self, seq: u64, feedback: WindowFeedback) -> bool {
        match &self.latest {
            Some((latest_seq, _)) if *latest_seq >= seq => false,
            _ => {
                self.latest = Some((seq, feedback));
                true
            }
        }
    }

    /// The freshest accepted feedback, if any.
    pub fn latest(&self) -> Option<&WindowFeedback> {
        self.latest.as_ref().map(|(_, fb)| fb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(window: u64, bursts: &[usize]) -> WindowFeedback {
        WindowFeedback {
            window,
            per_layer_burst: bursts.to_vec(),
        }
    }

    #[test]
    fn newest_sequence_wins() {
        let mut t = AckTracker::new();
        assert!(t.offer(1, fb(0, &[2])));
        assert!(t.offer(3, fb(2, &[1])));
        // Out-of-order ACK (older seq) is ignored.
        assert!(!t.offer(2, fb(1, &[9])));
        assert_eq!(t.latest().unwrap().window, 2);
        assert_eq!(t.latest().unwrap().per_layer_burst, vec![1]);
    }

    #[test]
    fn duplicate_sequence_ignored() {
        let mut t = AckTracker::new();
        assert!(t.offer(5, fb(4, &[3])));
        assert!(!t.offer(5, fb(4, &[7])));
        assert_eq!(t.latest().unwrap().per_layer_burst, vec![3]);
    }

    #[test]
    fn empty_tracker() {
        let t = AckTracker::new();
        assert!(t.latest().is_none());
    }

    #[test]
    fn feedback_display() {
        let text = fb(7, &[1, 2]).to_string();
        assert!(text.contains("w7"));
        assert!(text.contains("[1, 2]"));
    }
}
