//! A unidirectional link: fixed bandwidth, fixed propagation delay, and a
//! pluggable bursty-loss process.
//!
//! This is the substrate of §5.1: "the simulation was conducted for fixed
//! bandwidth (at the specified peak) and a fixed delay. The only variation
//! is the network packet losses" — drawn from the two-state Markov model
//! by default, or from a [`DropTailQueue`](crate::droptail::DropTailQueue)
//! for mechanism-level validation. Packets are serialised FIFO at the link
//! rate, then propagate for the fixed one-way delay; the loss process is
//! consulted **once per packet** in transmission order.

use crate::lossmodel::LossProcess;
use crate::packet::{Delivery, Packet};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Outcome of offering one packet to a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransmitOutcome<T> {
    /// The packet will arrive at the far end at the given time.
    Delivered(Delivery<T>),
    /// The packet was lost in transit (the serialisation slot is still
    /// consumed — the bits were sent, the network dropped them).
    Lost(Packet<T>),
}

impl<T> TransmitOutcome<T> {
    /// Returns the delivery if the packet survived.
    pub fn delivered(self) -> Option<Delivery<T>> {
        match self {
            TransmitOutcome::Delivered(d) => Some(d),
            TransmitOutcome::Lost(_) => None,
        }
    }

    /// Whether the packet was lost.
    pub fn is_lost(&self) -> bool {
        matches!(self, TransmitOutcome::Lost(_))
    }
}

/// Aggregate counters a link keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Packets offered to the link.
    pub offered: u64,
    /// Packets delivered to the far end.
    pub delivered: u64,
    /// Packets dropped by the loss process.
    pub lost: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Total payload bytes offered (delivered or not) — the bandwidth the
    /// sender consumed.
    pub bytes_offered: u64,
}

impl LinkStats {
    /// Observed packet loss fraction (0 when nothing was offered).
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.lost as f64 / self.offered as f64
        }
    }
}

/// A unidirectional FIFO link with bandwidth, propagation delay and a
/// Gilbert loss process.
///
/// # Example
///
/// ```
/// use espread_netsim::{GilbertModel, Link, Packet, SimDuration, SimTime};
///
/// let mut link = Link::new(
///     1_200_000,                           // 1.2 Mbps
///     SimDuration::from_millis(11),        // ~23 ms RTT / 2
///     GilbertModel::new(1.0, 0.0, 1),      // lossless for the example
/// );
/// let pkt = Packet::new(0, 2048, SimTime::ZERO, "hello");
/// let delivery = link.transmit(SimTime::ZERO, pkt).delivered().unwrap();
/// // 13.654 ms serialisation + 11 ms propagation.
/// assert_eq!(delivery.arrived_at.as_micros(), 24_654);
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth_bps: u64,
    propagation: SimDuration,
    loss: LossProcess,
    busy_until: SimTime,
    stats: LinkStats,
    jitter: SimDuration,
    jitter_rng: DetRng,
    telem: crate::telem::LinkTelem,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn new(bandwidth_bps: u64, propagation: SimDuration, loss: impl Into<LossProcess>) -> Self {
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        Link {
            bandwidth_bps,
            propagation,
            loss: loss.into(),
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
            jitter: SimDuration::ZERO,
            jitter_rng: DetRng::seed_from(0),
            telem: crate::telem::LinkTelem::new(),
        }
    }

    /// Adds uniform per-packet delay variation in `[0, max_jitter]` on top
    /// of the propagation delay, seeded deterministically.
    ///
    /// Jitter can **reorder** deliveries (a later-departing packet may
    /// arrive first) — the disturbance the paper's sequence-numbered ACKs
    /// exist to tolerate ("out of order ACK packets will be ignored").
    pub fn with_jitter(mut self, max_jitter: SimDuration, seed: u64) -> Self {
        self.jitter = max_jitter;
        self.jitter_rng = DetRng::seed_from(seed);
        self
    }

    /// The link rate in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// The one-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The earliest time a packet offered at `now` would **finish**
    /// serialising (without offering it).
    pub fn earliest_departure(&self, now: SimTime, size_bytes: u32) -> SimTime {
        let start = now.max(self.busy_until);
        start + SimDuration::serialization(size_bytes, self.bandwidth_bps)
    }

    /// Offers a packet to the link at time `now`.
    ///
    /// The packet queues behind any packet still serialising (FIFO),
    /// occupies the wire for its serialisation time, then either arrives
    /// `propagation` later or is dropped by the Gilbert process.
    pub fn transmit<T>(&mut self, now: SimTime, packet: Packet<T>) -> TransmitOutcome<T> {
        let departure = self.earliest_departure(now, packet.size_bytes);
        self.busy_until = departure;
        self.stats.offered += 1;
        self.stats.bytes_offered += u64::from(packet.size_bytes);
        self.telem.on_offered();
        if self.loss.step_delivers(now, packet.size_bytes) {
            self.stats.delivered += 1;
            self.stats.bytes_delivered += u64::from(packet.size_bytes);
            self.telem.on_delivered();
            let jitter = if self.jitter == SimDuration::ZERO {
                SimDuration::ZERO
            } else {
                SimDuration::from_micros(self.jitter_rng.below(self.jitter.as_micros() + 1))
            };
            TransmitOutcome::Delivered(Delivery {
                arrived_at: departure + self.propagation + jitter,
                packet,
            })
        } else {
            self.stats.lost += 1;
            self.telem.on_lost();
            TransmitOutcome::Lost(packet)
        }
    }

    /// The time the link becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gilbert::GilbertModel;

    fn lossless() -> GilbertModel {
        GilbertModel::new(1.0, 0.0, 0)
    }

    fn lossy_all() -> GilbertModel {
        GilbertModel::new(0.0, 1.0, 0)
    }

    #[test]
    fn fifo_serialisation_queues_packets() {
        let mut link = Link::new(8_000, SimDuration::from_millis(1), lossless());
        // 100 B at 8 kbps = 100 ms each.
        let a = link
            .transmit(SimTime::ZERO, Packet::new(0, 100, SimTime::ZERO, ()))
            .delivered()
            .unwrap();
        let b = link
            .transmit(SimTime::ZERO, Packet::new(1, 100, SimTime::ZERO, ()))
            .delivered()
            .unwrap();
        assert_eq!(a.arrived_at.as_micros(), 101_000);
        assert_eq!(b.arrived_at.as_micros(), 201_000); // queued behind a
        assert_eq!(link.busy_until().as_micros(), 200_000);
    }

    #[test]
    fn idle_gaps_are_respected() {
        let mut link = Link::new(8_000, SimDuration::ZERO, lossless());
        let _ = link.transmit(SimTime::ZERO, Packet::new(0, 100, SimTime::ZERO, ()));
        // Offer the next packet long after the link went idle.
        let later = SimTime::from_micros(500_000);
        let d = link
            .transmit(later, Packet::new(1, 100, later, ()))
            .delivered()
            .unwrap();
        assert_eq!(d.arrived_at.as_micros(), 600_000);
    }

    #[test]
    fn lost_packets_still_occupy_the_wire() {
        let mut link = Link::new(8_000, SimDuration::ZERO, lossy_all());
        let out = link.transmit(SimTime::ZERO, Packet::new(0, 100, SimTime::ZERO, ()));
        assert!(out.is_lost());
        assert_eq!(link.busy_until().as_micros(), 100_000);
        assert_eq!(link.stats().lost, 1);
        assert_eq!(link.stats().loss_rate(), 1.0);
    }

    #[test]
    fn stats_accumulate() {
        let mut link = Link::new(1_000_000, SimDuration::ZERO, lossless());
        for i in 0..10 {
            let _ = link.transmit(SimTime::ZERO, Packet::new(i, 1000, SimTime::ZERO, ()));
        }
        let s = link.stats();
        assert_eq!(s.offered, 10);
        assert_eq!(s.delivered, 10);
        assert_eq!(s.bytes_delivered, 10_000);
        assert_eq!(s.bytes_offered, 10_000);
        assert_eq!(s.loss_rate(), 0.0);
    }

    #[test]
    fn earliest_departure_is_side_effect_free() {
        let link = Link::new(8_000, SimDuration::ZERO, lossless());
        let t1 = link.earliest_departure(SimTime::ZERO, 100);
        let t2 = link.earliest_departure(SimTime::ZERO, 100);
        assert_eq!(t1, t2);
        assert_eq!(t1.as_micros(), 100_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(0, SimDuration::ZERO, lossless());
    }

    #[test]
    fn empty_stats_loss_rate_zero() {
        assert_eq!(LinkStats::default().loss_rate(), 0.0);
    }

    #[test]
    fn jitter_bounds_and_determinism() {
        let mk = || {
            Link::new(1_000_000, SimDuration::from_millis(10), lossless())
                .with_jitter(SimDuration::from_millis(5), 9)
        };
        let mut a = mk();
        let mut b = mk();
        for i in 0..200u64 {
            let da = a
                .transmit(SimTime::ZERO, Packet::new(i, 100, SimTime::ZERO, ()))
                .delivered()
                .unwrap();
            let db = b
                .transmit(SimTime::ZERO, Packet::new(i, 100, SimTime::ZERO, ()))
                .delivered()
                .unwrap();
            assert_eq!(da.arrived_at, db.arrived_at);
            // Arrival within [departure + prop, departure + prop + jitter].
            let min = a.busy_until() + SimDuration::from_millis(10);
            assert!(da.arrived_at >= min);
            assert!(da.arrived_at <= min + SimDuration::from_millis(5));
        }
    }

    #[test]
    fn jitter_can_reorder_deliveries() {
        let mut link = Link::new(100_000_000, SimDuration::from_millis(1), lossless())
            .with_jitter(SimDuration::from_millis(20), 4);
        let mut arrivals = Vec::new();
        for i in 0..100u64 {
            if let Some(d) = link
                .transmit(SimTime::ZERO, Packet::new(i, 100, SimTime::ZERO, i))
                .delivered()
            {
                arrivals.push((d.arrived_at, d.packet.payload));
            }
        }
        // At 100 Mbps the serialisation spacing (≈ 8 µs) is far below the
        // 20 ms jitter, so some arrival order inversion must occur.
        let inversions = arrivals.windows(2).filter(|w| w[0].0 > w[1].0).count();
        assert!(inversions > 0, "expected reordering under heavy jitter");
    }
}
