//! A log-linear histogram with lock-free recording.
//!
//! Values below [`LINEAR_CUTOFF`] each get their own bucket; above it,
//! every power-of-two octave is split into [`SUB_BUCKETS`] equal-width
//! sub-buckets (HDR-histogram style). Relative error is therefore bounded
//! by `1 / SUB_BUCKETS` = 12.5 % everywhere, with exact counts for tiny
//! values (burst lengths, small CLFs).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this record exactly (one bucket per value).
pub(crate) const LINEAR_CUTOFF: u64 = 16;
/// Sub-buckets per octave above the linear region.
pub(crate) const SUB_BUCKETS: usize = 8;
/// log2 of [`SUB_BUCKETS`].
const SUB_SHIFT: u32 = 3;
/// Total bucket count: 16 linear + 60 octaves × 8 sub-buckets.
pub(crate) const BUCKETS: usize = LINEAR_CUTOFF as usize + 60 * SUB_BUCKETS;

/// Maps a value to its bucket index.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let log2 = 63 - v.leading_zeros(); // ≥ 4
    let octave = (log2 - 4) as usize;
    let sub = ((v >> (log2 - SUB_SHIFT)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (LINEAR_CUTOFF as usize + octave * SUB_BUCKETS + sub).min(BUCKETS - 1)
}

/// The smallest value mapping to bucket `index`.
pub(crate) fn bucket_lower_bound(index: usize) -> u64 {
    if index < LINEAR_CUTOFF as usize {
        return index as u64;
    }
    let octave = (index - LINEAR_CUTOFF as usize) / SUB_BUCKETS;
    let sub = ((index - LINEAR_CUTOFF as usize) % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (octave + 1)
}

/// Shared histogram state behind a [`crate::Histogram`] handle.
pub(crate) struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds a snapshot (typically from another registry's histogram of
    /// the same name) into this live histogram. Bucket bounds map back to
    /// their own indices, so bucket-wise addition is exact.
    pub(crate) fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        for &(bound, n) in &snap.buckets {
            self.buckets[bucket_index(bound)].fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for HistogramCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramCore")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// `(bucket lower bound, sample count)` for every non-empty bucket,
    /// in ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Total samples across buckets — always equals [`Self::count`] for a
    /// quiescent histogram (asserted by the property tests).
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }

    /// Folds `other` into `self` (bucket-wise addition; min/max widen).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(bound, n) in &other.buckets {
            *merged.entry(bound).or_insert(0) += n;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.buckets = merged.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bounds_are_monotone_and_consistent() {
        let mut prev = None;
        for i in 0..BUCKETS {
            let lo = bucket_lower_bound(i);
            if let Some(p) = prev {
                assert!(lo > p, "bucket {i} bound {lo} not above {p}");
            }
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i} maps back");
            prev = Some(lo);
        }
    }

    #[test]
    fn values_map_within_bucket_bounds() {
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v);
            if i + 1 < BUCKETS {
                assert!(v < bucket_lower_bound(i + 1), "value {v} bucket {i}");
            }
        }
    }

    #[test]
    fn relative_error_bounded() {
        // Above the linear cutoff the bucket width is at most 1/8 of the
        // lower bound.
        for i in LINEAR_CUTOFF as usize..BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            let hi = bucket_lower_bound(i + 1);
            assert!(
                hi - lo <= lo / SUB_BUCKETS as u64 + 1,
                "bucket {i}: {lo}..{hi}"
            );
        }
    }

    #[test]
    fn merge_folds_counts_and_extrema() {
        let a_core = HistogramCore::new();
        a_core.record(3);
        a_core.record(100);
        let b_core = HistogramCore::new();
        b_core.record(7);
        b_core.record(100);
        let mut a = a_core.snapshot();
        let b = b_core.snapshot();
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 210);
        assert_eq!(a.min, 3);
        assert_eq!(a.max, 100);
        assert_eq!(a.bucket_total(), 4);
        // The shared bucket (100) merged rather than duplicated.
        let bound_100 = bucket_lower_bound(bucket_index(100));
        assert_eq!(
            a.buckets.iter().find(|&&(b, _)| b == bound_100),
            Some(&(bound_100, 2))
        );
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let core = HistogramCore::new();
        core.record(42);
        let mut snap = core.snapshot();
        let before = snap.clone();
        snap.merge(&HistogramSnapshot::default());
        assert_eq!(snap, before);

        let mut empty = HistogramSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_snapshot_statistics() {
        let snap = HistogramCore::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.buckets.is_empty());
    }
}
