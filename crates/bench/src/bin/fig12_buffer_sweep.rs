//! Figure 12 (referenced from the TR) — CLF vs sender buffer size.
//!
//! W (GOPs per buffer) varied; P_bad = 0.6, BW 1.2 Mbps. The paper's
//! claim: "again, both mean and deviation of CLF are better. This
//! consistency proves … error spreading scales well in various
//! scenarios." Start-up delay grows with W (W GOPs of 12 at 24 fps =
//! W/2 seconds).
//!
//! ```sh
//! cargo run --release -p espread-bench --bin fig12_buffer_sweep
//! ```

use espread_bench::{mean, paper_source, Comparison};
use espread_protocol::ProtocolConfig;

fn main() {
    println!("Figure 12: impact of buffer size (Pbad=0.6, BW=1.2 Mbps, 100 windows, 3 seeds)\n");
    println!(
        "{:>3} {:>10} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "W", "delay (s)", "plain mean", "plain dev", "spread mean", "spread dev", "better?"
    );
    for w in [1usize, 2, 4] {
        let mut plain_means = Vec::new();
        let mut plain_devs = Vec::new();
        let mut spread_means = Vec::new();
        let mut spread_devs = Vec::new();
        for seed in [42u64, 43, 44] {
            let source = paper_source(w, 100, 1);
            let cmp = Comparison::run(&ProtocolConfig::paper(0.6, seed), &source);
            let (p, s) = cmp.summaries();
            plain_means.push(p.mean_clf);
            plain_devs.push(p.dev_clf);
            spread_means.push(s.mean_clf);
            spread_devs.push(s.dev_clf);
        }
        let better =
            mean(&spread_means) < mean(&plain_means) && mean(&spread_devs) < mean(&plain_devs);
        println!(
            "{w:>3} {:>10.1} {:>12.2} {:>10.2} {:>12.2} {:>10.2} {:>8}",
            w as f64 * 12.0 / 24.0,
            mean(&plain_means),
            mean(&plain_devs),
            mean(&spread_means),
            mean(&spread_devs),
            if better { "yes" } else { "no" },
        );
    }
    println!(
        "\npaper: both mean and deviation better at each buffer size (W up to 2, 0.5–1 s delay;"
    );
    println!("we extend the sweep to W=4). Per-window CLF grows with W for both schemes simply");
    println!("because longer windows contain more loss bursts.");

    espread_bench::write_telemetry_snapshot("fig12_buffer_sweep");
}
