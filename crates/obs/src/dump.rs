//! Versioned JSON-lines dumps of recordings, and their parser.
//!
//! A dump is self-describing: each recording opens with one `obs_meta`
//! line carrying the format version and the recording's metadata, then
//! one `obs` line per event, oldest first. Several recordings may be
//! concatenated in one file (a whole session's three roles, or a compare
//! cell's six); the parser splits them on the meta lines.
//!
//! ```text
//! {"type":"obs_meta","version":1,"role":"server","session":0,"shared_epoch":1,"capacity":16384,"dropped":0,"events":2}
//! {"type":"obs","t_us":12,"conn":1,"window":0,"frame":3,"kind":"sent","detail":0}
//! {"type":"obs","t_us":98,"conn":1,"window":0,"frame":3,"kind":"window_end_sent","detail":0}
//! ```
//!
//! The writer emits no escapes (roles and kinds come from fixed
//! vocabularies) and `window`/`frame` sentinels render as `null`, so the
//! parser is a small exact-format field scanner, not a general JSON
//! reader. Unknown *versions* are refused loudly; unknown *event kinds*
//! inside a known version are malformed lines.

use std::fmt;

use crate::event::{EventKind, ObsEvent, Role, FRAME_NONE, WINDOW_NONE};
use crate::recorder::Recording;

/// Version stamped on every `obs_meta` line. Bump when the line format
/// or the event vocabulary changes incompatibly.
pub const DUMP_VERSION: u64 = 1;

/// Why a dump could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum DumpError {
    /// The input contained no `obs_meta` line at all.
    MissingMeta,
    /// An `obs_meta` line declared a version this parser does not speak.
    BadVersion(u64),
    /// An event line arrived before any `obs_meta` line.
    EventBeforeMeta {
        /// 1-based line number.
        line: usize,
    },
    /// A line failed to parse (bad field, unknown kind, junk).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Which field or aspect was wrong.
        what: &'static str,
    },
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpError::MissingMeta => write!(f, "dump has no obs_meta line"),
            DumpError::BadVersion(v) => {
                write!(f, "dump version {v} is not the supported {DUMP_VERSION}")
            }
            DumpError::EventBeforeMeta { line } => {
                write!(f, "line {line}: event before any obs_meta line")
            }
            DumpError::Malformed { line, what } => write!(f, "line {line}: malformed {what}"),
        }
    }
}

impl std::error::Error for DumpError {}

/// Renders one recording as JSON lines (meta line + one line per event,
/// trailing newline included).
pub fn to_json_lines(recording: &Recording) -> String {
    use std::fmt::Write as _;
    // Preallocate roughly one 96-byte line per event.
    let mut out = String::with_capacity(128 + recording.events.len() * 96);
    let _ = writeln!(
        out,
        "{{\"type\":\"obs_meta\",\"version\":{DUMP_VERSION},\"role\":\"{}\",\"session\":{},\
         \"shared_epoch\":{},\"capacity\":{},\"dropped\":{},\"events\":{}}}",
        recording.role.as_str(),
        recording.session,
        u8::from(recording.shared_epoch),
        recording.capacity,
        recording.dropped,
        recording.events.len()
    );
    for e in &recording.events {
        out.push_str("{\"type\":\"obs\",\"t_us\":");
        let _ = write!(out, "{}", e.t_us);
        let _ = write!(out, ",\"conn\":{}", e.conn);
        out.push_str(",\"window\":");
        if e.window == WINDOW_NONE {
            out.push_str("null");
        } else {
            let _ = write!(out, "{}", e.window);
        }
        out.push_str(",\"frame\":");
        if e.frame == FRAME_NONE {
            out.push_str("null");
        } else {
            let _ = write!(out, "{}", e.frame);
        }
        let _ = writeln!(
            out,
            ",\"kind\":\"{}\",\"detail\":{}}}",
            e.kind.as_str(),
            e.detail
        );
    }
    out
}

/// Renders several recordings into one concatenated dump.
pub fn all_to_json_lines(recordings: &[Recording]) -> String {
    recordings.iter().map(to_json_lines).collect()
}

/// Parses a dump (one or more concatenated recordings). Blank lines are
/// skipped; anything else must be a well-formed `obs_meta` or `obs` line.
///
/// # Errors
///
/// A typed [`DumpError`] naming the first offending line.
pub fn parse_json_lines(text: &str) -> Result<Vec<Recording>, DumpError> {
    let mut recordings: Vec<Recording> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let malformed = |what| DumpError::Malformed {
            line: line_no,
            what,
        };
        match field(line, "type") {
            Some("\"obs_meta\"") => {
                let version = uint_field(line, "version").ok_or(malformed("version"))?;
                if version != DUMP_VERSION {
                    return Err(DumpError::BadVersion(version));
                }
                let role = str_field(line, "role")
                    .and_then(Role::parse)
                    .ok_or(malformed("role"))?;
                let session = uint_field(line, "session").ok_or(malformed("session"))? as u32;
                let shared_epoch =
                    uint_field(line, "shared_epoch").ok_or(malformed("shared_epoch"))? != 0;
                let capacity = uint_field(line, "capacity").ok_or(malformed("capacity"))? as usize;
                let dropped = uint_field(line, "dropped").ok_or(malformed("dropped"))?;
                recordings.push(Recording {
                    role,
                    session,
                    shared_epoch,
                    capacity,
                    dropped,
                    events: Vec::new(),
                });
            }
            Some("\"obs\"") => {
                let rec = recordings
                    .last_mut()
                    .ok_or(DumpError::EventBeforeMeta { line: line_no })?;
                let t_us = uint_field(line, "t_us").ok_or(malformed("t_us"))?;
                let conn = uint_field(line, "conn").ok_or(malformed("conn"))? as u32;
                let window = match field(line, "window") {
                    Some("null") => WINDOW_NONE,
                    Some(raw) => raw.parse().map_err(|_| malformed("window"))?,
                    None => return Err(malformed("window")),
                };
                let frame = match field(line, "frame") {
                    Some("null") => FRAME_NONE,
                    Some(raw) => raw.parse().map_err(|_| malformed("frame"))?,
                    None => return Err(malformed("frame")),
                };
                let kind = str_field(line, "kind")
                    .and_then(EventKind::parse)
                    .ok_or(malformed("kind"))?;
                let detail = uint_field(line, "detail").ok_or(malformed("detail"))? as u32;
                rec.events.push(ObsEvent {
                    t_us,
                    conn,
                    window,
                    frame,
                    kind,
                    detail,
                });
            }
            _ => return Err(malformed("type")),
        }
    }
    if recordings.is_empty() {
        return Err(DumpError::MissingMeta);
    }
    Ok(recordings)
}

/// Raw value token of `"key":` in a flat single-line object: everything
/// up to the next `,` or the closing `}`.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    // Keys are unique in our fixed formats; values contain no commas or
    // braces (numbers, null, or unescaped strings from fixed sets).
    let mut needle = String::with_capacity(key.len() + 3);
    needle.push('"');
    needle.push_str(key);
    needle.push_str("\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn uint_field(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

/// The unquoted content of a string-valued field.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    field(line, key)?
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ALL_KINDS;
    use crate::recorder::FlightRecorder;

    fn sample() -> Recording {
        let rec = FlightRecorder::new(Role::Server, 32);
        rec.record(EventKind::Queued, 1, 0, 3, 7);
        rec.record(EventKind::Sent, 1, 0, 3, 0);
        rec.record(EventKind::DecodeError, 1, WINDOW_NONE, FRAME_NONE, 0);
        rec.recording()
    }

    #[test]
    fn round_trips_exactly() {
        let original = sample();
        let text = to_json_lines(&original);
        let parsed = parse_json_lines(&text).unwrap();
        assert_eq!(parsed, vec![original]);
    }

    #[test]
    fn every_kind_round_trips() {
        let rec = FlightRecorder::new(Role::Proxy, 64);
        for (i, kind) in ALL_KINDS.into_iter().enumerate() {
            rec.record(kind, 9, i as u64, i as u32, i as u32);
        }
        let original = rec.recording();
        let parsed = parse_json_lines(&to_json_lines(&original)).unwrap();
        assert_eq!(parsed, vec![original]);
    }

    #[test]
    fn concatenated_recordings_split_on_meta_lines() {
        let (server, proxy, client) = crate::recorder::trio(8, 2);
        server.record(EventKind::Sent, 1, 0, 0, 0);
        proxy.record(EventKind::ForwardedData, 1, 0, 0, 0);
        client.record(EventKind::Delivered, 1, 0, 0, 0);
        let all = vec![server.recording(), proxy.recording(), client.recording()];
        let text = all_to_json_lines(&all);
        let parsed = parse_json_lines(&text).unwrap();
        assert_eq!(parsed, all);
        assert_eq!(parsed[0].role, Role::Server);
        assert_eq!(parsed[2].role, Role::Client);
    }

    #[test]
    fn sentinels_render_as_null() {
        let text = to_json_lines(&sample());
        let last_event_line = text.lines().last().unwrap();
        assert!(last_event_line.contains("\"window\":null"));
        assert!(last_event_line.contains("\"frame\":null"));
    }

    #[test]
    fn version_mismatch_is_a_typed_refusal() {
        let text = to_json_lines(&sample()).replace("\"version\":1", "\"version\":9");
        assert_eq!(parse_json_lines(&text), Err(DumpError::BadVersion(9)));
    }

    #[test]
    fn junk_lines_name_their_line_number() {
        let mut text = to_json_lines(&sample());
        text.push_str("not json at all\n");
        let junk_line = text.lines().count();
        assert_eq!(
            parse_json_lines(&text),
            Err(DumpError::Malformed {
                line: junk_line,
                what: "type"
            })
        );
    }

    #[test]
    fn event_before_meta_and_empty_input_are_typed() {
        let orphan = "{\"type\":\"obs\",\"t_us\":1,\"conn\":1,\"window\":0,\"frame\":0,\
                      \"kind\":\"sent\",\"detail\":0}";
        assert_eq!(
            parse_json_lines(orphan),
            Err(DumpError::EventBeforeMeta { line: 1 })
        );
        assert_eq!(parse_json_lines(""), Err(DumpError::MissingMeta));
        assert_eq!(parse_json_lines("\n\n"), Err(DumpError::MissingMeta));
    }

    #[test]
    fn unknown_kind_is_malformed_not_skipped() {
        let text = to_json_lines(&sample()).replace("\"kind\":\"sent\"", "\"kind\":\"teleported\"");
        assert!(matches!(
            parse_json_lines(&text),
            Err(DumpError::Malformed { what: "kind", .. })
        ));
    }
}
