//! Per-window transmission plans for the three orderings under comparison.
//!
//! Whatever the ordering, every frame of the window is labelled with a
//! **(layer, layer_slot)** pair derived from the dependency poset's depth
//! decomposition — the client uses those labels to observe per-layer loss
//! bursts in the transmission domain. The orderings differ in the global
//! send sequence:
//!
//! * [`Ordering::Spread`]: critical layers first (each under a fixed
//!   conservative permutation), then non-critical layers permuted by
//!   `calculatePermutation(len, b̂)` with the adaptive estimate — the
//!   paper's §4.2 protocol;
//! * [`Ordering::Ibo`]: same layering, anchors in playout order, B-layers
//!   in CMT's Inverse Binary Order — the §4.4 baseline;
//! * [`Ordering::InOrder`]: plain playout order (the "usual MPEG
//!   transmission model"), layer labels kept for bookkeeping.

use espread_core::{
    calculate_permutation_cached, ibo::inverse_binary_order, try_burst_clf, Permutation,
};
use espread_poset::Poset;

use crate::config::Ordering;

/// One frame in the send sequence, with its layer labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFrame {
    /// Playout index within the window.
    pub frame: usize,
    /// Layer index (0 = most critical).
    pub layer: u8,
    /// Transmission slot within the layer.
    pub layer_slot: u16,
}

/// Static description of one layer of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerInfo {
    /// The layer's frames (playout indices, ascending).
    pub frames: Vec<usize>,
    /// Whether other frames depend on this layer.
    pub critical: bool,
    /// The burst bound its permutation was sized for.
    pub burst_bound: usize,
    /// The within-layer transmission order: entry `slot` is the
    /// layer-local playout index sent at that layer slot.
    pub order: Vec<usize>,
}

impl LayerInfo {
    /// The CLF (in layer-local playout positions) a burst over this
    /// layer's transmission slots `start .. start + len` would cause under
    /// the layer's order. Out-of-window bursts are truncated (feedback can
    /// report a burst straddling the window boundary); returns `None` for
    /// a burst entirely outside the layer.
    pub fn projected_clf(&self, start: usize, len: usize) -> Option<usize> {
        let perm = Permutation::from_vec(self.order.clone()).ok()?;
        try_burst_clf(&perm, start, len)
    }
}

/// A complete send plan for one buffer window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPlan {
    /// Frames in the order they are offered to the network.
    pub schedule: Vec<ScheduledFrame>,
    /// Layer metadata, most critical first.
    pub layers: Vec<LayerInfo>,
    /// Number of leading schedule entries forming the critical phase
    /// (after which a NACK/retransmission round can run). For
    /// [`Ordering::InOrder`] this is the whole schedule — the classical
    /// scheme can only react after sending everything.
    pub critical_prefix: usize,
}

impl WindowPlan {
    /// Builds the plan for a window whose dependencies are `poset`, under
    /// `ordering`, with per-layer burst estimates `estimates` (missing
    /// entries default to half the layer length).
    pub fn build(ordering: Ordering, poset: &Poset, estimates: &[usize]) -> WindowPlan {
        let bound_for = |idx: usize, len: usize, critical: bool, adaptive: bool| -> usize {
            if len == 0 {
                return 0;
            }
            if critical || !adaptive {
                // Fixed conservative permutation for critical layers
                // (§4.2: "uses a fixed permutation for critical layers").
                (len / 2).max(1)
            } else {
                estimates
                    .get(idx)
                    .copied()
                    .unwrap_or((len / 2).max(1))
                    .clamp(1, len)
            }
        };

        let adaptive = matches!(ordering, Ordering::Spread { adaptive: true });
        let decomposition = poset.depth_decomposition();
        let is_critical: Vec<bool> = decomposition
            .iter()
            .map(|layer| layer.iter().any(|&f| poset.upset_size(f) > 0))
            .collect();

        // Per-layer transmission order of layer-local indices.
        let mut layer_orders: Vec<Vec<usize>> = Vec::with_capacity(decomposition.len());
        let mut layers: Vec<LayerInfo> = Vec::with_capacity(decomposition.len());
        for (idx, frames) in decomposition.iter().enumerate() {
            let len = frames.len();
            let critical = is_critical[idx];
            let (order, bound): (Vec<usize>, usize) = match ordering {
                Ordering::InOrder => ((0..len).collect(), 0),
                Ordering::Spread { .. } => {
                    let b = bound_for(idx, len, critical, adaptive);
                    (
                        calculate_permutation_cached(len, b)
                            .permutation
                            .as_slice()
                            .to_vec(),
                        b,
                    )
                }
                Ordering::Ibo => {
                    if critical {
                        ((0..len).collect(), 0)
                    } else {
                        (inverse_binary_order(len).as_slice().to_vec(), 0)
                    }
                }
            };
            layers.push(LayerInfo {
                frames: frames.clone(),
                critical,
                burst_bound: bound,
                order: order.clone(),
            });
            layer_orders.push(order);
        }

        // Assemble the global schedule.
        let mut schedule = Vec::with_capacity(poset.len());
        match ordering {
            Ordering::InOrder => {
                // Decode order — the "usual MPEG transmission model": each
                // frame as early as its prerequisites allow, smallest
                // playout index first. (Raw playout order would send
                // B-frames before the anchors they are predicted from.)
                // For dependency-free streams this is plain playout order.
                let mut label = vec![(0u8, 0u16); poset.len()];
                for (l, frames) in decomposition.iter().enumerate() {
                    for (slot, &f) in frames.iter().enumerate() {
                        label[f] = (l as u8, slot as u16);
                    }
                }
                for frame in poset.linear_extension() {
                    let (layer, layer_slot) = label[frame];
                    schedule.push(ScheduledFrame {
                        frame,
                        layer,
                        layer_slot,
                    });
                }
            }
            Ordering::Spread { .. } | Ordering::Ibo => {
                for (l, order) in layer_orders.iter().enumerate() {
                    for (slot, &local) in order.iter().enumerate() {
                        schedule.push(ScheduledFrame {
                            frame: decomposition[l][local],
                            layer: l as u8,
                            layer_slot: slot as u16,
                        });
                    }
                }
            }
        }

        let critical_prefix = match ordering {
            Ordering::InOrder => schedule.len(),
            _ => layers
                .iter()
                .filter(|l| l.critical)
                .map(|l| l.frames.len())
                .sum(),
        };

        WindowPlan {
            schedule,
            layers,
            critical_prefix,
        }
    }

    /// Number of frames in the window.
    pub fn window_len(&self) -> usize {
        self.schedule.len()
    }

    /// Frames belonging to critical layers, in playout order.
    pub fn critical_frames(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .layers
            .iter()
            .filter(|l| l.critical)
            .flat_map(|l| l.frames.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// The sizes of all layers, in layer order (what the client needs to
    /// size its per-layer slot tables).
    pub fn layer_sizes(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.frames.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espread_trace::GopPattern;

    fn poset2() -> Poset {
        GopPattern::gop12().dependency_poset(2, false)
    }

    #[test]
    fn spread_plan_covers_window_and_prefixes_critical() {
        let poset = poset2();
        let plan = WindowPlan::build(Ordering::spread(), &poset, &[2, 2, 2, 2, 3]);
        assert_eq!(plan.window_len(), 24);
        // All frames exactly once.
        let mut seen: Vec<usize> = plan.schedule.iter().map(|s| s.frame).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..24).collect::<Vec<_>>());
        // 5 layers: I, P1, P2, P3 critical; B layer not.
        assert_eq!(plan.layers.len(), 5);
        assert_eq!(plan.critical_prefix, 8); // 2 GOPs × 4 anchors
        assert_eq!(plan.critical_frames().len(), 8);
        // The schedule is a linear extension of the dependency poset.
        let order: Vec<usize> = plan.schedule.iter().map(|s| s.frame).collect();
        assert!(poset.is_linear_extension(&order));
    }

    #[test]
    fn in_order_plan_is_decode_order() {
        let poset = poset2();
        let plan = WindowPlan::build(Ordering::InOrder, &poset, &[]);
        let order: Vec<usize> = plan.schedule.iter().map(|s| s.frame).collect();
        // MPEG decode order: each frame as early as its anchors allow.
        // GOP 12 (IBBPBBPBBPBB): I0 P3 B1 B2 P6 B4 B5 P9 B7 B8 B10 B11* …
        assert_eq!(order[..7], [0, 3, 1, 2, 6, 4, 5]);
        assert!(poset.is_linear_extension(&order));
        // Classical scheme: NACK only after everything is sent.
        assert_eq!(plan.critical_prefix, 24);
        // Layer labels still present and consistent.
        assert_eq!(plan.layer_sizes(), vec![2, 2, 2, 2, 16]);
    }

    #[test]
    fn ibo_plan_orders_b_layer_by_bit_reversal() {
        let poset = poset2();
        let plan = WindowPlan::build(Ordering::Ibo, &poset, &[]);
        // Anchors in playout order.
        let anchors: Vec<usize> = plan.schedule[..8].iter().map(|s| s.frame).collect();
        assert_eq!(anchors, vec![0, 12, 3, 15, 6, 18, 9, 21]);
        // B layer (16 frames) in IBO of its local indices.
        let b_frames: Vec<usize> = plan.schedule[8..].iter().map(|s| s.frame).collect();
        let b_layer = &plan.layers[4].frames;
        let expected: Vec<usize> = inverse_binary_order(16)
            .as_slice()
            .iter()
            .map(|&i| b_layer[i])
            .collect();
        assert_eq!(b_frames, expected);
    }

    #[test]
    fn adaptive_estimates_feed_non_critical_layers() {
        let poset = poset2();
        let a = WindowPlan::build(Ordering::spread(), &poset, &[1, 1, 1, 1, 2]);
        let b = WindowPlan::build(Ordering::spread(), &poset, &[1, 1, 1, 1, 7]);
        assert_eq!(a.layers[4].burst_bound, 2);
        assert_eq!(b.layers[4].burst_bound, 7);
        // Critical layers ignore the estimates (fixed permutation).
        assert_eq!(a.layers[0].burst_bound, 1); // len 2 / 2
        assert_eq!(b.layers[0].burst_bound, 1);
    }

    #[test]
    fn fixed_spread_ignores_estimates() {
        let poset = poset2();
        let fixed = Ordering::Spread { adaptive: false };
        let a = WindowPlan::build(fixed, &poset, &[1, 1, 1, 1, 2]);
        let b = WindowPlan::build(fixed, &poset, &[1, 1, 1, 1, 9]);
        assert_eq!(a.layers[4].burst_bound, 8); // 16 / 2
        assert_eq!(a, b);
    }

    #[test]
    fn estimates_clamped_to_layer_length() {
        let poset = poset2();
        let plan = WindowPlan::build(Ordering::spread(), &poset, &[9, 9, 9, 9, 99]);
        assert_eq!(plan.layers[4].burst_bound, 16);
    }

    #[test]
    fn layer_slots_are_dense_and_unique() {
        let poset = poset2();
        for ordering in [Ordering::spread(), Ordering::InOrder, Ordering::Ibo] {
            let plan = WindowPlan::build(ordering, &poset, &[2; 5]);
            for (l, info) in plan.layers.iter().enumerate() {
                let mut slots: Vec<u16> = plan
                    .schedule
                    .iter()
                    .filter(|s| usize::from(s.layer) == l)
                    .map(|s| s.layer_slot)
                    .collect();
                slots.sort_unstable();
                let expected: Vec<u16> = (0..info.frames.len() as u16).collect();
                assert_eq!(slots, expected, "{ordering} layer {l}");
            }
        }
    }
}
