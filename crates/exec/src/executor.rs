//! The worker pool: scoped threads, static sharding, ordered results.

use std::thread;

use crate::seed::TrialCtx;

#[cfg(feature = "telemetry")]
mod telem {
    pub(super) type WorkerDelta = espread_telemetry::Snapshot;

    /// Runs `f` with a private registry installed as the thread-local
    /// current registry, returning `f`'s output plus the delta recorded.
    pub(super) fn scoped<R>(f: impl FnOnce() -> R) -> (R, WorkerDelta) {
        let local = espread_telemetry::Registry::new();
        let out = espread_telemetry::with_current(&local, f);
        let snap = local.snapshot();
        (out, snap)
    }

    /// Folds one worker's delta into the caller's current registry.
    pub(super) fn absorb(delta: &WorkerDelta) {
        espread_telemetry::current().absorb(delta);
    }
}

#[cfg(not(feature = "telemetry"))]
mod telem {
    pub(super) type WorkerDelta = ();

    pub(super) fn scoped<R>(f: impl FnOnce() -> R) -> (R, WorkerDelta) {
        (f(), ())
    }

    pub(super) fn absorb(_delta: &WorkerDelta) {}
}

/// A deterministic parallel sweep runner.
///
/// See the [crate docs](crate) for the determinism contract. Construct
/// one per experiment (the name keys every trial's RNG derivation) and
/// call [`Executor::run`] once per grid.
#[derive(Debug, Clone)]
pub struct Executor {
    experiment: String,
    jobs: usize,
}

impl Executor {
    /// Creates an executor for `experiment` with `jobs` workers.
    ///
    /// `jobs == 0` means "use available parallelism" (the `--jobs`
    /// default in the bench binaries). The worker count never changes
    /// results — only wall-clock.
    pub fn new(experiment: impl Into<String>, jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            thread::available_parallelism().map_or(1, usize::from)
        } else {
            jobs
        };
        Executor {
            experiment: experiment.into(),
            jobs,
        }
    }

    /// The experiment name used for seed derivation.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every cell, in parallel, returning results in cell
    /// order.
    ///
    /// Worker `k` of `J` owns cells `k, k+J, k+2J, …` (static sharding —
    /// no stealing, so thread assignment is deterministic). Each call
    /// receives a [`TrialCtx`] naming the cell; derive RNG streams from
    /// it rather than carrying generators across cells.
    ///
    /// With the `telemetry` feature, each worker records into a private
    /// registry and the deltas are folded into the caller's current
    /// registry at join, in worker order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any cell closure after the remaining
    /// workers finish.
    pub fn run<C, T>(&self, cells: Vec<C>, f: impl Fn(TrialCtx<'_>, C) -> T + Sync) -> Vec<T>
    where
        C: Send,
        T: Send,
    {
        let n = cells.len();
        if n == 0 {
            return Vec::new();
        }
        let jobs = self.jobs.min(n);

        // Static round-robin sharding: worker k owns cells k, k+J, …
        let mut shards: Vec<Vec<(usize, C)>> = (0..jobs).map(|_| Vec::new()).collect();
        for (index, cell) in cells.into_iter().enumerate() {
            shards[index % jobs].push((index, cell));
        }

        let f = &f;
        let experiment = self.experiment.as_str();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();

        thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    scope.spawn(move || {
                        telem::scoped(|| {
                            shard
                                .into_iter()
                                .map(|(index, cell)| {
                                    let ctx = TrialCtx { experiment, index };
                                    (index, f(ctx, cell))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                })
                .collect();

            // Join in worker order so telemetry deltas (notably event
            // logs) merge deterministically for a fixed worker count.
            for handle in handles {
                let (results, delta) = match handle.join() {
                    Ok(out) => out,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                telem::absorb(&delta);
                for (index, value) in results {
                    slots[index] = Some(value);
                }
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("every cell produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_is_fine() {
        let exec = Executor::new("t.empty", 4);
        let out: Vec<u64> = exec.run(Vec::<u64>::new(), |_, c| c);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let exec = Executor::new("t.auto", 0);
        assert!(exec.jobs() >= 1);
    }

    #[test]
    fn results_keep_input_order() {
        for jobs in [1, 2, 3, 7, 64] {
            let exec = Executor::new("t.order", jobs);
            let out = exec.run((0..20usize).collect(), |ctx, cell| {
                assert_eq!(ctx.index(), cell);
                cell * 10
            });
            assert_eq!(out, (0..20).map(|c| c * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_workers_than_cells() {
        let exec = Executor::new("t.wide", 16);
        let out = exec.run(vec![1u64, 2, 3], |_, c| c * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn rng_streams_match_across_worker_counts() {
        let grid: Vec<u64> = (0..33).collect();
        let draw = |ctx: TrialCtx<'_>, cell: u64| {
            let mut rng = ctx.rng(cell);
            (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        let serial = Executor::new("t.det", 1).run(grid.clone(), draw);
        for jobs in [2, 4, 5] {
            let parallel = Executor::new("t.det", jobs).run(grid.clone(), draw);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "cell 3 exploded")]
    fn worker_panic_propagates() {
        let exec = Executor::new("t.panic", 2);
        let _ = exec.run((0..8usize).collect(), |_, cell| {
            assert!(cell != 3, "cell 3 exploded");
            cell
        });
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_merges_at_join() {
        use espread_telemetry::{with_current, Registry};

        let outer = Registry::new();
        with_current(&outer, || {
            let exec = Executor::new("t.telem", 4);
            let _ = exec.run((0..12u64).collect(), |_, cell| {
                espread_telemetry::current()
                    .counter("exec.test.cells")
                    .inc();
                cell
            });
        });
        // All per-worker deltas landed in the caller's registry...
        assert_eq!(outer.snapshot().counter("exec.test.cells"), Some(12));
        // ...and none leaked to the global registry.
        assert_ne!(
            espread_telemetry::global()
                .snapshot()
                .counter("exec.test.cells"),
            Some(12)
        );
    }
}
