//! Cross-validation against the structural simulator.
//!
//! `espread-protocol`'s `fec` module models XOR parity by member lists
//! and never moves a payload byte; this crate moves the bytes. The
//! netsim taxonomy experiments lean on the structural model, so the two
//! must agree wherever their semantics overlap (`m = 1`): identical
//! fragment streams from a lossless run must produce the same parity
//! groups, the same parity count, and — under every erasure pattern a
//! single XOR parity can face — the same recoverability verdicts.

use espread_fec::{Codec, FecError, Scratch};
use espread_protocol::fec::{apply_fec_recovery, FecEncoder, FragmentKey, ParityPacket};
use espread_protocol::packetize::{Fragment, Ldu, Reassembly};

const K: usize = 4;
const FRAMES: usize = 14; // three full groups of K plus a partial tail

/// The transmission-order fragment stream both sides consume: one
/// fragment per frame, deterministic payload sizes.
fn stream() -> Vec<(Fragment, u32)> {
    (0..FRAMES)
        .map(|frame| {
            let fragment = Fragment {
                window: 0,
                frame,
                frag: 0,
                frags_total: 1,
                layer: 0,
                layer_slot: 0,
                retransmit: false,
            };
            (fragment, 100 + (frame as u32 * 37) % 200)
        })
        .collect()
}

/// Deterministic payload bytes for one frame, zero-padded to `width`
/// (the group's XOR width, exactly the server's `shard_bytes` rule).
fn payload(frame: usize, len: u32, width: usize) -> Vec<u8> {
    let mut bytes: Vec<u8> = (0..len)
        .map(|i| (frame as u8).wrapping_mul(31) ^ i as u8)
        .collect();
    bytes.resize(width, 0);
    bytes
}

/// Feeds the stream to the structural encoder; returns its parities.
fn structural_parities() -> Vec<ParityPacket> {
    let mut enc = FecEncoder::new(0, K as u16);
    let mut parities = Vec::new();
    for (fragment, size) in stream() {
        parities.extend(enc.push(&fragment, size));
    }
    parities.extend(enc.flush());
    parities
}

/// The byte side's grouping of the same stream: chunks of `K` in push
/// order, a partial tail group last.
fn byte_groups() -> Vec<Vec<(Fragment, u32)>> {
    stream().chunks(K).map(<[_]>::to_vec).collect()
}

#[test]
fn group_membership_and_parity_count_agree() {
    let parities = structural_parities();
    let groups = byte_groups();
    assert_eq!(parities.len(), groups.len(), "parity count diverged");
    for (parity, group) in parities.iter().zip(&groups) {
        let structural: Vec<FragmentKey> = parity.members.clone();
        let byte_side: Vec<FragmentKey> = group.iter().map(|(f, _)| f.into()).collect();
        assert_eq!(structural, byte_side, "group {} membership", parity.group);
        let width = group.iter().map(|&(_, size)| size).max().unwrap();
        assert_eq!(parity.size_bytes, width, "group {} XOR width", parity.group);
    }
}

/// Byte-level verdict for one group under an erasure set: recovered
/// fragment count, with recovered bytes checked against the originals.
fn byte_verdict(group: &[(Fragment, u32)], erased: &[usize]) -> usize {
    let k = group.len();
    let width = group.iter().map(|&(_, size)| size).max().unwrap() as usize;
    let codec = Codec::new(k, 1).unwrap();
    let originals: Vec<Vec<u8>> = group
        .iter()
        .map(|&(f, size)| payload(f.frame, size, width))
        .collect();
    let mut parity = vec![Vec::new()];
    codec.encode_into(&originals, &mut parity).unwrap();

    let mut data = originals.clone();
    let mut present = vec![true; k];
    for &j in erased {
        data[j].clear();
        present[j] = false;
    }
    let mut scratch = Scratch::new();
    match codec.recover_into(width, &mut data, &present, &parity, &[true], &mut scratch) {
        Ok(n) => {
            assert_eq!(
                data, originals,
                "recovered bytes differ from the lossless run"
            );
            n
        }
        Err(FecError::TooManyErasures { .. }) => 0,
        Err(e) => panic!("unexpected codec error: {e:?}"),
    }
}

/// Structural verdict for the whole window under an erasure set: feeds
/// the surviving fragments to a real `Reassembly` and lets the
/// simulator repair what XOR semantics allow.
fn structural_verdict(erased: &[FragmentKey]) -> usize {
    let ldus: Vec<Ldu> = stream().iter().map(|&(_, size)| Ldu::new(size)).collect();
    let mut reassembly = Reassembly::new(&ldus, 2048);
    let mut received = Vec::new();
    for (fragment, _) in stream() {
        let key = FragmentKey::from(&fragment);
        if !erased.contains(&key) {
            reassembly.accept(&fragment);
            received.push(key);
        }
    }
    let recovered = apply_fec_recovery(&mut reassembly, &mut received, &structural_parities());
    for frame in 0..FRAMES {
        assert!(
            reassembly.is_complete(frame) || erased.iter().any(|k| k.frame == frame),
            "frame {frame} incomplete though never erased"
        );
    }
    recovered
}

#[test]
fn single_erasure_verdicts_agree() {
    let groups = byte_groups();
    for group in &groups {
        for j in 0..group.len() {
            let key = FragmentKey::from(&group[j].0);
            let structural = structural_verdict(&[key]);
            let byte_level = byte_verdict(group, &[j]);
            assert_eq!(structural, 1, "XOR repairs any single loss");
            assert_eq!(structural, byte_level, "verdicts diverged for {key:?}");
        }
    }
}

#[test]
fn double_erasure_within_a_group_is_unrecoverable_on_both_sides() {
    let groups = byte_groups();
    for group in &groups {
        for a in 0..group.len() {
            for b in a + 1..group.len() {
                let keys = [
                    FragmentKey::from(&group[a].0),
                    FragmentKey::from(&group[b].0),
                ];
                let structural = structural_verdict(&keys);
                let byte_level = byte_verdict(group, &[a, b]);
                assert_eq!(structural, 0, "one XOR parity cannot repair two losses");
                assert_eq!(structural, byte_level, "verdicts diverged for {keys:?}");
            }
        }
    }
}

#[test]
fn double_erasure_across_groups_recovers_on_both_sides() {
    let groups = byte_groups();
    // One loss in each of the first two groups: independent parities, so
    // both sides must repair both.
    let keys = [
        FragmentKey::from(&groups[0][1].0),
        FragmentKey::from(&groups[1][2].0),
    ];
    assert_eq!(structural_verdict(&keys), 2);
    assert_eq!(byte_verdict(&groups[0], &[1]), 1);
    assert_eq!(byte_verdict(&groups[1], &[2]), 1);
}
