//! The flight recorder riding a real proxy-faulted session: server,
//! proxy, and client each record into one `espread_obs::trio`, the dumps
//! round-trip through JSON lines, and the reconstructed timeline must
//! explain every residual loss and reproduce the client-measured CLF.

#![cfg(feature = "telemetry")]

use std::time::Duration;

use espread_net::{
    FaultPolicy, FaultProxy, NetClient, NetClientConfig, NetServer, NetServerConfig, RetryPolicy,
    SessionRecorder,
};
use espread_obs::{
    all_to_json_lines, parse_json_lines, reconstruct, trio, FrameOutcome, DEFAULT_CAPACITY,
};
use espread_protocol::{FecPolicy, ProtocolConfig, SessionOffer, StreamSource};
use espread_trace::{GopPattern, Movie, MpegTrace};

fn server_config(windows: usize) -> NetServerConfig {
    let trace = MpegTrace::new(Movie::JurassicPark, 1);
    NetServerConfig::new(
        ProtocolConfig::paper(0.6, 1),
        SessionOffer {
            gop_pattern: GopPattern::gop12(),
            gops_per_window: 2,
            open_gop: false,
            fps: 24,
            packet_bytes: 2048,
            max_frame_bytes: 62_776 / 8,
            fec: FecPolicy::off(),
        },
        StreamSource::mpeg(&trace, 2, windows, false),
    )
}

fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base: Duration::from_millis(20),
        max: Duration::from_millis(200),
    }
}

/// One recorded session through a seeded Gilbert proxy: every residual
/// loss attributed (zero violations), the reconstructed per-window CLF
/// identical to the client's own `espread-qos` measurement, and the whole
/// path exercised through the JSONL dump/parse round trip.
#[test]
fn recorded_session_timeline_attributes_every_loss_and_matches_clf() {
    const WINDOWS: usize = 8;
    let (srec, prec, crec) = trio(DEFAULT_CAPACITY, 0);

    let mut cfg = server_config(WINDOWS);
    cfg.recorder = SessionRecorder::attached(srec.clone());
    let mut server = NetServer::bind("127.0.0.1:0", cfg).unwrap();
    let mut proxy = FaultProxy::spawn_with_recorder(
        server.local_addr(),
        FaultPolicy::transparent().gilbert_data_loss(0.92, 0.6, 42),
        FaultPolicy::transparent(),
        SessionRecorder::attached(prec.clone()),
    )
    .unwrap();
    let config = NetClientConfig {
        recovery: true,
        retry: quick_retry(),
        recorder: SessionRecorder::attached(crec.clone()),
        ..NetClientConfig::default()
    };
    let client = NetClient::connect(proxy.client_addr(), config).unwrap();
    let report = client.stream().unwrap();
    proxy.shutdown();
    server.shutdown();
    assert_eq!(report.windows_completed, WINDOWS);

    let recordings = vec![srec.recording(), prec.recording(), crec.recording()];
    assert!(
        recordings.iter().all(|r| r.dropped == 0),
        "rings must not overflow at this session size"
    );

    // Round-trip through the on-disk format before reconstructing, so
    // the test covers exactly what the CI job and bench binary do.
    let text = all_to_json_lines(&recordings);
    let parsed = parse_json_lines(&text).unwrap();
    let timeline = reconstruct(&parsed);

    assert!(
        timeline.is_clean(),
        "unexplained timeline: {:?}",
        timeline.violations
    );
    assert!(!timeline.overflowed);
    assert_eq!(timeline.sessions.len(), 1, "one conn in the group");

    let session = &timeline.sessions[0];
    assert_eq!(session.windows.len(), WINDOWS);
    assert!(session.unclosed_windows.is_empty());
    let unattributed = session
        .windows
        .iter()
        .flat_map(|w| &w.frames)
        .filter(|f| f.outcome == FrameOutcome::LostUnattributed)
        .count();
    assert_eq!(unattributed, 0, "100% of residual losses attributed");

    // The burst-gap statistics must reproduce the CLF espread-qos
    // measured client-side on the very same realisation.
    let measured: Vec<usize> = report.series.clf_values().collect();
    assert_eq!(session.clf_values(), measured, "CLF cross-check");

    // This seed loses data, and recovery keeps every critical frame, so
    // both loss and recovery paths were actually exercised.
    assert!(timeline.total_lost() > 0, "seed 42 must lose frames");
    assert!(timeline.total_recovered() > 0, "NACK recovery must appear");
    assert!(session.windows.iter().any(|w| !w.burst_lengths.is_empty()));
}

/// Determinism of the attribution artifact: two runs on the same seed
/// reconstruct byte-identical timelines once timing-derived fields
/// (latencies) are set aside.
#[test]
fn reconstruction_is_deterministic_across_reruns() {
    const WINDOWS: usize = 4;
    let run = || {
        let (srec, prec, crec) = trio(DEFAULT_CAPACITY, 0);
        let mut cfg = server_config(WINDOWS);
        cfg.recorder = SessionRecorder::attached(srec.clone());
        let mut server = NetServer::bind("127.0.0.1:0", cfg).unwrap();
        let mut proxy = FaultProxy::spawn_with_recorder(
            server.local_addr(),
            FaultPolicy::transparent().gilbert_data_loss(0.92, 0.6, 9),
            FaultPolicy::transparent(),
            SessionRecorder::attached(prec.clone()),
        )
        .unwrap();
        let config = NetClientConfig {
            retry: quick_retry(),
            recorder: SessionRecorder::attached(crec.clone()),
            ..NetClientConfig::default()
        };
        let client = NetClient::connect(proxy.client_addr(), config).unwrap();
        client.stream().unwrap();
        proxy.shutdown();
        server.shutdown();
        let mut timeline = reconstruct(&[srec.recording(), prec.recording(), crec.recording()]);
        for s in &mut timeline.sessions {
            for w in &mut s.windows {
                for f in &mut w.frames {
                    f.latency_us = None;
                }
            }
        }
        timeline
    };
    let a = run();
    let b = run();
    assert!(a.is_clean(), "unexplained timeline: {:?}", a.violations);
    assert_eq!(a, b, "same seed must reconstruct the same timeline");
}
