//! Property-based tests of the wire codec: every well-formed message
//! round-trips exactly, and no byte sequence — random, truncated, or
//! mutated — can make `decode` panic.

use espread_net::wire::{
    self, Accept, ByeReason, CriticalNackMsg, DataMsg, Hello, Msg, Reject, WindowAckMsg, WindowEnd,
    HEADER_BYTES,
};
use espread_protocol::{Fragment, Ldu, Ordering};
use proptest::prelude::*;

fn ordering_from(code: u8) -> Ordering {
    match code % 4 {
        0 => Ordering::InOrder,
        1 => Ordering::Spread { adaptive: true },
        2 => Ordering::Spread { adaptive: false },
        _ => Ordering::Ibo,
    }
}

/// A deterministic exemplar of each message type, varied by the seeds.
fn exemplars(a: u64, b: u16, text: String, list: Vec<u16>) -> Vec<Msg> {
    let frags_total = (b % 7) + 1;
    vec![
        Msg::Hello(Hello {
            nonce: a,
            buffer_bytes: a ^ 0xABCD,
            max_startup_delay_ms: u64::from(b),
            ordering: ordering_from(a as u8),
        }),
        Msg::Accept(Accept {
            nonce: a,
            frames_per_window: b,
            windows_total: a as u32,
            packet_bytes: u32::from(b) + 1,
            fps: 24,
            layer_sizes: list.clone(),
            critical_frames: list.clone(),
        }),
        Msg::Reject(Reject {
            nonce: a,
            reason: text,
        }),
        Msg::Begin,
        Msg::Data(DataMsg {
            fragment: Fragment {
                window: a,
                frame: usize::from(b),
                frag: b % frags_total,
                frags_total,
                layer: a as u8,
                layer_slot: b,
                retransmit: a.is_multiple_of(2),
            },
            ldu: Ldu::new((a as u32).max(1)),
            payload_len: b % 2048,
        }),
        Msg::WindowEnd(WindowEnd {
            window: a,
            sent_at_us: a.wrapping_mul(3),
            last: b.is_multiple_of(2),
        }),
        Msg::WindowAck(WindowAckMsg {
            ack_seq: a,
            window: a ^ 1,
            echo_us: u64::from(b),
            per_layer_burst: list.clone(),
        }),
        Msg::CriticalNack(CriticalNackMsg {
            window: a,
            missing: list,
        }),
        Msg::Bye(if a.is_multiple_of(2) {
            ByeReason::Complete
        } else {
            ByeReason::Aborted
        }),
        Msg::ByeAck,
    ]
}

proptest! {
    /// encode → decode is the identity on every message type, for
    /// arbitrary field values.
    #[test]
    fn roundtrip(
        conn in any::<u32>(),
        a in any::<u64>(),
        b in any::<u16>(),
        text in prop::collection::vec(0u8..128, 0..40),
        list in prop::collection::vec(any::<u16>(), 0..24),
    ) {
        let text = String::from_utf8(text).expect("ascii");
        for msg in exemplars(a, b, text, list) {
            let bytes = wire::encode(conn, &msg);
            let (got_conn, got) = wire::decode(&bytes).expect("well-formed must decode");
            prop_assert_eq!(got_conn, conn);
            prop_assert_eq!(got, msg);
        }
    }

    /// Arbitrary byte soup never panics the decoder — it errors (or, for
    /// the vanishingly rare valid datagram, decodes).
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = wire::decode(&bytes);
    }

    /// Every truncation of a valid datagram is rejected with an error,
    /// not a panic.
    #[test]
    fn truncations_error_cleanly(
        a in any::<u64>(),
        b in any::<u16>(),
        list in prop::collection::vec(any::<u16>(), 0..16),
        cut_seed in any::<usize>(),
    ) {
        for msg in exemplars(a, b, "truncate me".into(), list) {
            let bytes = wire::encode(9, &msg);
            let cut = cut_seed % bytes.len();
            let result = wire::decode(&bytes[..cut]);
            prop_assert!(result.is_err(), "cut at {cut} of {} decoded", bytes.len());
        }
    }

    /// Flipping any single byte of a valid datagram never panics; the
    /// decoder either rejects it or yields some other valid message.
    #[test]
    fn single_byte_mutations_never_panic(
        a in any::<u64>(),
        b in any::<u16>(),
        list in prop::collection::vec(any::<u16>(), 0..16),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        for msg in exemplars(a, b, "mutate me".into(), list) {
            let mut bytes = wire::encode(9, &msg);
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= xor;
            let _ = wire::decode(&bytes);
        }
    }

    /// Inflating a length/count field beyond the datagram is an error
    /// (`Truncated`/`Overlength`), never an allocation blow-up or panic.
    #[test]
    fn hostile_length_fields_rejected(count in any::<u16>()) {
        // Hand-build a WindowAck header claiming `count`-many burst
        // entries with no body behind them.
        let mut bytes = wire::encode(
            1,
            &Msg::WindowAck(WindowAckMsg {
                ack_seq: 1,
                window: 0,
                echo_us: 0,
                per_layer_burst: vec![],
            }),
        );
        let len = bytes.len();
        bytes[len - 1] = count.min(255) as u8; // the u8 layer count
        if count.min(255) > 0 {
            prop_assert!(wire::decode(&bytes).is_err());
        }
        // And a CriticalNack with a u16 count field.
        let mut bytes = wire::encode(
            1,
            &Msg::CriticalNack(CriticalNackMsg { window: 0, missing: vec![] }),
        );
        let len = bytes.len();
        bytes[len - 2] = (count >> 8) as u8;
        bytes[len - 1] = count as u8;
        if count > 0 {
            prop_assert!(wire::decode(&bytes).is_err());
        }
    }

    /// The header prefix invariants hold for every message: magic,
    /// version, and a type byte `peek_type` agrees with.
    #[test]
    fn header_layout_stable(a in any::<u64>(), b in any::<u16>()) {
        for msg in exemplars(a, b, String::new(), vec![]) {
            let bytes = wire::encode(3, &msg);
            prop_assert!(bytes.len() >= HEADER_BYTES);
            prop_assert_eq!(&bytes[..4], &wire::MAGIC.to_be_bytes());
            prop_assert_eq!(bytes[4], wire::VERSION);
            prop_assert_eq!(wire::peek_type(&bytes), Some(msg.type_byte()));
        }
    }
}
