//! Theorem 1 — the minimum supportable CLF, validated numerically.
//!
//! For a grid of window sizes `n` and burst bounds `b`, prints the
//! information-theoretic lower bound, the constructive upper bound, and
//! the exact optimum found by `calculatePermutation`, flagging the
//! regimes of the theorem (`b = 1`, `b² ≤ n`, `b ≥ n`).
//!
//! ```sh
//! cargo run --release -p espread-bench --bin theorem1_validation
//! ```

use espread_core::{calculate_permutation, theorem_one};

fn main() {
    println!("Theorem 1 validation: k*(n, b) bracketed by the reconstructed bounds\n");
    println!(
        "{:>4} {:>4} {:>7} {:>7} {:>7} {:>7}  regime",
        "n", "b", "lower", "exact", "upper", "tight"
    );
    let mut checked = 0usize;
    let mut tight = 0usize;
    for n in [8usize, 12, 17, 24, 32, 48, 64] {
        for b in [1usize, 2, 3, 5, 8, 12, 16, 24, 32, 48, 64] {
            if b > n {
                continue;
            }
            let bound = theorem_one(n, b);
            let exact = calculate_permutation(n, b).worst_clf;
            assert!(
                bound.lower <= exact && exact <= bound.upper,
                "bracket violated at n={n} b={b}"
            );
            let regime = if b >= n {
                "b ≥ n ⇒ k = n"
            } else if b == 1 {
                "b = 1 ⇒ k = 1"
            } else if b * b <= n {
                "b² ≤ n ⇒ k = 1"
            } else {
                ""
            };
            checked += 1;
            if bound.is_tight() {
                tight += 1;
            }
            println!(
                "{n:>4} {b:>4} {:>7} {exact:>7} {:>7} {:>7}  {regime}",
                bound.lower,
                bound.upper,
                if bound.is_tight() { "yes" } else { "" },
            );
        }
    }
    println!("\n{checked} (n, b) pairs checked; bounds tight in {tight} of them.");
    println!("Every exact optimum fell inside the reconstructed Theorem-1 bracket.");

    espread_bench::write_telemetry_snapshot("theorem1_validation");
}
