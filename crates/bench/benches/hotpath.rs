//! Criterion micro-benchmarks for the zero-alloc steady-state hot path.
//!
//! Four families, mirroring `bench_hotpath`'s gated measurement:
//!
//! * `kcpo` — cached k-CPO order lookup plus table-driven apply/invert
//!   (`apply_into` / `unapply_into`) into caller-owned buffers;
//! * `layered` — layered order construction, both the uncached build
//!   (the cache-miss cost) and the fingerprint-keyed cached lookup;
//! * `wire` — datagram encode/decode through the pooled
//!   `DecodeScratch`;
//! * `netwin` — one complete steady-state `NetWindow` lap: accept every
//!   fragment, accept parity, recover (nothing erased), close, reset.

use criterion::{criterion_group, criterion_main, Criterion};
use espread_core::{calculate_permutation_cached, layered_uniform_cached, LayeredOrder};
use espread_net::clientwin::{NetWindow, NetWindowOutcome, RecoverScratch};
use espread_net::wire::{self, DataMsg, DecodeScratch, Msg, ParityMember, ParityMsg};
use espread_protocol::{Fragment, Ldu};
use espread_trace::GopPattern;
use std::hint::black_box;

fn bench_kcpo(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcpo");
    let (n, b) = (17usize, 5usize);
    let items: Vec<u32> = (0..n as u32).collect();
    let mut sent: Vec<u32> = Vec::with_capacity(n);
    let mut playout: Vec<Option<u32>> = Vec::with_capacity(n);
    let choice = calculate_permutation_cached(n, b);
    choice.permutation.apply_into(&items, &mut sent);
    let received: Vec<Option<u32>> = sent.iter().map(|&x| Some(x)).collect();

    group.bench_function("cached_lookup", |bch| {
        bch.iter(|| calculate_permutation_cached(black_box(n), black_box(b)))
    });
    group.bench_function("apply_into", |bch| {
        bch.iter(|| choice.permutation.apply_into(black_box(&items), &mut sent))
    });
    group.bench_function("unapply_into", |bch| {
        bch.iter(|| {
            choice
                .permutation
                .unapply_into(black_box(&received), &mut playout)
        })
    });
    group.finish();
}

fn bench_layered(c: &mut Criterion) {
    let mut group = c.benchmark_group("layered");
    let poset = GopPattern::gop12().dependency_poset(2, true);
    group.bench_function("with_uniform_bound", |bch| {
        bch.iter(|| LayeredOrder::with_uniform_bound(black_box(&poset), black_box(4)))
    });
    group.bench_function("cached_lookup", |bch| {
        bch.iter(|| layered_uniform_cached(black_box(&poset), black_box(4)))
    });
    group.finish();
}

fn data_msg() -> Msg {
    Msg::Data(DataMsg {
        fragment: Fragment {
            window: 3,
            frame: 5,
            frag: 1,
            frags_total: 2,
            layer: 1,
            layer_slot: 4,
            retransmit: false,
        },
        ldu: Ldu::new(2400),
        payload_len: 1200,
    })
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let msg = data_msg();
    let mut buf: Vec<u8> = Vec::with_capacity(2048);
    wire::try_encode_into(42, &msg, &mut buf).expect("fits");
    let datagram = buf.clone();
    let mut scratch = DecodeScratch::default();

    group.bench_function("encode_data", |bch| {
        bch.iter(|| wire::try_encode_into(42, black_box(&msg), &mut buf))
    });
    group.bench_function("decode_data", |bch| {
        bch.iter(|| {
            let (_, decoded) = wire::decode_with(black_box(&datagram), &mut scratch).expect("ok");
            scratch.recycle(decoded);
        })
    });
    group.finish();
}

fn frag(window: u64, frame: usize, frag: u16) -> DataMsg {
    DataMsg {
        fragment: Fragment {
            window,
            frame,
            frag,
            frags_total: 2,
            layer: if frame < 2 { 0 } else { 1 },
            layer_slot: (frame % 2) as u16,
            retransmit: false,
        },
        ldu: Ldu::new(200),
        payload_len: 100,
    }
}

fn bench_netwin(c: &mut Criterion) {
    let mut parity = ParityMsg {
        window: 0,
        group: 0,
        m: 1,
        parity_index: 0,
        shard_bytes: 100,
        members: vec![
            ParityMember {
                frame: 2,
                frag: 0,
                frags_total: 2,
            },
            ParityMember {
                frame: 2,
                frag: 1,
                frags_total: 2,
            },
        ],
    };
    let mut win = NetWindow::new(0, 4, &[2, 2], &[0, 1]);
    let mut rs = RecoverScratch::default();
    let mut nack: Vec<u16> = Vec::with_capacity(4);
    let mut outcome = NetWindowOutcome::default();
    let mut window = 0u64;
    c.bench_function("netwin/steady_window", |bch| {
        bch.iter(|| {
            for frame in 0..4 {
                for f in 0..2 {
                    win.accept(black_box(&frag(window, frame, f)));
                }
            }
            parity.window = window;
            win.accept_parity(&parity);
            win.recover_with(&mut rs);
            win.missing_critical_into(&mut nack);
            win.close_into(&mut outcome);
            window += 1;
            win.reset(window, 4, &[2, 2], &[0, 1]);
        })
    });
}

criterion_group!(benches, bench_kcpo, bench_layered, bench_wire, bench_netwin);
criterion_main!(benches);
