//! Descriptive statistics of generated traces.
//!
//! Used by the calibration tests and the experiment harness to report the
//! workload actually streamed (per-type frame counts and sizes, GOP sizes),
//! mirroring the way the paper summarises its traces in §4.1.

use std::fmt;

use crate::frame::{Frame, FrameType};

/// Per-frame-type summary: count, mean size, min/max size.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TypeStats {
    /// Number of frames of this type.
    pub count: usize,
    /// Mean frame size in bytes (0 when `count == 0`).
    pub mean_bytes: f64,
    /// Smallest frame in bytes.
    pub min_bytes: u32,
    /// Largest frame in bytes.
    pub max_bytes: u32,
}

/// Full trace summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Statistics for I frames.
    pub i: TypeStats,
    /// Statistics for P frames.
    pub p: TypeStats,
    /// Statistics for B frames.
    pub b: TypeStats,
    /// GOP sizes in bytes, one entry per complete GOP.
    pub gop_bytes: Vec<u64>,
    /// Total stream size in bytes.
    pub total_bytes: u64,
}

impl TraceStats {
    /// Computes statistics for `frames`, grouping GOPs of length
    /// `gop_len` (incomplete trailing GOPs are ignored for `gop_bytes`).
    ///
    /// # Panics
    ///
    /// Panics if `gop_len == 0`.
    pub fn of(frames: &[Frame], gop_len: usize) -> Self {
        assert!(gop_len > 0, "GOP length must be positive");
        let mut acc: [(usize, u64, u32, u32); 3] = [(0, 0, u32::MAX, 0); 3];
        for f in frames {
            let slot = match f.frame_type {
                FrameType::I => 0,
                FrameType::P => 1,
                FrameType::B => 2,
            };
            let (count, sum, min, max) = &mut acc[slot];
            *count += 1;
            *sum += u64::from(f.size_bytes);
            *min = (*min).min(f.size_bytes);
            *max = (*max).max(f.size_bytes);
        }
        let to_stats = |(count, sum, min, max): (usize, u64, u32, u32)| TypeStats {
            count,
            mean_bytes: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            min_bytes: if count == 0 { 0 } else { min },
            max_bytes: max,
        };
        let gop_bytes: Vec<u64> = frames
            .chunks_exact(gop_len)
            .map(|g| g.iter().map(|f| u64::from(f.size_bytes)).sum())
            .collect();
        TraceStats {
            i: to_stats(acc[0]),
            p: to_stats(acc[1]),
            b: to_stats(acc[2]),
            gop_bytes,
            total_bytes: frames.iter().map(|f| u64::from(f.size_bytes)).sum(),
        }
    }

    /// The largest complete GOP in bytes (0 when no complete GOP exists).
    pub fn max_gop_bytes(&self) -> u64 {
        self.gop_bytes.iter().copied().max().unwrap_or(0)
    }

    /// The mean complete-GOP size in bytes.
    pub fn mean_gop_bytes(&self) -> f64 {
        if self.gop_bytes.is_empty() {
            0.0
        } else {
            self.gop_bytes.iter().sum::<u64>() as f64 / self.gop_bytes.len() as f64
        }
    }

    /// Mean bitrate in bits per second at the given frame rate.
    pub fn mean_bitrate_bps(&self, fps: u32, frame_count: usize) -> f64 {
        if frame_count == 0 {
            return 0.0;
        }
        let seconds = frame_count as f64 / f64::from(fps);
        self.total_bytes as f64 * 8.0 / seconds
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "I: {} frames, mean {:.0} B | P: {} frames, mean {:.0} B | B: {} frames, mean {:.0} B",
            self.i.count,
            self.i.mean_bytes,
            self.p.count,
            self.p.mean_bytes,
            self.b.count,
            self.b.mean_bytes
        )?;
        write!(
            f,
            "GOPs: {} complete, mean {:.0} B, max {} B",
            self.gop_bytes.len(),
            self.mean_gop_bytes(),
            self.max_gop_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpeg::{Movie, MpegTrace};

    #[test]
    fn stats_of_synthetic_trace() {
        let frames = MpegTrace::new(Movie::JurassicPark, 11).gops(20);
        let stats = TraceStats::of(&frames, 12);
        assert_eq!(stats.i.count, 20);
        assert_eq!(stats.p.count, 60);
        assert_eq!(stats.b.count, 160);
        assert_eq!(stats.gop_bytes.len(), 20);
        assert!(stats.i.mean_bytes > stats.p.mean_bytes);
        assert!(stats.p.mean_bytes > stats.b.mean_bytes);
        assert!(stats.max_gop_bytes() <= Movie::JurassicPark.max_gop_bits() / 8);
        assert_eq!(
            stats.total_bytes,
            frames.iter().map(|f| u64::from(f.size_bytes)).sum::<u64>()
        );
    }

    #[test]
    fn empty_trace() {
        let stats = TraceStats::of(&[], 12);
        assert_eq!(stats.i.count, 0);
        assert_eq!(stats.i.mean_bytes, 0.0);
        assert_eq!(stats.max_gop_bytes(), 0);
        assert_eq!(stats.mean_gop_bytes(), 0.0);
        assert_eq!(stats.mean_bitrate_bps(24, 0), 0.0);
    }

    #[test]
    fn bitrate_computation() {
        let frames = MpegTrace::new(Movie::JurassicPark, 11).gops(10);
        let stats = TraceStats::of(&frames, 12);
        let bps = stats.mean_bitrate_bps(24, frames.len());
        // 120 frames at 24 fps = 5 s of video.
        let expected = stats.total_bytes as f64 * 8.0 / 5.0;
        assert!((bps - expected).abs() < 1e-6);
    }

    #[test]
    fn incomplete_gop_ignored_for_gop_stats() {
        let frames = MpegTrace::new(Movie::JurassicPark, 11).frames(30);
        let stats = TraceStats::of(&frames, 12);
        assert_eq!(stats.gop_bytes.len(), 2); // 30 frames = 2 complete GOPs
    }

    #[test]
    fn display_mentions_counts() {
        let frames = MpegTrace::new(Movie::JurassicPark, 11).gops(2);
        let text = TraceStats::of(&frames, 12).to_string();
        assert!(text.contains("I: 2 frames"));
        assert!(text.contains("GOPs: 2 complete"));
    }

    #[test]
    #[should_panic(expected = "GOP length must be positive")]
    fn zero_gop_len_rejected() {
        let _ = TraceStats::of(&[], 0);
    }
}
