//! # espread-obs — causal flight recorder & timeline reconstructor
//!
//! Observability for the error-spreading UDP stack: each of the three
//! nodes (server, fault proxy, client) records fixed-size structured
//! events into a bounded per-session ring buffer, the rings are dumped as
//! versioned JSON lines next to the existing telemetry snapshots, and the
//! [`reconstruct`] pass merges the dumps back into a single causal
//! per-frame timeline that
//!
//! * attributes **every residual loss and retransmission** to a concrete
//!   [`Cause`] (Gilbert–Elliott loss at the proxy, a dropped control
//!   datagram, an oversize send refusal, retry exhaustion, …),
//! * recomputes per-window **burst/gap statistics and the CLF** so they
//!   can be cross-checked against what `espread-qos` measured client-side
//!   on the very same realisation, and
//! * **fails loudly** — unattributed losses and causality violations
//!   (a fragment delivered that was never sent, or delivered before it
//!   was sent on a shared clock) land in
//!   [`TimelineReport::violations`].
//!
//! The recorder is deliberately boring: [`FlightRecorder::record`] is one
//! clock read, one mutex lock, and one in-place `Copy` store into a
//! preallocated slot — zero heap allocation on the steady-state hot path
//! (asserted by a counting-allocator test) and bounded memory always
//! (overflow overwrites the oldest event and increments a drop counter).
//! When `espread-net` is built without its `telemetry` feature the
//! recording hooks compile to nothing; this crate itself is
//! feature-free and tiny.
//!
//! ```
//! use espread_obs::{data_detail, reconstruct, trio, EventKind};
//!
//! // One in-process session: the three recorders share an epoch.
//! let (server, proxy, client) = trio(1024, 0);
//! server.record(EventKind::Sent, 1, 0, 0, data_detail(0, false));
//! proxy.record(EventKind::ForwardedData, 1, 0, 0, data_detail(0, false));
//! client.record(EventKind::Delivered, 1, 0, 0, data_detail(0, false));
//! client.record(EventKind::Reassembled, 1, 0, 0, 1);
//! client.record(EventKind::WindowClosed, 1, 0, u32::MAX, 1);
//!
//! let report = reconstruct(&[server.recording(), proxy.recording(), client.recording()]);
//! assert!(report.is_clean());
//! assert_eq!(report.total_lost(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dump;
pub mod event;
pub mod recorder;
pub mod timeline;

pub use dump::{all_to_json_lines, parse_json_lines, to_json_lines, DumpError, DUMP_VERSION};
pub use event::{
    data_detail, detail_frag, detail_retransmit, EventKind, ObsEvent, Role, ALL_KINDS, FRAME_NONE,
    WINDOW_NONE,
};
pub use recorder::{trio, FlightRecorder, Recording, DEFAULT_CAPACITY};
pub use timeline::{
    reconstruct, Cause, FrameOutcome, FrameVerdict, SessionTimeline, TimelineReport,
    WindowTimeline, ALL_CAUSES,
};
