//! Chain-related queries: chain checks and chain covers.
//!
//! A **chain** is a subset in which any two elements are comparable (§3.1).
//! The paper needs chains chiefly through Mirsky's theorem: the minimum
//! number of antichains covering a poset equals its longest-chain length.

use crate::poset::Poset;

impl Poset {
    /// Whether `subset` is a chain: every pair of elements comparable.
    ///
    /// # Panics
    ///
    /// Panics if any element of `subset` is out of range.
    pub fn is_chain(&self, subset: &[usize]) -> bool {
        subset
            .iter()
            .enumerate()
            .all(|(i, &a)| subset[i + 1..].iter().all(|&b| self.comparable(a, b)))
    }

    /// Sorts the elements of a chain bottom-up.
    ///
    /// Returns `None` when `subset` is not a chain (or contains
    /// duplicates — a set cannot repeat elements).
    pub fn sort_chain(&self, subset: &[usize]) -> Option<Vec<usize>> {
        let mut sorted = subset.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        if !self.is_chain(subset) {
            return None;
        }
        let mut chain = subset.to_vec();
        // Comparability is total within a chain, so less_equal sorts it.
        chain.sort_by(|&a, &b| {
            if a == b {
                std::cmp::Ordering::Equal
            } else if self.less_than(a, b) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        Some(chain)
    }

    /// The length of the longest chain through element `a` (number of
    /// elements on the longest chain containing `a`).
    pub fn longest_chain_through(&self, a: usize) -> usize {
        // height ending at a (elements below) + longest ascent above a.
        let below = self.element_height(a);
        let mut above_len = vec![usize::MAX; self.len()];
        fn ascent(p: &Poset, x: usize, memo: &mut [usize]) -> usize {
            if memo[x] != usize::MAX {
                return memo[x];
            }
            let best = p
                .upper_covers(x)
                .iter()
                .map(|&y| 1 + ascent(p, y, memo))
                .max()
                .unwrap_or(0);
            memo[x] = best;
            best
        }
        below + 1 + ascent(self, a, &mut above_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n_poset() -> Poset {
        // The "N" poset: 0 < 2, 1 < 2, 1 < 3.
        let mut b = Poset::builder(4);
        b.add_relation(0, 2).unwrap();
        b.add_relation(1, 2).unwrap();
        b.add_relation(1, 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_detection() {
        let p = n_poset();
        assert!(p.is_chain(&[1, 2]));
        assert!(p.is_chain(&[0, 2]));
        assert!(!p.is_chain(&[0, 1]));
        assert!(!p.is_chain(&[2, 3]));
        assert!(p.is_chain(&[])); // vacuous
        assert!(p.is_chain(&[3]));
    }

    #[test]
    fn sort_chain_orders_bottom_up() {
        let p = Poset::chain(5);
        assert_eq!(p.sort_chain(&[4, 0, 2]), Some(vec![0, 2, 4]));
        assert_eq!(n_poset().sort_chain(&[2, 1]), Some(vec![1, 2]));
    }

    #[test]
    fn sort_chain_rejects_non_chains_and_duplicates() {
        let p = n_poset();
        assert_eq!(p.sort_chain(&[0, 1]), None);
        assert_eq!(p.sort_chain(&[1, 1]), None);
    }

    #[test]
    fn longest_chain_through_each_element() {
        let p = n_poset();
        assert_eq!(p.longest_chain_through(0), 2); // 0 < 2
        assert_eq!(p.longest_chain_through(1), 2); // 1 < 2 or 1 < 3
        assert_eq!(p.longest_chain_through(2), 2);
        assert_eq!(p.longest_chain_through(3), 2);

        let c = Poset::chain(4);
        for a in 0..4 {
            assert_eq!(c.longest_chain_through(a), 4);
        }
    }
}
