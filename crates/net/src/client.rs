//! The UDP streaming client: handshake, un-permute, measure, ACK.
//!
//! [`NetClient::connect`] runs the `Hello`/`Accept` negotiation under
//! bounded retry; [`NetClient::stream`] then receives the whole stream,
//! tracking each window with [`NetWindow`](crate::clientwin::NetWindow) —
//! reassembling fragments, observing per-layer loss bursts in the
//! transmission-slot domain — and answering every `WindowEnd` with a
//! sequence-numbered `WindowAck`. Lost `WindowEnd`s are healed two ways:
//! the server retries them, and data for a *newer* window implicitly
//! finalizes the current one.

use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::{Duration, Instant};

use espread_protocol::{ClientCapabilities, Ordering};
use espread_qos::{ContinuityMetrics, LossPattern, WindowSeries};

use crate::clientwin::{NetWindow, RecoverScratch};
use crate::error::NetError;
use crate::obsrec::SessionRecorder;
use crate::retry::RetryPolicy;
use crate::telem::ClientTelem;
use crate::wire::{self, Accept, CriticalNackMsg, Hello, Msg, WindowAckMsg, CONN_NONE};

/// Socket poll granularity. Set as the read timeout **once** at connect
/// — all later deadlines are computed in userspace, so steady-state
/// receives issue zero `set_read_timeout` syscalls (a receive may
/// overshoot its deadline by at most one poll tick).
const POLL: Duration = Duration::from_millis(10);

/// The one sanctioned way to touch the socket's read timeout: every
/// update is counted, so [`NetClientReport::timeout_updates`] acts as a
/// strace-free regression guard against per-receive syscall churn.
fn set_read_timeout_counted(
    socket: &UdpSocket,
    updates: &mut u64,
    timeout: Duration,
) -> io::Result<()> {
    *updates += 1;
    socket.set_read_timeout(Some(timeout))
}

/// Per-process handshake-nonce discriminator (the local port provides
/// cross-process uniqueness).
static NONCE_COUNTER: AtomicU64 = AtomicU64::new(1);

/// A handshake nonce no prior `Hello` from this process+port has used.
fn fresh_nonce(socket: &UdpSocket) -> io::Result<u64> {
    Ok((u64::from(socket.local_addr()?.port()) << 32)
        | NONCE_COUNTER.fetch_add(1, AtomicOrdering::Relaxed))
}

/// Cheap deterministic jitter in `[0, retry_after/4]` ms, derived from
/// the nonce: decorrelates a thundering herd of `Busy`-refused clients
/// without an RNG dependency.
fn busy_jitter_ms(nonce: u64, retry_after_ms: u32) -> u64 {
    let span = u64::from(retry_after_ms) / 4 + 1;
    nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15) % span
}

/// Client-side session parameters.
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Resources the handshake checks the offer against.
    pub capabilities: ClientCapabilities,
    /// Transmission ordering to request from the server.
    pub ordering: Ordering,
    /// Whether to NACK missing critical frames at window end, for up to
    /// `retry.max_attempts` retransmission rounds per window (each round
    /// rides the channel again, so one round is rarely enough on a lossy
    /// link).
    pub recovery: bool,
    /// Retry schedule for the handshake and `Begin`.
    pub retry: RetryPolicy,
    /// Hard ceiling on the whole stream's wall-clock time.
    pub deadline: Duration,
    /// Optional flight-recorder hook (see `espread-obs`); disabled by
    /// default.
    pub recorder: SessionRecorder,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            capabilities: ClientCapabilities::desktop(),
            ordering: Ordering::spread(),
            recovery: false,
            retry: RetryPolicy::lan(),
            deadline: Duration::from_secs(60),
            recorder: SessionRecorder::disabled(),
        }
    }
}

/// What the client saw over the whole stream.
#[derive(Debug, Clone)]
pub struct NetClientReport {
    /// Per-window continuity metrics, in window order.
    pub series: WindowSeries,
    /// Per-window playout loss patterns, in window order.
    pub patterns: Vec<LossPattern>,
    /// Windows finalized (acked).
    pub windows_completed: usize,
    /// Windows the server promised at negotiation.
    pub windows_total: usize,
    /// `WindowAck`s sent (including re-acks of retried `WindowEnd`s).
    pub acks_sent: u64,
    /// `CriticalNack`s sent.
    pub nacks_sent: u64,
    /// Datagrams received (including undecodable ones).
    pub datagrams_rx: u64,
    /// `Data` datagrams received. With recovery off this is a pure
    /// function of the channel realisation (each fragment is sent
    /// exactly once), unlike `datagrams_rx`, whose control-plane share
    /// depends on wall-clock retry cadence.
    pub data_rx: u64,
    /// `Parity` datagrams received (same determinism property).
    pub parity_rx: u64,
    /// Bytes received.
    pub bytes_rx: u64,
    /// Extra `Hello` sends beyond the first.
    pub hello_retries: u32,
    /// Whether the server's `Bye` arrived (graceful close).
    pub saw_bye: bool,
    /// `set_read_timeout` syscalls issued over the client's lifetime.
    /// Exactly one (at connect): the poll timeout is set once and every
    /// later deadline is computed in userspace.
    pub timeout_updates: u64,
    /// Fragments recovered by erasure decoding (zero when the server
    /// sent no parity).
    pub fec_recovered: u64,
    /// FEC groups whose erasures exceeded their surviving parity.
    pub fec_unrecoverable: u64,
    /// Control sends the local socket refused (also counted in
    /// `net.client.send_errors`). Nonzero means some ACKs/NACKs never
    /// left the host — the server saw them as loss.
    pub send_errors: u64,
}

/// A connected (negotiated) client, ready to stream.
#[derive(Debug)]
pub struct NetClient {
    socket: UdpSocket,
    conn_id: u32,
    accept: Accept,
    config: NetClientConfig,
    telem: ClientTelem,
    hello_retries: u32,
    timeout_updates: u64,
}

impl NetClient {
    /// Negotiates a session with the server at `server`.
    ///
    /// # Errors
    ///
    /// Socket errors, a server [`NetError::Rejected`], or
    /// [`NetError::HandshakeTimeout`] after the retry schedule runs dry.
    pub fn connect(server: SocketAddr, config: NetClientConfig) -> Result<Self, NetError> {
        config.retry.validate().map_err(NetError::Config)?;
        if config.deadline.is_zero() {
            return Err(NetError::Config("deadline must be positive".into()));
        }
        let bind_ip: IpAddr = match server.ip() {
            IpAddr::V4(ip) if ip.is_loopback() => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            IpAddr::V6(ip) if ip.is_loopback() => IpAddr::V6(Ipv6Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::UNSPECIFIED),
        };
        let socket = UdpSocket::bind((bind_ip, 0))?;
        socket.connect(server)?;
        let mut timeout_updates = 0u64;
        set_read_timeout_counted(&socket, &mut timeout_updates, POLL)?;
        let telem = ClientTelem::default_global();
        let make_hello = |nonce: u64| {
            Msg::Hello(Hello {
                nonce,
                buffer_bytes: config.capabilities.buffer_bytes,
                max_startup_delay_ms: config.capabilities.max_startup_delay_ms,
                ordering: config.ordering,
            })
        };
        let mut nonce = fresh_nonce(&socket)?;
        let mut hello = make_hello(nonce);
        let mut buf = vec![0u8; 65_536];
        let mut send_buf = Vec::new();
        let mut hello_retries = 0u32;
        let mut last_busy: Option<u32> = None;
        'attempts: for attempt in 0..config.retry.max_attempts {
            if attempt > 0 {
                hello_retries += 1;
                telem.on_hello_retry();
            }
            send_on(&socket, &telem, CONN_NONE, &hello, &mut send_buf);
            let deadline = Instant::now() + config.retry.backoff(attempt);
            loop {
                // Userspace deadline; the fixed poll timeout bounds how
                // long one recv can overshoot it.
                if Instant::now() >= deadline {
                    break;
                }
                let len = match socket.recv(&mut buf) {
                    Ok(len) => len,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(e) => return Err(NetError::Io(e)),
                };
                telem.on_rx();
                match wire::decode(&buf[..len]) {
                    Ok((conn_id, Msg::Accept(accept))) if accept.nonce == nonce => {
                        validate_accept(&accept)?;
                        return Ok(NetClient {
                            socket,
                            conn_id,
                            accept,
                            config,
                            telem,
                            hello_retries,
                            timeout_updates,
                        });
                    }
                    Ok((_, Msg::Reject(reject))) if reject.nonce == nonce => {
                        return Err(NetError::Rejected(reject.reason));
                    }
                    Ok((_, Msg::Busy { retry_after_ms })) => {
                        // Admission refusal: honor the server's
                        // retry-after (plus our own jitter), then spend
                        // the next attempt on a *fresh* nonce — the old
                        // nonce's verdict is cached server-side and
                        // duplicated Hellos get the same Busy back.
                        last_busy = Some(retry_after_ms);
                        std::thread::sleep(Duration::from_millis(
                            u64::from(retry_after_ms) + busy_jitter_ms(nonce, retry_after_ms),
                        ));
                        nonce = fresh_nonce(&socket)?;
                        hello = make_hello(nonce);
                        continue 'attempts;
                    }
                    Ok(_) => {} // stale or foreign: keep waiting
                    Err(_) => telem.on_decode_error(),
                }
            }
        }
        Err(match last_busy {
            Some(retry_after_ms) => NetError::ServerBusy { retry_after_ms },
            None => NetError::HandshakeTimeout,
        })
    }

    /// The negotiated session shape.
    pub fn session(&self) -> &Accept {
        &self.accept
    }

    /// Streams to completion (or deadline) and reports what arrived.
    ///
    /// # Errors
    ///
    /// [`NetError::StreamTimeout`] when the first datagram never arrives
    /// or the overall deadline passes; socket errors.
    pub fn stream(self) -> Result<NetClientReport, NetError> {
        let hard_deadline = Instant::now() + self.config.deadline;
        let mut st = StreamState::new(&self.accept, &self.config);
        let mut buf = vec![0u8; 65_536];

        // Begin, retried until the stream actually starts flowing.
        let mut started = false;
        'begin: for attempt in 0..self.config.retry.max_attempts {
            if attempt > 0 {
                self.telem.on_begin_retry();
            }
            if !send_on(
                &self.socket,
                &self.telem,
                self.conn_id,
                &Msg::Begin,
                &mut st.send_buf,
            ) {
                st.send_errors += 1;
            }
            let deadline = Instant::now() + self.config.retry.backoff(attempt);
            while Instant::now() < deadline {
                if let Some(len) = self.recv(&mut buf, deadline)? {
                    st.bytes_rx += len as u64;
                    st.datagrams_rx += 1;
                    match wire::decode_with(&buf[..len], &mut st.decode_scratch) {
                        // Duplicate handshake reply: nothing to do.
                        Ok((_, msg @ Msg::Accept(_))) => st.decode_scratch.recycle(msg),
                        Ok((_, msg)) => {
                            self.process(&mut st, &msg);
                            st.decode_scratch.recycle(msg);
                            started = true;
                            break 'begin;
                        }
                        Err(_) => {
                            self.telem.on_decode_error();
                            self.config.recorder.decode_error(self.conn_id);
                        }
                    }
                }
            }
        }
        if !started {
            return Err(NetError::StreamTimeout);
        }

        while !st.done {
            let now = Instant::now();
            if now >= hard_deadline {
                return Err(NetError::StreamTimeout);
            }
            // All windows in: linger for the Bye, but don't stall forever.
            if let Some(at) = st.completed_at {
                if now.saturating_duration_since(at) > self.config.retry.total_wait() {
                    break;
                }
            }
            let wait_until = Instant::now() + POLL;
            if let Some(len) = self.recv(&mut buf, wait_until.min(hard_deadline))? {
                st.bytes_rx += len as u64;
                st.datagrams_rx += 1;
                match wire::decode_with(&buf[..len], &mut st.decode_scratch) {
                    Ok((_, msg)) => {
                        self.process(&mut st, &msg);
                        st.decode_scratch.recycle(msg);
                    }
                    Err(_) => {
                        self.telem.on_decode_error();
                        self.config.recorder.decode_error(self.conn_id);
                    }
                }
            }
        }

        Ok(NetClientReport {
            series: st.series,
            patterns: st.patterns,
            windows_completed: st.acked.len(),
            windows_total: st.windows_total,
            acks_sent: st.acks_sent,
            nacks_sent: st.nacks_sent,
            datagrams_rx: st.datagrams_rx,
            data_rx: st.data_rx,
            parity_rx: st.parity_rx,
            bytes_rx: st.bytes_rx,
            hello_retries: self.hello_retries,
            saw_bye: st.saw_bye,
            timeout_updates: self.timeout_updates,
            fec_recovered: st.fec_recovered,
            fec_unrecoverable: st.fec_unrecoverable,
            send_errors: st.send_errors,
        })
    }

    /// One timed receive; `None` on timeout. The deadline is enforced in
    /// userspace against the connect-time poll timeout — no
    /// `set_read_timeout` syscall per receive (the old behaviour, one
    /// syscall per datagram, is what [`NetClientReport::timeout_updates`]
    /// guards against).
    fn recv(&self, buf: &mut [u8], deadline: Instant) -> Result<Option<usize>, NetError> {
        if Instant::now() >= deadline {
            return Ok(None);
        }
        match self.socket.recv(buf) {
            Ok(len) => {
                self.telem.on_rx();
                Ok(Some(len))
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(NetError::Io(e)),
        }
    }

    fn process(&self, st: &mut StreamState, msg: &Msg) {
        match msg {
            Msg::Data(data) => {
                st.data_rx += 1;
                let w = data.fragment.window;
                let frame = data.fragment.frame as u32;
                let frag = data.fragment.frag;
                let retx = data.fragment.retransmit;
                let obs = &self.config.recorder;
                match &st.current {
                    Some(cur) if w == cur.window() => {}
                    Some(cur) if w > cur.window() => {
                        // The WindowEnd was lost but the stream moved on:
                        // close the old window implicitly (echo 0 = no
                        // RTT sample).
                        let cur = st.current.take().expect("matched Some");
                        self.finalize(st, cur, 0);
                        st.open(w);
                    }
                    Some(_) => {
                        // Stale retransmission: decodable, but the window
                        // has moved on.
                        obs.ignored(self.conn_id, w, frame, frag, retx);
                        return;
                    }
                    None => {
                        if st.acked.contains_key(&w) {
                            // Duplicate after finalize.
                            obs.ignored(self.conn_id, w, frame, frag, retx);
                            return;
                        }
                        st.open(w);
                    }
                }
                let cur = st.current.as_mut().expect("opened above");
                let was_complete = cur.is_complete(data.fragment.frame);
                if cur.accept(data) {
                    obs.delivered(self.conn_id, w, frame, frag, retx);
                    if !was_complete && cur.is_complete(data.fragment.frame) {
                        obs.reassembled(self.conn_id, w, frame, data.fragment.frags_total);
                    }
                } else {
                    self.telem.on_bad_fragment();
                    obs.bad_fragment(self.conn_id, w, frame, frag);
                }
            }
            Msg::Parity(parity) => {
                st.parity_rx += 1;
                // Parity rides the same window-advance logic as data: a
                // group for a newer window implicitly closes the current
                // one.
                let w = parity.window;
                match &st.current {
                    Some(cur) if w == cur.window() => {}
                    Some(cur) if w > cur.window() => {
                        let cur = st.current.take().expect("matched Some");
                        self.finalize(st, cur, 0);
                        st.open(w);
                    }
                    Some(_) => return, // stale
                    None => {
                        if st.acked.contains_key(&w) {
                            return; // duplicate after finalize
                        }
                        st.open(w);
                    }
                }
                let cur = st.current.as_mut().expect("opened above");
                if !cur.accept_parity(parity) {
                    self.telem.on_bad_fragment();
                }
            }
            Msg::WindowEnd(end) => {
                if let Some(bursts) = st.acked.get(&end.window).cloned() {
                    // Our ack was lost and the server retried: re-ack
                    // with a fresh sequence number.
                    self.ack(st, end.window, end.sent_at_us, bursts);
                    return;
                }
                match &st.current {
                    Some(cur) if end.window < cur.window() => return, // stale
                    Some(cur) if end.window > cur.window() => {
                        let cur = st.current.take().expect("matched Some");
                        self.finalize(st, cur, 0);
                        st.open(end.window);
                    }
                    Some(_) => {}
                    None => st.open(end.window),
                }
                // Erasure recovery repairs what parity can cover BEFORE
                // the NACK decision, so covered losses cost zero
                // retransmission rounds.
                if let Some(mut cur) = st.current.take() {
                    self.run_recovery(st, &mut cur);
                    st.current = Some(cur);
                }
                let nack_rounds = match st.nacked {
                    Some((w, rounds)) if w == end.window => rounds,
                    _ => 0,
                };
                if self.config.recovery && nack_rounds < self.config.retry.max_attempts {
                    let mut missing = std::mem::take(&mut st.nack_buf);
                    st.current
                        .as_ref()
                        .expect("opened above")
                        .missing_critical_into(&mut missing);
                    if !missing.is_empty() {
                        st.nacked = Some((end.window, nack_rounds + 1));
                        st.nacks_sent += 1;
                        for &frame in &missing {
                            self.config.recorder.nack_sent(
                                self.conn_id,
                                end.window,
                                u32::from(frame),
                                nack_rounds + 1,
                            );
                        }
                        let nack = Msg::CriticalNack(CriticalNackMsg {
                            window: end.window,
                            missing,
                        });
                        if !send_on(
                            &self.socket,
                            &self.telem,
                            self.conn_id,
                            &nack,
                            &mut st.send_buf,
                        ) {
                            st.send_errors += 1;
                        }
                        if let Msg::CriticalNack(n) = nack {
                            st.nack_buf = n.missing;
                        }
                        // Wait for the recovery round; the server re-sends
                        // WindowEnd after retransmitting.
                        return;
                    }
                    st.nack_buf = missing;
                }
                let cur = st.current.take().expect("checked above");
                self.finalize(st, cur, end.sent_at_us);
            }
            Msg::Bye(_) => {
                if let Some(cur) = st.current.take() {
                    self.finalize(st, cur, 0);
                }
                if !send_on(
                    &self.socket,
                    &self.telem,
                    self.conn_id,
                    &Msg::ByeAck,
                    &mut st.send_buf,
                ) {
                    st.send_errors += 1;
                }
                st.saw_bye = true;
                st.done = true;
            }
            // Handshake duplicates and client-side message types echoed
            // back are not ours to act on.
            _ => {}
        }
    }

    /// Runs one erasure-recovery pass over `win`, folding the result
    /// into telemetry and the report counters.
    fn run_recovery(&self, st: &mut StreamState, win: &mut NetWindow) {
        let r = win.recover_with(&mut st.recover_scratch);
        if r.recovered > 0 {
            self.telem.on_fec_recovered(r.recovered as u64);
            st.fec_recovered += r.recovered as u64;
        }
        if r.unrecoverable > 0 {
            self.telem.on_fec_unrecoverable(r.unrecoverable as u64);
            st.fec_unrecoverable += r.unrecoverable as u64;
        }
    }

    fn finalize(&self, st: &mut StreamState, mut win: NetWindow, echo_us: u64) {
        // Windows closed implicitly (lost WindowEnd, data for a newer
        // window) still get their recovery pass; for explicitly closed
        // ones this pass finds nothing new.
        self.run_recovery(st, &mut win);
        let outcome = win.close();
        st.spare = Some(win);
        for frame in outcome.pattern.lost_indices() {
            self.config
                .recorder
                .abandoned(self.conn_id, outcome.window, frame as u32);
        }
        self.config.recorder.window_closed(
            self.conn_id,
            outcome.window,
            outcome.pattern.len() as u32,
        );
        st.series.push(ContinuityMetrics::of(&outcome.pattern));
        st.patterns.push(outcome.pattern);
        self.telem.on_window();
        self.ack(st, outcome.window, echo_us, outcome.per_layer_burst.clone());
        st.acked.insert(outcome.window, outcome.per_layer_burst);
        if st.acked.len() >= st.windows_total && st.completed_at.is_none() {
            st.completed_at = Some(Instant::now());
        }
    }

    fn ack(&self, st: &mut StreamState, window: u64, echo_us: u64, bursts: Vec<u16>) {
        st.ack_seq += 1;
        st.acks_sent += 1;
        self.config
            .recorder
            .ack_sent(self.conn_id, window, st.ack_seq);
        let msg = Msg::WindowAck(WindowAckMsg {
            ack_seq: st.ack_seq,
            window,
            echo_us,
            per_layer_burst: bursts,
        });
        if !send_on(
            &self.socket,
            &self.telem,
            self.conn_id,
            &msg,
            &mut st.send_buf,
        ) {
            st.send_errors += 1;
        }
    }
}

/// Refuses an `Accept` whose session shape is internally inconsistent —
/// a hostile (or corrupted) server must produce a typed error, not a
/// client that NACKs unreachable frames forever.
fn validate_accept(accept: &Accept) -> Result<(), NetError> {
    if accept.frames_per_window == 0 {
        return Err(NetError::Protocol("accept: zero frames per window".into()));
    }
    if let Some(&f) = accept
        .critical_frames
        .iter()
        .find(|&&f| f >= accept.frames_per_window)
    {
        return Err(NetError::Protocol(format!(
            "accept: critical frame {f} outside the {}-frame window",
            accept.frames_per_window
        )));
    }
    Ok(())
}

/// Encodes and sends one control message; `false` when the socket
/// refused it (counted in `net.client.send_errors` — the server's retry
/// machinery sees the gap as loss either way).
fn send_on(
    socket: &UdpSocket,
    telem: &ClientTelem,
    conn_id: u32,
    msg: &Msg,
    buf: &mut Vec<u8>,
) -> bool {
    // An oversize message (e.g. a NACK list inflated by hostile labels)
    // is counted and dropped, never truncated and never a panic.
    if wire::try_encode_into(conn_id, msg, buf).is_err() {
        telem.on_encode_oversize();
        return false;
    }
    if socket.send(buf).is_err() {
        telem.on_send_error();
        return false;
    }
    telem.on_tx();
    true
}

/// Mutable receive-loop state.
struct StreamState {
    frames_per_window: usize,
    layer_sizes: Vec<u16>,
    critical_frames: Vec<u16>,
    windows_total: usize,
    current: Option<NetWindow>,
    /// window → its acked bursts, for re-acking retried `WindowEnd`s.
    acked: HashMap<u64, Vec<u16>>,
    /// `(window, rounds)`: critical-NACK rounds already spent on `window`.
    nacked: Option<(u64, u32)>,
    /// The previous window's tracker, retired for reuse — `open` resets
    /// it instead of allocating a fresh one, so the steady state recycles
    /// one tracker for the whole stream.
    spare: Option<NetWindow>,
    /// Pooled buffers for datagram decode (see [`wire::DecodeScratch`]).
    decode_scratch: wire::DecodeScratch,
    /// Staging buffers for erasure recovery, shared across windows.
    recover_scratch: RecoverScratch,
    /// Reusable datagram encode buffer for every send on this stream.
    send_buf: Vec<u8>,
    /// Reusable body buffer for `CriticalNack` construction.
    nack_buf: Vec<u16>,
    ack_seq: u64,
    acks_sent: u64,
    nacks_sent: u64,
    datagrams_rx: u64,
    data_rx: u64,
    parity_rx: u64,
    bytes_rx: u64,
    fec_recovered: u64,
    fec_unrecoverable: u64,
    send_errors: u64,
    series: WindowSeries,
    patterns: Vec<LossPattern>,
    completed_at: Option<Instant>,
    saw_bye: bool,
    done: bool,
}

impl StreamState {
    fn new(accept: &Accept, _config: &NetClientConfig) -> Self {
        StreamState {
            frames_per_window: usize::from(accept.frames_per_window),
            layer_sizes: accept.layer_sizes.clone(),
            critical_frames: accept.critical_frames.clone(),
            windows_total: accept.windows_total as usize,
            current: None,
            acked: HashMap::new(),
            nacked: None,
            spare: None,
            decode_scratch: wire::DecodeScratch::default(),
            recover_scratch: RecoverScratch::default(),
            send_buf: Vec::new(),
            nack_buf: Vec::new(),
            ack_seq: 0,
            acks_sent: 0,
            nacks_sent: 0,
            datagrams_rx: 0,
            data_rx: 0,
            parity_rx: 0,
            bytes_rx: 0,
            fec_recovered: 0,
            fec_unrecoverable: 0,
            send_errors: 0,
            series: WindowSeries::new(),
            patterns: Vec::new(),
            completed_at: None,
            saw_bye: false,
            done: false,
        }
    }

    fn open(&mut self, window: u64) {
        let win = match self.spare.take() {
            Some(mut w) => {
                w.reset(
                    window,
                    self.frames_per_window,
                    &self.layer_sizes,
                    &self.critical_frames,
                );
                w
            }
            None => NetWindow::new(
                window,
                self.frames_per_window,
                &self.layer_sizes,
                &self.critical_frames,
            ),
        };
        self.current = Some(win);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = NetClientConfig::default();
        assert_eq!(c.ordering, Ordering::spread());
        assert!(!c.recovery);
        assert!(c.retry.validate().is_ok());
        assert!(c.deadline > Duration::ZERO);
    }

    #[test]
    fn connect_times_out_against_a_silent_peer() {
        // A bound socket nobody serves on: the handshake must give up.
        let silent = UdpSocket::bind("127.0.0.1:0").unwrap();
        let config = NetClientConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                base: Duration::from_millis(5),
                max: Duration::from_millis(10),
            },
            ..NetClientConfig::default()
        };
        let err = NetClient::connect(silent.local_addr().unwrap(), config).unwrap_err();
        assert!(matches!(err, NetError::HandshakeTimeout), "{err}");
    }

    #[test]
    fn busy_server_yields_typed_error_and_fresh_nonce_per_retry() {
        // A fake server that answers every Hello with Busy.
        let server = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            server
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut buf = [0u8; 2048];
            let mut nonces = Vec::new();
            while let Ok((len, from)) = server.recv_from(&mut buf) {
                if let Ok((_, Msg::Hello(h))) = wire::decode(&buf[..len]) {
                    nonces.push(h.nonce);
                    let reply = wire::encode(CONN_NONE, &Msg::Busy { retry_after_ms: 5 });
                    server.send_to(&reply, from).unwrap();
                }
            }
            nonces
        });
        let config = NetClientConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base: Duration::from_millis(20),
                max: Duration::from_millis(40),
            },
            ..NetClientConfig::default()
        };
        let err = NetClient::connect(addr, config).unwrap_err();
        assert!(
            matches!(err, NetError::ServerBusy { retry_after_ms: 5 }),
            "{err}"
        );
        let nonces = handle.join().unwrap();
        assert!(nonces.len() >= 2, "the client retried after Busy");
        let distinct: std::collections::HashSet<u64> = nonces.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            nonces.len(),
            "every retry after Busy used a fresh nonce"
        );
    }

    #[test]
    fn busy_jitter_stays_inside_a_quarter_of_the_retry_after() {
        for nonce in [0u64, 1, 42, u64::MAX] {
            for retry_after in [0u32, 1, 5, 250, 10_000] {
                let j = busy_jitter_ms(nonce, retry_after);
                assert!(j <= u64::from(retry_after) / 4, "{nonce} {retry_after} {j}");
            }
        }
    }

    #[test]
    fn zero_deadline_rejected() {
        let config = NetClientConfig {
            deadline: Duration::ZERO,
            ..NetClientConfig::default()
        };
        let err = NetClient::connect("127.0.0.1:1".parse().unwrap(), config).unwrap_err();
        assert!(matches!(err, NetError::Config(_)));
    }
}
