//! A worker event loop over one shard of the connection table.
//!
//! The demux thread owns the socket's receive side and routes each
//! decoded datagram to the shard that owns its connection
//! (`conn_id % workers`). A shard owns its sessions outright — a
//! [`HashMap<u32, SessionCore>`], one [`TimerWheel`] for their retry
//! deadlines, and one scratch encode buffer — so no lock is ever taken
//! on the datagram path; sends go straight out the shared socket
//! (`UdpSocket::send_to` takes `&self`).
//!
//! Each loop iteration: fire due timers, pump paced transmissions, reap
//! finished sessions (reporting their conn-ids back to the demux so the
//! ids can be reused), then sleep on the event channel until the next
//! deadline. A shard never blocks longer than the earliest timer or
//! pacing deadline, and never spins when idle.

use std::collections::HashMap;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::session::{Ctx, SessionCore, Status};
use crate::telem::ServerTelem;
use crate::wheel::TimerWheel;
use crate::wire::Msg;

/// Longest a shard sleeps with nothing scheduled before re-checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(5);

/// Timer wheel granularity; retry backoffs are tens of milliseconds, so
/// a millisecond tick keeps firing error well under one backoff step.
const WHEEL_TICK: Duration = Duration::from_millis(1);

/// Wheel size: one lap of 512 ms covers the LAN retry schedule's longest
/// backoff without lap wraps (longer deadlines still fire correctly —
/// entries carry their absolute tick).
const WHEEL_SLOTS: usize = 512;

/// Work routed to a shard by the demux thread.
pub(crate) enum ShardEvent {
    /// A freshly accepted session to adopt into the table.
    Open(Box<SessionCore>),
    /// A decoded control datagram for a session this shard owns.
    Msg {
        /// Connection id (already `% workers`-routed to this shard).
        conn: u32,
        /// The decoded message.
        msg: Msg,
        /// Arrival timestamp (RTT samples use it).
        at: Instant,
    },
}

/// One worker event loop; `run` consumes it on the shard thread.
pub(crate) struct Shard {
    pub(crate) rx: Receiver<ShardEvent>,
    pub(crate) socket: Arc<UdpSocket>,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Reports reaped conn-ids back to the demux for id reuse.
    pub(crate) reaped: Sender<u32>,
    /// Live-session gauge shared with the server handle (incremented by
    /// the demux on accept, decremented here on reap).
    pub(crate) live_gauge: Arc<AtomicUsize>,
    pub(crate) telem: ServerTelem,
}

impl Shard {
    pub(crate) fn run(self) {
        let origin = Instant::now();
        let mut wheel = TimerWheel::new(origin, WHEEL_TICK, WHEEL_SLOTS);
        let mut sessions: HashMap<u32, SessionCore> = HashMap::new();
        let mut scratch: Vec<u8> = Vec::with_capacity(4096);
        let mut finished: Vec<u32> = Vec::new();
        let mut due: Vec<u32> = Vec::new();
        while !self.shutdown.load(AtomicOrdering::SeqCst) {
            let now = Instant::now();

            // 1. Fire due retry deadlines. The wheel reports stale
            // (cancelled) generations too; the session filters them.
            for fired in wheel.advance(now) {
                if let Some(core) = sessions.get_mut(&fired.conn) {
                    let mut ctx = Ctx {
                        now,
                        wheel: &mut wheel,
                        socket: &self.socket,
                        scratch: &mut scratch,
                    };
                    if core.on_timer(fired.gen, &mut ctx) == Status::Finished {
                        finished.push(fired.conn);
                    }
                }
            }

            // 2. Pump paced transmissions for every session mid-window.
            due.clear();
            due.extend(
                sessions
                    .iter()
                    .filter(|(_, c)| c.pending_send_at().is_some_and(|t| t <= now))
                    .map(|(&conn, _)| conn),
            );
            for &conn in &due {
                if let Some(core) = sessions.get_mut(&conn) {
                    let mut ctx = Ctx {
                        now,
                        wheel: &mut wheel,
                        socket: &self.socket,
                        scratch: &mut scratch,
                    };
                    if core.on_tick(&mut ctx) == Status::Finished {
                        finished.push(conn);
                    }
                }
            }

            // 3. Reap finished sessions immediately — the table must not
            // grow with completed sessions (the leak this core retires).
            for conn in finished.drain(..) {
                if sessions.remove(&conn).is_some() {
                    self.live_gauge.fetch_sub(1, AtomicOrdering::SeqCst);
                    self.telem.on_session_reaped();
                    let _ = self.reaped.send(conn);
                }
            }

            // 4. Sleep until the next deadline (timer, paced send, or
            // poll tick), waking early for routed datagrams.
            let mut wake = now + POLL;
            if let Some(t) = wheel.next_deadline() {
                wake = wake.min(t);
            }
            for core in sessions.values() {
                if let Some(t) = core.pending_send_at() {
                    wake = wake.min(t);
                }
            }
            let timeout = wake.saturating_duration_since(now);
            let first = if timeout.is_zero() {
                // Work is already due; just drain whatever queued.
                self.rx.try_recv().ok()
            } else {
                match self.rx.recv_timeout(timeout) {
                    Ok(ev) => Some(ev),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            };
            let mut next = first;
            while let Some(ev) = next {
                let now = Instant::now();
                let mut ctx = Ctx {
                    now,
                    wheel: &mut wheel,
                    socket: &self.socket,
                    scratch: &mut scratch,
                };
                match ev {
                    ShardEvent::Open(core) => {
                        let conn = core.conn_id();
                        let core = sessions.entry(conn).or_insert(*core);
                        core.start(&mut ctx);
                    }
                    ShardEvent::Msg { conn, msg, at } => {
                        if let Some(core) = sessions.get_mut(&conn) {
                            if core.on_msg(&msg, at, &mut ctx) == Status::Finished {
                                finished.push(conn);
                            }
                        }
                        // Unknown conn: already reaped — stale datagram.
                    }
                }
                next = self.rx.try_recv().ok();
            }
            for conn in finished.drain(..) {
                if sessions.remove(&conn).is_some() {
                    self.live_gauge.fetch_sub(1, AtomicOrdering::SeqCst);
                    self.telem.on_session_reaped();
                    let _ = self.reaped.send(conn);
                }
            }
        }
        // Shutdown: sessions die with the table; the gauge reflects it.
        self.live_gauge
            .fetch_sub(sessions.len(), AtomicOrdering::SeqCst);
    }
}
