#!/usr/bin/env bash
# Regenerates every table/figure/ablation and stores the outputs in results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
bins=(
  fig1_metrics table1_example theorem1_validation fig3_layered_order
  table2_ibo_vs_cpo fig11_bandwidth_sweep fig12_buffer_sweep
  orthogonality_blocks ablation_adaptation ablation_timing
  ablation_loss_models extension_multi_burst extension_concealment
  extension_stochastic_orders movie_sweep
)
for bin in "${bins[@]}"; do
  echo "=== $bin ==="
  cargo run --quiet --release -p espread-bench --bin "$bin" | tee "results/$bin.txt"
done
for pbad in 0.6 0.7; do
  echo "=== fig8_network_loss pbad=$pbad ==="
  cargo run --quiet --release -p espread-bench --bin fig8_network_loss -- --pbad "$pbad" \
    | tee "results/fig8_pbad_$pbad.txt"
done
echo "=== generate_report ==="
cargo run --quiet --release -p espread-bench --bin generate_report > /dev/null
echo "All experiment outputs written to results/."
