//! Ablation — does the adaptation (eq. 1) earn its keep?
//!
//! Compares three spreading variants on matched channels: adaptive
//! estimation with the paper's α = ½, a sweep of other α values, and the
//! non-adaptive fixed permutation. Also ablates the CMT-style baseline
//! (IBO) as a reference interleaver.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin ablation_adaptation
//! ```

use espread_bench::{mean, paper_source};
use espread_protocol::{Ordering, ProtocolConfig, Session};

fn run_mean(mut cfg: ProtocolConfig, ordering: Ordering, seeds: &[u64]) -> f64 {
    let mut clfs = Vec::new();
    cfg = cfg.with_ordering(ordering);
    for &seed in seeds {
        let mut c = cfg.clone();
        c.seed = seed;
        clfs.push(
            Session::new(c, paper_source(2, 80, 1))
                .run()
                .summary()
                .mean_clf,
        );
    }
    mean(&clfs)
}

fn main() {
    let seeds: Vec<u64> = (100..110).collect();
    println!(
        "Adaptation ablation (Pbad=0.7, 80 windows, {} seeds)\n",
        seeds.len()
    );

    println!("α sweep (adaptive spread):");
    println!("{:>6} {:>10}", "α", "mean CLF");
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut cfg = ProtocolConfig::paper(0.7, 0);
        cfg.alpha = alpha;
        let m = run_mean(cfg, Ordering::spread(), &seeds);
        let marker = if alpha == 0.5 {
            "  ← paper's choice"
        } else {
            ""
        };
        println!("{alpha:>6.2} {m:>10.3}{marker}");
    }

    println!("\nscheme comparison:");
    println!("{:>22} {:>10}", "scheme", "mean CLF");
    for (name, ordering) in [
        ("spread (adaptive)", Ordering::spread()),
        ("spread (fixed b=n/2)", Ordering::Spread { adaptive: false }),
        ("IBO layers", Ordering::Ibo),
        ("in-order", Ordering::InOrder),
    ] {
        let m = run_mean(ProtocolConfig::paper(0.7, 0), ordering, &seeds);
        println!("{name:>22} {m:>10.3}");
    }

    println!("\nreading: the dominant effect is spreading itself (≈ 2× over in-order);");
    println!("because calculatePermutation's multi-scale tie-breaking returns orders that");
    println!("are robust across burst sizes, performance is nearly insensitive to α — the");
    println!("estimator's job (per the paper) is to stay calibrated with *minimal feedback*,");
    println!("one ACK per buffer window, not to eke out extra CLF. The estimate itself does");
    println!("track the channel (see the adaptation integration tests).");

    espread_bench::write_telemetry_snapshot("ablation_adaptation");
}
