//! Microbenchmark of the steady-state hot path, with a committed
//! baseline.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin bench_hotpath
//! cargo run --release -p espread-bench --bin bench_hotpath -- --write-baseline
//! ```
//!
//! Measures the four families this repo's zero-alloc work keeps fast —
//! k-CPO apply/invert through the order cache, layered order
//! construction, wire encode/decode through the pooled scratch, and a
//! complete steady-state `NetWindow` reassembly lap — against a floor
//! operation: one 1200-byte `memcpy`, i.e. pure memory traffic with no
//! bookkeeping at all. The committed artifact `BENCH_hotpath.json` at
//! the repo root stores each family's **ratio** to that floor, which is
//! what CI gates on (`scripts/check_bench_hotpath.sh`, >20% regression
//! on any family fails): absolute nanoseconds vary with the host, the
//! ratios track only how much work each path layers on top of moving
//! its bytes.
//!
//! `--write-baseline` rewrites `BENCH_hotpath.json`; the default mode
//! writes the fresh measurement to `results/bench_hotpath.json`. Both
//! files carry timings and sit outside the byte-identical results
//! contract. The interactive criterion view of the same families is
//! `cargo bench -p espread-bench --bench hotpath`.

use std::process::ExitCode;
use std::time::Instant;

use espread_core::{calculate_permutation_cached, LayeredOrder};
use espread_exec::Json;
use espread_net::clientwin::{NetWindow, NetWindowOutcome, RecoverScratch};
use espread_net::wire::{self, DataMsg, DecodeScratch, Msg, ParityMember, ParityMsg};
use espread_protocol::{Fragment, Ldu};
use espread_trace::GopPattern;

const ITERS: u32 = 100_000;
const TRIALS: usize = 7;

/// Best-of-`TRIALS` nanoseconds per call of `op` over `ITERS` calls.
fn measure(mut op: impl FnMut(u32)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let started = Instant::now();
        for i in 0..ITERS {
            op(i);
        }
        let ns = started.elapsed().as_nanos() as f64 / f64::from(ITERS);
        best = best.min(ns);
    }
    best
}

fn data_fragment(window: u64, frame: usize, frag: u16) -> DataMsg {
    DataMsg {
        fragment: Fragment {
            window,
            frame,
            frag,
            frags_total: 2,
            layer: if frame < 2 { 0 } else { 1 },
            layer_slot: (frame % 2) as u16,
            retransmit: false,
        },
        ldu: Ldu::new(200),
        payload_len: 100,
    }
}

fn main() -> ExitCode {
    println!("bench_hotpath: steady-state families vs a 1200-byte memcpy floor\n");

    // Floor: pure memory traffic, the work no hot-path op can avoid.
    let src = vec![0xA5u8; 1200];
    let mut dst = vec![0u8; 1200];
    let floor_ns = measure(|i| {
        dst.copy_from_slice(std::hint::black_box(&src));
        dst[0] = i as u8;
    });
    std::hint::black_box(&dst);

    // Family 1: cached k-CPO lookup + table-driven scramble/descramble.
    let (n, b) = (17usize, 5usize);
    let items: Vec<u32> = (0..n as u32).collect();
    let mut sent: Vec<u32> = Vec::with_capacity(n);
    let mut playout: Vec<Option<u32>> = Vec::with_capacity(n);
    let mut received: Vec<Option<u32>> = Vec::with_capacity(n);
    let kcpo_ns = measure(|_| {
        let choice = calculate_permutation_cached(n, b);
        choice.permutation.apply_into(&items, &mut sent);
        received.clear();
        received.extend(sent.iter().map(|&x| Some(x)));
        choice.permutation.unapply_into(&received, &mut playout);
    });

    // Family 2: layered order construction (the cache-miss cost).
    let poset = GopPattern::gop12().dependency_poset(2, true);
    let layered_ns = measure(|_| {
        std::hint::black_box(LayeredOrder::with_uniform_bound(&poset, 4));
    });

    // Family 3: wire encode + decode of a Data datagram through the
    // pooled scratch.
    let msg = Msg::Data(data_fragment(3, 1, 0));
    let mut buf: Vec<u8> = Vec::with_capacity(2048);
    let mut scratch = DecodeScratch::default();
    let wire_ns = measure(|_| {
        wire::try_encode_into(42, &msg, &mut buf).expect("fits");
        let (_, decoded) = wire::decode_with(&buf, &mut scratch).expect("roundtrip");
        scratch.recycle(decoded);
    });

    // Family 4: one complete steady-state reassembly window.
    let mut parity = ParityMsg {
        window: 0,
        group: 0,
        m: 1,
        parity_index: 0,
        shard_bytes: 100,
        members: vec![
            ParityMember {
                frame: 2,
                frag: 0,
                frags_total: 2,
            },
            ParityMember {
                frame: 2,
                frag: 1,
                frags_total: 2,
            },
        ],
    };
    let mut win = NetWindow::new(0, 4, &[2, 2], &[0, 1]);
    let mut rs = RecoverScratch::default();
    let mut nack: Vec<u16> = Vec::with_capacity(4);
    let mut outcome = NetWindowOutcome::default();
    let mut window = 0u64;
    let netwin_ns = measure(|_| {
        for frame in 0..4 {
            for f in 0..2 {
                win.accept(&data_fragment(window, frame, f));
            }
        }
        parity.window = window;
        win.accept_parity(&parity);
        win.recover_with(&mut rs);
        win.missing_critical_into(&mut nack);
        win.close_into(&mut outcome);
        window += 1;
        win.reset(window, 4, &[2, 2], &[0, 1]);
    });

    let families = [
        ("kcpo_apply", kcpo_ns),
        ("layered_build", layered_ns),
        ("wire_codec", wire_ns),
        ("reassembly", netwin_ns),
    ];
    println!("  floor:          {floor_ns:.1} ns/op (1200-byte memcpy)");
    for (name, ns) in families {
        println!("  {name:<14} {ns:.1} ns/op  ratio {:.3}", ns / floor_ns);
    }

    let mut doc = Json::object();
    doc.push("experiment", "bench_hotpath")
        .push("iters", u64::from(ITERS))
        .push("trials", TRIALS)
        .push("floor_ns", floor_ns);
    let mut fam = Json::object();
    for (name, ns) in families {
        let mut entry = Json::object();
        entry.push("ns", ns).push("ratio", ns / floor_ns);
        fam.push(name, entry);
    }
    doc.push("families", fam);

    if std::env::args().any(|a| a == "--write-baseline") {
        match std::fs::write("BENCH_hotpath.json", doc.render_pretty()) {
            Ok(()) => println!("baseline written to BENCH_hotpath.json"),
            Err(e) => {
                eprintln!("could not write BENCH_hotpath.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let result = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write("results/bench_hotpath.json", doc.render_pretty()));
        match result {
            Ok(()) => println!("measurement written to results/bench_hotpath.json"),
            Err(e) => {
                eprintln!("could not write results/bench_hotpath.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
