//! End-to-end integration tests: trace → protocol → netsim → qos.

use error_spreading::prelude::*;

fn mpeg_source(seed: u64, w: usize, windows: usize) -> StreamSource {
    let trace = MpegTrace::new(Movie::JurassicPark, seed);
    StreamSource::mpeg(&trace, w, windows, false)
}

#[test]
fn deterministic_across_runs() {
    let report = |seed| {
        Session::new(ProtocolConfig::paper(0.6, seed), mpeg_source(1, 2, 30))
            .run()
            .series
            .clf_values()
            .collect::<Vec<_>>()
    };
    assert_eq!(report(5), report(5));
    assert_ne!(report(5), report(6));
}

#[test]
fn spread_dominates_in_order_across_seeds_and_pbad() {
    // The Fig. 8 claim, aggregated: over many channel realisations the
    // scrambled scheme must win on mean CLF *and* deviation.
    for p_bad in [0.6, 0.7] {
        let mut spread_mean = 0.0;
        let mut plain_mean = 0.0;
        let mut spread_dev = 0.0;
        let mut plain_dev = 0.0;
        for seed in 0..8u64 {
            let src = mpeg_source(1, 2, 50);
            let spread =
                Session::new(ProtocolConfig::paper(p_bad, seed * 31 + 7), src.clone()).run();
            let plain = Session::new(
                ProtocolConfig::paper(p_bad, seed * 31 + 7).with_ordering(Ordering::InOrder),
                src,
            )
            .run();
            spread_mean += spread.summary().mean_clf;
            plain_mean += plain.summary().mean_clf;
            spread_dev += spread.summary().dev_clf;
            plain_dev += plain.summary().dev_clf;
        }
        assert!(
            spread_mean < plain_mean,
            "p_bad={p_bad}: mean {spread_mean} !< {plain_mean}"
        );
        assert!(
            spread_dev < plain_dev,
            "p_bad={p_bad}: dev {spread_dev} !< {plain_dev}"
        );
    }
}

#[test]
fn alf_is_invariant_under_spreading() {
    // Error spreading trades CLF for nothing: aggregate loss is identical
    // on the same channel realisation (same packets, same slots).
    let src = mpeg_source(2, 2, 40);
    let spread = Session::new(ProtocolConfig::paper(0.6, 77), src.clone()).run();
    let plain = Session::new(
        ProtocolConfig::paper(0.6, 77).with_ordering(Ordering::InOrder),
        src,
    )
    .run();
    assert_eq!(spread.packets_offered, plain.packets_offered);
    assert_eq!(spread.packets_lost, plain.packets_lost);
    assert_eq!(spread.summary().total_lost, plain.summary().total_lost);
    assert!(spread.summary().mean_clf <= plain.summary().mean_clf);
}

#[test]
fn spreading_wins_at_every_buffer_size() {
    // Fig. 12's claim: for each buffer size W the scrambled scheme beats
    // the unscrambled one on mean CLF — "error spreading scales well in
    // various scenarios". (Longer windows naturally see more bursts, so
    // the absolute per-window CLF grows with W for both schemes.)
    for w in [1usize, 2, 4] {
        let mut spread_total = 0.0;
        let mut plain_total = 0.0;
        for seed in 0..6u64 {
            let src = mpeg_source(1, w, 40);
            spread_total += Session::new(ProtocolConfig::paper(0.6, 1000 + seed), src.clone())
                .run()
                .summary()
                .mean_clf;
            plain_total += Session::new(
                ProtocolConfig::paper(0.6, 1000 + seed).with_ordering(Ordering::InOrder),
                src,
            )
            .run()
            .summary()
            .mean_clf;
        }
        assert!(
            spread_total < plain_total,
            "W={w}: spread {spread_total} !< plain {plain_total}"
        );
    }
}

#[test]
fn adaptation_tracks_channel_quality() {
    // A quieter channel must drive the B-layer estimate down towards the
    // small bursts actually observed.
    let src = mpeg_source(1, 2, 60);
    let quiet = Session::new(ProtocolConfig::paper(0.3, 5), src.clone()).run();
    let noisy = Session::new(ProtocolConfig::paper(0.85, 5), src).run();
    let final_quiet = *quiet.estimate_history.last().unwrap().last().unwrap();
    let final_noisy = *noisy.estimate_history.last().unwrap().last().unwrap();
    assert!(
        final_quiet < final_noisy,
        "quiet estimate {final_quiet} !< noisy estimate {final_noisy}"
    );
}

#[test]
fn open_gop_sessions_work() {
    let trace = MpegTrace::new(Movie::JurassicPark, 4);
    let src = StreamSource::mpeg(&trace, 2, 20, true);
    let report = Session::new(ProtocolConfig::paper(0.6, 9), src).run();
    assert_eq!(report.series.len(), 20);
}

#[test]
fn every_movie_profile_streams() {
    for movie in Movie::ALL {
        let trace = MpegTrace::new(movie, 11);
        let src = StreamSource::mpeg(&trace, 1, 8, false);
        // Star Wars needs real bandwidth; give every movie plenty.
        let cfg = ProtocolConfig::paper(0.5, 3).with_bandwidth(8_000_000);
        let report = Session::new(cfg, src).run();
        assert_eq!(report.series.len(), 8, "{movie:?}");
        assert_eq!(report.dropped_frames, 0, "{movie:?} should fit 8 Mbps");
    }
}

#[test]
fn audio_spread_beats_in_order() {
    let src = StreamSource::audio(AudioStream::sun_audio(), 30, 60);
    let mut spread_total = 0.0;
    let mut plain_total = 0.0;
    for seed in 0..6u64 {
        let mut cfg = ProtocolConfig::paper(0.7, 500 + seed);
        cfg.bandwidth_bps = 128_000;
        cfg.fps = 30;
        spread_total += Session::new(cfg.clone(), src.clone())
            .run()
            .summary()
            .mean_clf;
        plain_total += Session::new(cfg.with_ordering(Ordering::InOrder), src.clone())
            .run()
            .summary()
            .mean_clf;
    }
    assert!(
        spread_total < plain_total,
        "audio spread {spread_total} !< in-order {plain_total}"
    );
}

#[test]
fn perception_verdicts_improve_under_spreading() {
    let src = mpeg_source(3, 2, 60);
    let spread = Session::new(ProtocolConfig::paper(0.6, 21), src.clone()).run();
    let plain = Session::new(
        ProtocolConfig::paper(0.6, 21).with_ordering(Ordering::InOrder),
        src,
    )
    .run();
    let threshold = PerceptionProfile::for_media(MediaKind::Video).max_clf();
    assert!(
        spread.series.fraction_within_clf(threshold) >= plain.series.fraction_within_clf(threshold)
    );
}

#[test]
fn recovery_composes_with_spreading() {
    // Blocks D, E, F of Fig. 4: adding recovery to spreading must not
    // hurt aggregate loss, and FEC must cost bandwidth.
    let src = mpeg_source(5, 2, 40);
    let d = Session::new(ProtocolConfig::paper(0.7, 13), src.clone()).run();
    let e = Session::new(
        ProtocolConfig::paper(0.7, 13).with_recovery(Recovery::Retransmit),
        src.clone(),
    )
    .run();
    let f = Session::new(
        ProtocolConfig::paper(0.7, 13).with_recovery(Recovery::Fec { group: 4 }),
        src,
    )
    .run();
    assert!(e.summary().mean_alf <= d.summary().mean_alf);
    assert!(f.summary().mean_alf <= d.summary().mean_alf);
    assert!(f.bytes_offered > d.bytes_offered);
    assert!(e.retransmissions > 0);
    assert!(f.fec_recovered > 0);
}
