//! Table 1 — how the order of frames sent affects the CLF.
//!
//! A window of 17 frames, a network burst of 5 packets. The paper's rows:
//! in-order transmission (CLF 5/17), the permuted order (the frames lost
//! are consecutive only in the permuted domain), and the un-permuted view.
//!
//! ```sh
//! cargo run -p espread-bench --bin table1_example
//! ```

use espread_core::{
    burst_loss_pattern, calculate_permutation, cpo::stride_permutation, worst_case_clf, Permutation,
};

fn one_indexed(perm: &Permutation) -> String {
    perm.as_slice()
        .iter()
        .map(|i| format!("{:02}", i + 1))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let n = 17;
    let b = 5;
    let burst_start = 6; // the illustration's mid-window burst

    println!("Table 1: an example of how the order of frames sent affects CLF");
    println!(
        "(window n = {n}, bursty loss b = {b}, burst at slots {burst_start}..{})\n",
        burst_start + b
    );

    let in_order = Permutation::identity(n);
    let permuted = stride_permutation(n, 5); // the paper's published order

    let naive_loss = burst_loss_pattern(&in_order, burst_start, b);
    let spread_loss = burst_loss_pattern(&permuted, burst_start, b);

    println!("{:<12} {}", "in order", one_indexed(&in_order));
    println!("{:<12} {}", "permuted", one_indexed(&permuted));
    println!();
    println!(
        "{:<12} {}   CLF {}/{n}",
        "in order",
        naive_loss,
        naive_loss.longest_run()
    );
    println!(
        "{:<12} {}   CLF {}/{n}",
        "un-permuted",
        spread_loss,
        spread_loss.longest_run()
    );
    println!();
    println!(
        "worst case over all burst positions: in-order {}, permuted {}",
        worst_case_clf(&in_order, b),
        worst_case_clf(&permuted, b)
    );

    let choice = calculate_permutation(n, b);
    println!(
        "calculatePermutation({n}, {b}) chooses {} with worst-case CLF {}",
        choice.family, choice.worst_clf
    );
    println!("\npaper row values: CLF 5/17 in order, 1/17 permuted.");

    espread_bench::write_telemetry_snapshot("table1_example");
}
