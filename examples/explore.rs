//! Explore: an interactive-ish CLI around `calculatePermutation`.
//!
//! ```sh
//! cargo run --example explore -- 17 5            # window 17, burst 5
//! cargo run --example explore -- 24 4 IBBPBB     # layered view of a GOP
//! ```

use error_spreading::core::{burst::clf_profile, ibo::inverse_binary_order};
use error_spreading::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args
        .first()
        .map(|a| a.parse().expect("window size must be an integer"))
        .unwrap_or(17);
    let b: usize = args
        .get(1)
        .map(|a| a.parse().expect("burst bound must be an integer"))
        .unwrap_or(5);

    println!("window n = {n}, burst bound b = {b}\n");

    let choice = calculate_permutation(n, b);
    let bound = theorem_one(n, b);
    println!("calculatePermutation → {} ", choice.permutation);
    println!("family: {}", choice.family);
    println!(
        "worst-case CLF {} (Theorem 1 bracket [{}, {}]), identity would give {}",
        choice.worst_clf,
        bound.lower,
        bound.upper,
        worst_case_clf(&Permutation::identity(n), b)
    );
    println!(
        "IBO on the same window: worst-case CLF {}",
        worst_case_clf(&inverse_binary_order(n), b)
    );
    println!(
        "largest burst tolerable at the video threshold (CLF ≤ 2): {}",
        max_tolerable_burst(n, 2)
    );

    let profile = clf_profile(&choice.permutation, b);
    println!("\nper-burst-position CLF profile: {profile:?}");

    if let Some(pattern_text) = args.get(2) {
        let pattern: GopPattern = pattern_text
            .parse()
            .expect("third argument must be a GOP pattern like IBBPBB");
        let gops = n / pattern.len().max(1);
        if gops == 0 {
            println!(
                "\n(n = {n} is smaller than one GOP of {}; skipping layered view)",
                pattern.len()
            );
            return;
        }
        let poset = pattern.dependency_poset(gops, false);
        let order = LayeredOrder::with_uniform_bound(&poset, b);
        println!(
            "\nlayered view of {gops} × {pattern} ({} frames, {} layers):",
            poset.len(),
            order.layer_count()
        );
        for (i, layer) in order.layers().iter().enumerate() {
            println!(
                "  layer {i}: {:?} ({}, worst CLF {})",
                layer.frames(),
                if layer.is_critical() {
                    "critical"
                } else {
                    "permutable"
                },
                layer.worst_clf()
            );
        }
        println!("  sequence: {:?}", order.transmission_sequence());
    }
}
