//! Property-based tests for the simulator's physical invariants.

use espread_netsim::{DuplexChannel, EventQueue, GilbertModel, Link, Packet, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Deliveries never precede their send time by less than the physical
    /// minimum (serialisation + propagation), and the link stays FIFO.
    #[test]
    fn link_is_causal_and_fifo(
        bandwidth in 1_000u64..10_000_000,
        prop_ms in 0u64..200,
        sizes in prop::collection::vec(1u32..10_000, 1..40),
        seed in any::<u64>(),
        p_bad in 0.0f64..1.0,
    ) {
        let mut link = Link::new(
            bandwidth,
            SimDuration::from_millis(prop_ms),
            GilbertModel::new(0.9, p_bad, seed),
        );
        let mut last_arrival = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let sent = now;
            let outcome = link.transmit(now, Packet::new(i as u64, size, sent, i));
            if let Some(d) = outcome.delivered() {
                let min_latency = SimDuration::serialization(size, bandwidth)
                    + SimDuration::from_millis(prop_ms);
                prop_assert!(d.arrived_at.as_micros() >= sent.as_micros() + min_latency.as_micros() - 1);
                // FIFO: arrivals are monotone.
                prop_assert!(d.arrived_at >= last_arrival);
                last_arrival = d.arrived_at;
            }
            now += SimDuration::from_micros(u64::from(size) % 777);
        }
        let s = link.stats();
        prop_assert_eq!(s.offered, sizes.len() as u64);
        prop_assert_eq!(s.offered, s.delivered + s.lost);
    }

    /// Same seed ⇒ identical loss pattern; the channel is reproducible.
    #[test]
    fn channel_deterministic(seed in any::<u64>(), count in 1usize..200) {
        let mk = || {
            let mut ch: DuplexChannel<usize, ()> = DuplexChannel::new(
                Link::new(1_200_000, SimDuration::from_millis(11), GilbertModel::paper(0.6, seed)),
                Link::new(64_000, SimDuration::from_millis(11), GilbertModel::paper(0.6, seed ^ 1)),
            );
            for i in 0..count {
                ch.send_data(SimTime::ZERO, 2048, i);
            }
            ch.poll_data(SimTime::from_micros(u64::MAX / 2))
                .into_iter()
                .map(|d| d.packet.payload)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(mk(), mk());
    }

    /// The event queue drains in nondecreasing time order regardless of
    /// insertion order.
    #[test]
    fn event_queue_sorted(times in prop::collection::vec(0u64..1_000, 0..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            seen += 1;
        }
        prop_assert_eq!(seen, times.len());
    }

    /// Gilbert chains hit their steady-state loss rate within tolerance for
    /// moderate parameters.
    #[test]
    fn gilbert_steady_state(p_good in 0.5f64..0.99, p_bad in 0.1f64..0.9, seed in any::<u64>()) {
        let mut m = GilbertModel::new(p_good, p_bad, seed);
        let expected = m.steady_state_loss();
        let n = 60_000;
        let lost = (0..n).filter(|_| !m.step_delivers()).count();
        let observed = lost as f64 / n as f64;
        // Loose tolerance: chains with long bursts mix slowly.
        prop_assert!((observed - expected).abs() < 0.05,
            "observed {observed} expected {expected} (pg={p_good} pb={p_bad})");
    }
}
