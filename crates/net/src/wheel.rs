//! A hashed timer wheel for per-shard retry deadlines.
//!
//! Each shard event loop owns one [`TimerWheel`] and arms at most one
//! *live* timer per session — the current `RetryPolicy` backoff deadline
//! (ACK wait, teardown wait, or the `Begin` handshake window).
//! Cancellation is by **generation**: a session bumps its generation
//! every time it re-arms or no longer needs the timer, and the driver
//! discards fired entries whose generation is stale. An acked window's
//! timer therefore *cannot* fire as a retry — the entry still sits in
//! the wheel until its deadline lap, but it comes back inert.
//!
//! The wheel hashes absolute deadlines into `slots` buckets of `tick`
//! width. Deadlines beyond one lap (`slots × tick`) are handled by
//! storing the absolute tick index with each entry: a sweep only fires
//! entries whose tick has actually been reached, so arbitrarily long
//! backoffs are safe with a small wheel. Within one [`TimerWheel::advance`]
//! call, entries fire in deadline order (ties broken by insertion
//! order), which keeps multi-session retry schedules fair.

use std::time::{Duration, Instant};

/// A timer that fired: which connection and which arm-generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fired {
    /// The connection the timer belongs to.
    pub conn: u32,
    /// The generation the timer was armed with; stale generations mean
    /// the timer was cancelled (re-armed or disarmed) before firing.
    pub gen: u64,
}

#[derive(Debug)]
struct Entry {
    conn: u32,
    gen: u64,
    deadline: Instant,
    tick: u64,
    seq: u64,
}

/// A fixed-size hashed timer wheel over [`Instant`] deadlines.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    origin: Instant,
    cursor: u64,
    len: usize,
    seq: u64,
}

impl TimerWheel {
    /// A wheel starting its clock at `origin`, with `slots` buckets of
    /// `tick` width each.
    ///
    /// # Panics
    ///
    /// Panics when `tick` is zero or `slots` is zero — a wheel that
    /// cannot make progress is a construction bug, not a runtime state.
    pub fn new(origin: Instant, tick: Duration, slots: usize) -> Self {
        assert!(!tick.is_zero(), "timer wheel tick must be positive");
        assert!(slots > 0, "timer wheel needs at least one slot");
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            origin,
            cursor: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Number of entries currently in the wheel (live and stale alike).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tick index whose sweep is guaranteed to see `deadline` as due:
    /// the first tick boundary at or after it (so a timer never waits an
    /// extra lap), clamped forward of the cursor (so a deadline already
    /// in the past fires on the very next sweep).
    fn tick_of(&self, deadline: Instant) -> u64 {
        let offset = deadline.saturating_duration_since(self.origin).as_nanos();
        let tick = self.tick.as_nanos();
        let ceil = offset.div_ceil(tick);
        u64::try_from(ceil).unwrap_or(u64::MAX).max(self.cursor + 1)
    }

    /// Arms a timer for `conn` with arm-generation `gen` at `deadline`.
    pub fn schedule(&mut self, conn: u32, gen: u64, deadline: Instant) {
        let tick = self.tick_of(deadline);
        let slot = (tick % self.slots.len() as u64) as usize;
        let seq = self.seq;
        self.seq += 1;
        self.slots[slot].push(Entry {
            conn,
            gen,
            deadline,
            tick,
            seq,
        });
        self.len += 1;
    }

    /// The earliest deadline still in the wheel, if any. Stale (cancelled
    /// by generation) entries count — the driver sleeps until then and
    /// discards them on fire, which only costs a spurious wake-up.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.slots.iter().flatten().map(|e| e.deadline).min()
    }

    /// Sweeps the wheel up to `now`, returning every due entry in
    /// `(deadline, insertion)` order. The caller filters stale
    /// generations.
    pub fn advance(&mut self, now: Instant) -> Vec<Fired> {
        let target = {
            let offset = now.saturating_duration_since(self.origin).as_nanos();
            u64::try_from(offset / self.tick.as_nanos()).unwrap_or(u64::MAX)
        };
        if target <= self.cursor && self.len == 0 {
            return Vec::new();
        }
        let slots = self.slots.len() as u64;
        let steps = (target.saturating_sub(self.cursor)).min(slots);
        let mut due: Vec<(Instant, u64, Fired)> = Vec::new();
        for i in 1..=steps {
            let slot = ((self.cursor + i) % slots) as usize;
            let bucket = &mut self.slots[slot];
            let mut kept = 0;
            for j in 0..bucket.len() {
                if bucket[j].tick <= target {
                    let e = &bucket[j];
                    due.push((
                        e.deadline,
                        e.seq,
                        Fired {
                            conn: e.conn,
                            gen: e.gen,
                        },
                    ));
                } else {
                    bucket.swap(kept, j);
                    kept += 1;
                }
            }
            self.len -= bucket.len() - kept;
            bucket.truncate(kept);
        }
        self.cursor = self.cursor.max(target);
        due.sort_by_key(|&(tick, seq, _)| (tick, seq));
        due.into_iter().map(|(_, _, f)| f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_in_deadline_order() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0, ms(1), 64);
        w.schedule(3, 1, t0 + ms(30));
        w.schedule(1, 1, t0 + ms(10));
        w.schedule(2, 1, t0 + ms(20));
        assert_eq!(w.len(), 3);
        let fired = w.advance(t0 + ms(40));
        assert_eq!(
            fired.iter().map(|f| f.conn).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn not_yet_due_entries_stay() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0, ms(1), 64);
        w.schedule(1, 1, t0 + ms(5));
        w.schedule(2, 1, t0 + ms(500));
        let fired = w.advance(t0 + ms(10));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].conn, 1);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline(), Some(t0 + ms(500)));
    }

    #[test]
    fn deadlines_beyond_one_lap_wait_their_lap() {
        let t0 = Instant::now();
        // 8 slots × 1 ms = 8 ms lap; a 20 ms deadline shares a slot with
        // early ticks but must not fire early.
        let mut w = TimerWheel::new(t0, ms(1), 8);
        w.schedule(7, 1, t0 + ms(20));
        assert!(w.advance(t0 + ms(8)).is_empty());
        assert!(w.advance(t0 + ms(16)).is_empty());
        let fired = w.advance(t0 + ms(24));
        assert_eq!(fired, vec![Fired { conn: 7, gen: 1 }]);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_sweep() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0, ms(1), 16);
        let _ = w.advance(t0 + ms(100));
        w.schedule(1, 4, t0 + ms(50)); // already in the past
        let fired = w.advance(t0 + ms(101));
        assert_eq!(fired, vec![Fired { conn: 1, gen: 4 }]);
    }

    #[test]
    fn generations_ride_through_unchanged() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0, ms(1), 16);
        w.schedule(9, 2, t0 + ms(3));
        w.schedule(9, 3, t0 + ms(4)); // re-arm: old entry goes stale
        let fired = w.advance(t0 + ms(10));
        assert_eq!(
            fired,
            vec![Fired { conn: 9, gen: 2 }, Fired { conn: 9, gen: 3 }]
        );
        // The driver's generation filter (see the shard loop) drops the
        // stale gen=2 entry; the wheel just reports both faithfully.
    }

    #[test]
    fn big_time_jumps_sweep_every_slot_once() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(t0, ms(1), 8);
        for c in 0..20u32 {
            w.schedule(c, 1, t0 + ms(u64::from(c) + 1));
        }
        // A jump far past every deadline (> many laps) must fire all.
        let fired = w.advance(t0 + ms(10_000));
        assert_eq!(fired.len(), 20);
        let conns: Vec<u32> = fired.iter().map(|f| f.conn).collect();
        assert_eq!(conns, (0..20).collect::<Vec<_>>());
        assert!(w.is_empty());
    }
}
