//! The continuity metrics: Aggregate Loss Factor and Consecutive Loss Factor.
//!
//! Both metrics are computed over a *window* of LDU slots in playout order
//! (paper §2.1, after \[21\]):
//!
//! * the **ALF** of a window is `lost / window_len` — the fraction of unit
//!   losses;
//! * the **CLF** of a window is the length of its longest run of
//!   consecutive unit losses.
//!
//! In the example streams of Fig. 1, both streams have ALF 2/4 over their
//! interior slots but CLFs of 2 and 1 respectively.

use std::fmt;

use crate::loss::LossPattern;

/// An aggregate loss factor: a ratio `lost / total` kept in exact integer
/// form.
///
/// Keeping the exact fraction (rather than an `f64`) lets callers compare
/// windows of different sizes without rounding surprises; [`Alf::as_f64`]
/// converts when a float is wanted.
///
/// # Example
///
/// ```
/// use espread_qos::Alf;
/// let alf = Alf::new(2, 4);
/// assert_eq!(alf.as_f64(), 0.5);
/// assert_eq!(alf.to_string(), "2/4");
/// assert!(Alf::new(1, 4) < Alf::new(2, 4));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Alf {
    lost: usize,
    total: usize,
}

impl Alf {
    /// Creates an ALF of `lost` unit losses over a window of `total` slots.
    ///
    /// # Panics
    ///
    /// Panics if `lost > total`.
    pub fn new(lost: usize, total: usize) -> Self {
        assert!(lost <= total, "cannot lose more slots than the window has");
        Alf { lost, total }
    }

    /// Number of unit losses.
    pub fn lost(self) -> usize {
        self.lost
    }

    /// Window length in slots.
    pub fn total(self) -> usize {
        self.total
    }

    /// The loss fraction as a float; `0.0` for an empty window.
    pub fn as_f64(self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.lost as f64 / self.total as f64
        }
    }

    /// The fraction in lowest terms; all zero-loss windows (including the
    /// empty one) canonicalise to `0/1` so that equality and hashing agree
    /// with [`Ord`], which compares fraction *values*.
    fn reduced(self) -> (usize, usize) {
        if self.lost == 0 {
            return (0, 1);
        }
        let mut a = self.lost;
        let mut b = self.total;
        while b != 0 {
            (a, b) = (b, a % b);
        }
        (self.lost / a, self.total / a)
    }
}

impl PartialEq for Alf {
    fn eq(&self, other: &Self) -> bool {
        self.reduced() == other.reduced()
    }
}

impl Eq for Alf {}

impl std::hash::Hash for Alf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.reduced().hash(state);
    }
}

impl PartialOrd for Alf {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Alf {
    /// Compares loss *fractions* via cross-multiplication (exact).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // lost_a/total_a ? lost_b/total_b  ⟺  lost_a·total_b ? lost_b·total_a
        // Empty windows compare as zero loss.
        let left = self.lost as u128 * other.total.max(1) as u128;
        let right = other.lost as u128 * self.total.max(1) as u128;
        left.cmp(&right)
    }
}

impl fmt::Display for Alf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.lost, self.total)
    }
}

/// Continuity metrics of one window: the ALF and CLF together.
///
/// # Example
///
/// ```
/// use espread_qos::{ContinuityMetrics, LossPattern};
///
/// let window = LossPattern::from_lost_indices(17, [4, 5, 6, 7, 8]);
/// let m = ContinuityMetrics::of(&window);
/// assert_eq!(m.clf(), 5);             // one burst of 5 → CLF 5
/// assert_eq!(m.alf().to_string(), "5/17");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ContinuityMetrics {
    alf: Alf,
    clf: usize,
}

impl ContinuityMetrics {
    /// Computes both metrics for a playout-order loss pattern.
    pub fn of(pattern: &LossPattern) -> Self {
        ContinuityMetrics {
            alf: Alf::new(pattern.lost(), pattern.len()),
            clf: pattern.longest_run(),
        }
    }

    /// Assembles metrics from already-known components.
    ///
    /// # Panics
    ///
    /// Panics if `clf > alf.lost()` (a run cannot exceed the loss count) or
    /// if `alf.lost() > 0` but `clf == 0`.
    pub fn from_parts(alf: Alf, clf: usize) -> Self {
        assert!(clf <= alf.lost(), "CLF cannot exceed the unit-loss count");
        assert!(
            alf.lost() == 0 || clf >= 1,
            "non-zero loss implies at least a 1-run"
        );
        ContinuityMetrics { alf, clf }
    }

    /// The aggregate loss factor.
    pub fn alf(self) -> Alf {
        self.alf
    }

    /// The consecutive loss factor: the longest run of unit losses.
    pub fn clf(self) -> usize {
        self.clf
    }

    /// Number of unit losses in the window.
    pub fn lost(self) -> usize {
        self.alf.lost()
    }

    /// Window length in slots.
    pub fn window_len(self) -> usize {
        self.alf.total()
    }
}

impl fmt::Display for ContinuityMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ALF {} CLF {}", self.alf, self.clf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_example_streams() {
        // Fig. 1: both streams lose 2 of 4 interior LDUs; stream 1
        // consecutively (CLF 2), stream 2 spread out (CLF 1).
        let stream1 = LossPattern::from_received([false, false, true, true]);
        let stream2 = LossPattern::from_received([false, true, true, false]);
        let m1 = ContinuityMetrics::of(&stream1);
        let m2 = ContinuityMetrics::of(&stream2);
        assert_eq!(m1.alf(), Alf::new(2, 4));
        assert_eq!(m2.alf(), Alf::new(2, 4));
        assert_eq!(m1.clf(), 2);
        assert_eq!(m2.clf(), 1);
    }

    #[test]
    fn clean_window() {
        let m = ContinuityMetrics::of(&LossPattern::all_received(10));
        assert_eq!(m.clf(), 0);
        assert_eq!(m.alf().as_f64(), 0.0);
        assert_eq!(m.lost(), 0);
        assert_eq!(m.window_len(), 10);
    }

    #[test]
    fn fully_lost_window() {
        let m = ContinuityMetrics::of(&LossPattern::all_lost(6));
        assert_eq!(m.clf(), 6);
        assert_eq!(m.alf(), Alf::new(6, 6));
    }

    #[test]
    fn alf_fraction_ordering() {
        assert!(Alf::new(1, 3) > Alf::new(1, 4));
        assert!(Alf::new(2, 8) == Alf::new(2, 8));
        assert_eq!(
            Alf::new(1, 2).cmp(&Alf::new(2, 4)),
            std::cmp::Ordering::Equal
        );
        assert!(Alf::new(0, 5) < Alf::new(1, 100));
    }

    #[test]
    fn alf_eq_and_hash_agree_with_ord() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let hash = |alf: Alf| {
            let mut h = DefaultHasher::new();
            alf.hash(&mut h);
            h.finish()
        };

        // Equal fraction values must be ==, hash alike, and cmp Equal.
        let pairs = [
            (Alf::new(1, 2), Alf::new(2, 4)),
            (Alf::new(0, 0), Alf::new(0, 7)),
            (Alf::new(3, 3), Alf::new(5, 5)),
        ];
        for (a, b) in pairs {
            assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
            assert_eq!(a, b);
            assert_eq!(hash(a), hash(b));
        }

        // Distinct fraction values stay distinct.
        assert_ne!(Alf::new(1, 2), Alf::new(1, 3));
        assert_ne!(
            Alf::new(1, 2).cmp(&Alf::new(1, 3)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn alf_empty_window_is_zero() {
        let alf = Alf::new(0, 0);
        assert_eq!(alf.as_f64(), 0.0);
        assert_eq!(alf.cmp(&Alf::new(0, 10)), std::cmp::Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "cannot lose more")]
    fn alf_rejects_excess_loss() {
        let _ = Alf::new(5, 4);
    }

    #[test]
    fn from_parts_validates() {
        let m = ContinuityMetrics::from_parts(Alf::new(3, 10), 2);
        assert_eq!(m.clf(), 2);
    }

    #[test]
    #[should_panic(expected = "CLF cannot exceed")]
    fn from_parts_rejects_clf_above_loss() {
        let _ = ContinuityMetrics::from_parts(Alf::new(1, 10), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero loss")]
    fn from_parts_rejects_zero_clf_with_loss() {
        let _ = ContinuityMetrics::from_parts(Alf::new(1, 10), 0);
    }

    #[test]
    fn display_formats() {
        let m = ContinuityMetrics::of(&LossPattern::from_lost_indices(4, [0, 1]));
        assert_eq!(m.to_string(), "ALF 2/4 CLF 2");
    }
}
