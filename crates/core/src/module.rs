//! Error spreading as a plug-in module (§4.3).
//!
//! "It is possible to build an error spreading module … independent of any
//! other error handling protocol": the sender drains its frames through a
//! [`Scrambler`] instead of sending directly, and the receiver routes
//! arrivals through a [`Descrambler`] before delivery to the application.
//! Neither side's base protocol changes; the pair is transparent on a
//! lossless path and spreads bursts on a lossy one.
//!
//! The scrambler buffers one window of items, emits them in the
//! error-spreading order, and re-plans each window from a burst-bound
//! callback (wire it to a [`BurstEstimator`](crate::estimator) fed by
//! receiver feedback for the adaptive behaviour of §4.2).

use crate::cpo::calculate_permutation;
use crate::permutation::Permutation;

/// A scrambled item: the payload plus the metadata the descrambler needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scrambled<T> {
    /// Which window the item belongs to.
    pub window: u64,
    /// The item's playout position within its window.
    pub playout: usize,
    /// The item's transmission slot within its window.
    pub slot: usize,
    /// The payload.
    pub item: T,
}

/// Sender-side spreading module: buffers a window, emits it permuted.
///
/// # Example
///
/// ```
/// use espread_core::module::{Descrambler, Scrambler};
///
/// let mut tx = Scrambler::new(6, |_| 2); // windows of 6, burst bound 2
/// let mut rx = Descrambler::new(6);
///
/// let mut delivered = Vec::new();
/// for item in 0..12u32 {
///     if let Some(window) = tx.push(item) {
///         let w = window[0].window;
///         for s in window {
///             rx.accept(s); // the network may drop some of these
///         }
///         delivered.extend(rx.take_window(w).unwrap().into_iter().flatten());
///     }
/// }
/// assert_eq!(delivered, (0..12).collect::<Vec<u32>>()); // transparent
/// ```
#[derive(Debug, Clone)]
pub struct Scrambler<T> {
    window_len: usize,
    next_window: u64,
    buffer: Vec<T>,
    burst_bound: fn(u64) -> usize,
}

impl<T> Scrambler<T> {
    /// Creates a scrambler for windows of `window_len` items; `burst_bound`
    /// supplies the per-window bursty-loss bound (its argument is the
    /// window number, so adaptive callers can vary it over time).
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    pub fn new(window_len: usize, burst_bound: fn(u64) -> usize) -> Self {
        assert!(window_len > 0, "window must hold at least one item");
        Scrambler {
            window_len,
            next_window: 0,
            buffer: Vec::with_capacity(window_len),
            burst_bound,
        }
    }

    /// The window length.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Items buffered towards the current window.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Adds one item in playout order; returns the full window in
    /// transmission order once it fills.
    pub fn push(&mut self, item: T) -> Option<Vec<Scrambled<T>>> {
        self.buffer.push(item);
        if self.buffer.len() < self.window_len {
            return None;
        }
        Some(self.emit())
    }

    /// Emits any partially filled window (e.g. at end of stream),
    /// permuted within its shorter length. Returns `None` when empty.
    pub fn flush(&mut self) -> Option<Vec<Scrambled<T>>> {
        if self.buffer.is_empty() {
            None
        } else {
            Some(self.emit())
        }
    }

    fn emit(&mut self) -> Vec<Scrambled<T>> {
        let window = self.next_window;
        self.next_window += 1;
        let items = std::mem::take(&mut self.buffer);
        let n = items.len();
        let b = (self.burst_bound)(window).clamp(1, n);
        let perm = calculate_permutation(n, b).permutation;
        let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
        perm.as_slice()
            .iter()
            .enumerate()
            .map(|(slot, &playout)| Scrambled {
                window,
                playout,
                slot,
                item: slots[playout].take().expect("each playout index used once"),
            })
            .collect()
    }

    /// The permutation the scrambler would use for a full window number
    /// `window` (for receivers that want to predict slots).
    pub fn permutation_for(&self, window: u64) -> Permutation {
        let b = (self.burst_bound)(window).clamp(1, self.window_len);
        calculate_permutation(self.window_len, b).permutation
    }
}

/// Receiver-side module: collects scrambled arrivals (any order, with
/// gaps) and hands back windows in playout order.
#[derive(Debug, Clone)]
pub struct Descrambler<T> {
    window_len: usize,
    /// (window, slots) for windows still being collected.
    open: Vec<(u64, Vec<Option<T>>, usize)>,
}

impl<T> Descrambler<T> {
    /// Creates a descrambler for windows of `window_len` items.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    pub fn new(window_len: usize) -> Self {
        assert!(window_len > 0, "window must hold at least one item");
        Descrambler {
            window_len,
            open: Vec::new(),
        }
    }

    /// Accepts one scrambled arrival. Duplicate (window, playout) pairs
    /// keep the first copy.
    ///
    /// # Panics
    ///
    /// Panics if the playout index exceeds the window length.
    pub fn accept(&mut self, scrambled: Scrambled<T>) {
        assert!(
            scrambled.playout < self.window_len,
            "playout index {} out of window {}",
            scrambled.playout,
            self.window_len
        );
        let entry = match self
            .open
            .iter_mut()
            .find(|(w, _, _)| *w == scrambled.window)
        {
            Some(entry) => entry,
            None => {
                self.open.push((
                    scrambled.window,
                    (0..self.window_len).map(|_| None).collect(),
                    0,
                ));
                self.open.last_mut().expect("just pushed")
            }
        };
        if entry.1[scrambled.playout].is_none() {
            entry.1[scrambled.playout] = Some(scrambled.item);
            entry.2 += 1;
        }
    }

    /// Windows with at least one arrival, ascending.
    pub fn completed_windows(&self) -> Vec<u64> {
        let mut ws: Vec<u64> = self.open.iter().map(|(w, _, _)| *w).collect();
        ws.sort_unstable();
        ws
    }

    /// Number of items received so far for `window`.
    pub fn received_count(&self, window: u64) -> usize {
        self.open
            .iter()
            .find(|(w, _, _)| *w == window)
            .map(|(_, _, count)| *count)
            .unwrap_or(0)
    }

    /// Removes and returns `window` in playout order (`None` entries are
    /// the losses). Returns `None` if the window was never seen.
    pub fn take_window(&mut self, window: u64) -> Option<Vec<Option<T>>> {
        let idx = self.open.iter().position(|(w, _, _)| *w == window)?;
        let (_, slots, _) = self.open.swap_remove(idx);
        Some(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_without_loss_is_transparent() {
        let mut tx = Scrambler::new(8, |_| 3);
        let mut rx = Descrambler::new(8);
        let mut out = Vec::new();
        for item in 0..24 {
            if let Some(window) = tx.push(item) {
                let w = window[0].window;
                // The wire order differs from playout order.
                let wire: Vec<i32> = window.iter().map(|s| s.item).collect();
                assert_ne!(wire, (w as i32 * 8..w as i32 * 8 + 8).collect::<Vec<_>>());
                for s in window {
                    rx.accept(s);
                }
                out.extend(rx.take_window(w).unwrap().into_iter().flatten());
            }
        }
        assert_eq!(out, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn bursts_on_the_wire_spread_in_playout() {
        let mut tx = Scrambler::new(16, |_| 4);
        let mut rx = Descrambler::new(16);
        let window = (0..16).fold(None, |_, i| tx.push(i)).expect("window full");
        // Drop 4 consecutive wire slots.
        for s in window.into_iter().filter(|s| !(5..9).contains(&s.slot)) {
            rx.accept(s);
        }
        let playout = rx.take_window(0).unwrap();
        let lost: Vec<usize> = playout
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        assert_eq!(lost.len(), 4);
        // No two lost items adjacent: the burst was spread (16 ≥ 4²).
        for w in lost.windows(2) {
            assert!(w[1] - w[0] >= 2, "adjacent losses {lost:?}");
        }
    }

    #[test]
    fn flush_emits_short_tail_window() {
        let mut tx = Scrambler::new(10, |_| 2);
        for i in 0..7 {
            assert!(tx.push(i).is_none());
        }
        let tail = tx.flush().expect("partial window");
        assert_eq!(tail.len(), 7);
        assert!(tx.flush().is_none());
        // All playout indices 0..7 present exactly once.
        let mut seen: Vec<usize> = tail.iter().map(|s| s.playout).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_for_matches_calculate_permutation() {
        // (The multi-scale tie-break may select the same robust order for
        // different bounds — what matters is agreement with the planner.)
        let tx: Scrambler<u32> = Scrambler::new(16, |w| if w == 0 { 2 } else { 8 });
        assert_eq!(
            tx.permutation_for(0),
            calculate_permutation(16, 2).permutation
        );
        assert_eq!(
            tx.permutation_for(1),
            calculate_permutation(16, 8).permutation
        );
        // Out-of-range bounds are clamped to the window.
        let tx: Scrambler<u32> = Scrambler::new(4, |_| 99);
        assert_eq!(tx.permutation_for(0).len(), 4);
    }

    #[test]
    fn descrambler_tracks_windows_and_duplicates() {
        let mut rx = Descrambler::new(4);
        rx.accept(Scrambled {
            window: 3,
            playout: 1,
            slot: 0,
            item: "a",
        });
        rx.accept(Scrambled {
            window: 3,
            playout: 1,
            slot: 2,
            item: "dup",
        });
        rx.accept(Scrambled {
            window: 5,
            playout: 0,
            slot: 0,
            item: "b",
        });
        assert_eq!(rx.completed_windows(), vec![3, 5]);
        assert_eq!(rx.received_count(3), 1);
        let w3 = rx.take_window(3).unwrap();
        assert_eq!(w3[1], Some("a")); // first copy kept
        assert!(rx.take_window(3).is_none());
        assert_eq!(rx.received_count(9), 0);
    }

    #[test]
    #[should_panic(expected = "out of window")]
    fn out_of_range_playout_rejected() {
        let mut rx: Descrambler<()> = Descrambler::new(4);
        rx.accept(Scrambled {
            window: 0,
            playout: 9,
            slot: 0,
            item: (),
        });
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_window_rejected() {
        let _: Scrambler<u8> = Scrambler::new(0, |_| 1);
    }
}
