//! Property-based tests for the mini-CMT pipeline.

use espread_cmt::{priority_of, BFrameOrdering, Pipeline, PipelineConfig, PriorityBuffer};
use espread_trace::{Frame, FrameType, Movie, MpegTrace};
use proptest::prelude::*;

fn any_frame_type() -> impl Strategy<Value = FrameType> {
    prop_oneof![Just(FrameType::I), Just(FrameType::P), Just(FrameType::B)]
}

fn any_ordering() -> impl Strategy<Value = BFrameOrdering> {
    prop_oneof![
        Just(BFrameOrdering::InOrder),
        Just(BFrameOrdering::Ibo),
        (1usize..8).prop_map(|burst| BFrameOrdering::Cpo { burst }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Drained buffers are sorted by (priority class, playout index) and
    /// contain exactly what was pushed.
    #[test]
    fn priority_buffer_orders_and_preserves(
        types in prop::collection::vec(any_frame_type(), 0..40)
    ) {
        let mut buf = PriorityBuffer::new();
        for (i, &t) in types.iter().enumerate() {
            buf.push(Frame { index: i, frame_type: t, size_bytes: 100 }, u64::MAX);
        }
        let drained = buf.drain_prioritised();
        prop_assert_eq!(drained.len(), types.len());
        for w in drained.windows(2) {
            prop_assert!(
                (w[0].priority, w[0].frame.index) <= (w[1].priority, w[1].frame.index)
            );
        }
        for f in &drained {
            prop_assert_eq!(f.priority, priority_of(f.frame.frame_type));
        }
    }

    /// Expiry never removes frames with future deadlines.
    #[test]
    fn expiry_is_exact(deadlines in prop::collection::vec(0u64..1000, 1..30), now in 0u64..1000) {
        let mut buf = PriorityBuffer::new();
        for (i, &d) in deadlines.iter().enumerate() {
            buf.push(Frame { index: i, frame_type: FrameType::B, size_bytes: 10 }, d);
        }
        let expired = buf.expire(now);
        let expected = deadlines.iter().filter(|&&d| d <= now).count();
        prop_assert_eq!(expired, expected);
        prop_assert_eq!(buf.len(), deadlines.len() - expected);
    }

    /// Every B-frame ordering yields a permutation; pipelines run to
    /// completion for any ordering and remain deterministic.
    #[test]
    fn pipelines_complete_for_any_ordering(ordering in any_ordering(), seed in any::<u64>()) {
        let config = PipelineConfig {
            cycles: 6,
            seed,
            ..PipelineConfig::default()
        };
        let trace = MpegTrace::new(Movie::JurassicPark, 2);
        let a = Pipeline::new(trace.clone(), &config, ordering).run();
        let b = Pipeline::new(trace, &config, ordering).run();
        prop_assert_eq!(a.len(), 6);
        prop_assert_eq!(
            a.clf_values().collect::<Vec<_>>(),
            b.clf_values().collect::<Vec<_>>()
        );
        for m in a.windows() {
            prop_assert!(m.clf() <= m.window_len());
        }
    }
}
