#!/usr/bin/env bash
# Regenerates every table/figure/ablation and stores the outputs in results/.
# Each bench binary also drops a telemetry snapshot (JSON lines) at
# results/telemetry_<name>.json; this script verifies the snapshot landed
# and aborts on the first binary that exits non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

fail() {
  echo "error: $*" >&2
  exit 1
}

# Runs one bench binary, teeing stdout to results/$out.txt and checking
# that its telemetry snapshot results/telemetry_$snap.json was (re)written.
run_bench() {
  local bin=$1 out=$2 snap=$3
  shift 3
  local snapshot="results/telemetry_$snap.json"
  rm -f "$snapshot"
  echo "=== $out ==="
  cargo run --quiet --release -p espread-bench --bin "$bin" -- "$@" \
    | tee "results/$out.txt" \
    || fail "$bin exited non-zero"
  [[ -s $snapshot ]] || fail "$bin did not write $snapshot"
}

bins=(
  fig1_metrics table1_example theorem1_validation fig3_layered_order
  table2_ibo_vs_cpo fig11_bandwidth_sweep fig12_buffer_sweep
  orthogonality_blocks ablation_adaptation ablation_timing
  ablation_loss_models extension_multi_burst extension_concealment
  extension_stochastic_orders movie_sweep
)
for bin in "${bins[@]}"; do
  run_bench "$bin" "$bin" "$bin"
done
for pbad in 0.6 0.7; do
  run_bench fig8_network_loss "fig8_pbad_$pbad" "fig8_pbad_$pbad" --pbad "$pbad"
done
echo "=== generate_report ==="
cargo run --quiet --release -p espread-bench --bin generate_report > /dev/null \
  || fail "generate_report exited non-zero"

count=$(ls results/telemetry_*.json 2>/dev/null | wc -l)
echo "All experiment outputs written to results/ ($count telemetry snapshots)."
