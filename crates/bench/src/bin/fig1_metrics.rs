//! Figure 1 — the two example streams that define the continuity metrics.
//!
//! ```sh
//! cargo run -p espread-bench --bin fig1_metrics
//! ```

use espread_bench::sweep;
use espread_exec::Json;
use espread_qos::{ContinuityMetrics, LossPattern};

fn main() {
    println!("Figure 1: two example streams used to explain the metrics\n");
    let streams = [
        (
            "stream 1 (back-to-back losses)",
            LossPattern::from_received([false, false, true, true]),
        ),
        (
            "stream 2 (spread-out losses)",
            LossPattern::from_received([false, true, true, false]),
        ),
    ];
    println!(
        "{:<32} {:<8} {:>14} {:>16}",
        "stream", "slots", "aggregate loss", "consecutive loss"
    );

    let cells = sweep::executor("fig1_metrics").run(streams.to_vec(), |_, (name, pattern)| {
        let m = ContinuityMetrics::of(&pattern);
        (name, pattern.to_string(), m.alf().to_string(), m.clf())
    });

    let mut rows = Vec::new();
    for (name, slots, alf, clf) in cells {
        println!("{name:<32} {slots:<8} {alf:>14} {clf:>16}");
        let mut row = Json::object();
        row.push("stream", name)
            .push("slots", slots.as_str())
            .push("alf", alf.as_str())
            .push("clf", clf);
        rows.push(row);
    }
    println!("\npaper: both streams have aggregate loss 2/4; consecutive loss 2 vs 1.");

    sweep::write_results("fig1_metrics", &sweep::results_doc("fig1_metrics", rows));
    espread_bench::write_telemetry_snapshot("fig1_metrics");
}
