//! Telemetry shim: real instruments when the `telemetry` feature is on,
//! no-ops otherwise, so the simulator structs embed one field and stay
//! `cfg`-free at the call sites.

#[cfg(feature = "telemetry")]
mod imp {
    use espread_telemetry::{current, Counter, Histogram};

    /// Tracks loss runs and records each completed burst's length into the
    /// current registry's `netsim.gilbert.burst_len` histogram (handles are
    /// resolved at construction, so build the simulator inside
    /// `espread_telemetry::with_current` to route it to a worker registry).
    #[derive(Debug, Clone)]
    pub struct BurstTracker {
        hist: Histogram,
        current: u64,
    }

    impl BurstTracker {
        pub(crate) fn new() -> Self {
            BurstTracker {
                hist: current().histogram("netsim.gilbert.burst_len"),
                current: 0,
            }
        }

        /// Feeds one packet outcome; a delivery closes any open loss run.
        #[inline]
        pub(crate) fn observe(&mut self, delivered: bool) {
            if delivered {
                if self.current > 0 {
                    self.hist.record(self.current);
                    self.current = 0;
                }
            } else {
                self.current += 1;
            }
        }
    }

    /// Per-link counters mirrored into the current registry.
    #[derive(Debug, Clone)]
    pub struct LinkTelem {
        offered: Counter,
        delivered: Counter,
        lost: Counter,
    }

    impl LinkTelem {
        pub(crate) fn new() -> Self {
            let g = current();
            LinkTelem {
                offered: g.counter("netsim.link.packets_offered"),
                delivered: g.counter("netsim.link.packets_delivered"),
                lost: g.counter("netsim.link.packets_lost"),
            }
        }

        #[inline]
        pub(crate) fn on_offered(&self) {
            self.offered.inc();
        }

        #[inline]
        pub(crate) fn on_delivered(&self) {
            self.delivered.inc();
        }

        #[inline]
        pub(crate) fn on_lost(&self) {
            self.lost.inc();
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    /// No-op stand-in; see the `telemetry`-feature variant.
    #[derive(Debug, Clone)]
    pub struct BurstTracker;

    impl BurstTracker {
        pub(crate) fn new() -> Self {
            BurstTracker
        }

        #[inline(always)]
        pub(crate) fn observe(&mut self, _delivered: bool) {}
    }

    /// No-op stand-in; see the `telemetry`-feature variant.
    #[derive(Debug, Clone)]
    pub struct LinkTelem;

    impl LinkTelem {
        pub(crate) fn new() -> Self {
            LinkTelem
        }

        #[inline(always)]
        pub(crate) fn on_offered(&self) {}

        #[inline(always)]
        pub(crate) fn on_delivered(&self) {}

        #[inline(always)]
        pub(crate) fn on_lost(&self) {}
    }
}

pub(crate) use imp::{BurstTracker, LinkTelem};
