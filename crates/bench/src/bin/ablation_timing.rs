//! Ablation — timing variation of the recovery schemes.
//!
//! The abstract's motivation for error spreading: classical error handling
//! "introduc\[es\] timing variations, which is unacceptable for isochronous
//! traffic". This experiment measures per-frame delivery latency and
//! jitter for each Fig. 4 block: spreading is a pure reordering inside an
//! already-buffered window (no added per-frame delay variance at the
//! playout point), while retransmission visibly stretches the latency tail
//! of exactly the frames it rescues.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin ablation_timing
//! ```

use espread_bench::paper_source;
use espread_protocol::{Ordering, ProtocolConfig, Recovery, Session};

fn main() {
    println!("Per-frame delivery timing by scheme (Pbad=0.7, 60 windows, seed 11)\n");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>8} {:>9}",
        "scheme", "mean lat ms", "max lat ms", "jitter ms", "late", "mean CLF"
    );
    let blocks: [(&str, Ordering, Recovery); 4] = [
        ("in-order, none", Ordering::InOrder, Recovery::None),
        (
            "in-order + retransmit",
            Ordering::InOrder,
            Recovery::Retransmit,
        ),
        ("spread, none", Ordering::spread(), Recovery::None),
        (
            "spread + retransmit",
            Ordering::spread(),
            Recovery::Retransmit,
        ),
    ];
    for (name, ordering, recovery) in blocks {
        let cfg = ProtocolConfig::paper(0.7, 11)
            .with_ordering(ordering)
            .with_recovery(recovery);
        let report = Session::new(cfg, paper_source(2, 60, 1)).run();
        let t = report.timing;
        println!(
            "{name:<26} {:>12.1} {:>12.1} {:>12.1} {:>8} {:>9.2}",
            t.mean_latency_us / 1000.0,
            t.max_latency_us as f64 / 1000.0,
            t.jitter_us / 1000.0,
            t.late_frames,
            report.summary().mean_clf
        );
    }
    println!("\nreading: spreading changes *which* frames a burst hits, not *when* frames");
    println!("arrive — its jitter matches the in-order baseline, while retransmission");
    println!("adds a latency tail (the recovered frames complete a NACK round later).");
    println!("All schemes stay inside the one-window start-up delay, so nothing is late.");

    espread_bench::write_telemetry_snapshot("ablation_timing");
}
