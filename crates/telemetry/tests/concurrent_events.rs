//! Concurrent event-log writers: the log is one serialisation point, so
//! the merged order must stay consistent with every thread's program
//! order, and the retention cap must account for every overflowing emit
//! exactly once.

use std::thread;

use espread_telemetry::{Event, Registry};
use proptest::prelude::*;

/// Encodes (writer, sequence) into a `WindowMetrics` event so the merged
/// log can be partitioned back per writer.
fn tagged(writer: usize, seq: usize) -> Event {
    Event::WindowMetrics {
        window: seq as u64,
        lost: writer,
        window_len: 0,
        clf: 0,
    }
}

fn decode(event: &Event) -> (usize, u64) {
    match event {
        Event::WindowMetrics { window, lost, .. } => (*lost, *window),
        other => panic!("unexpected event in log: {other:?}"),
    }
}

proptest! {
    /// Each writer emits its events in sequence order; whatever survives
    /// in the merged log must preserve each writer's order, and with the
    /// cap out of reach nothing is dropped.
    #[test]
    fn merged_log_preserves_every_writers_order(
        counts in prop::collection::vec(0usize..200, 2..5),
    ) {
        let registry = Registry::new();
        thread::scope(|scope| {
            for (writer, &n) in counts.iter().enumerate() {
                let registry = registry.clone();
                scope.spawn(move || {
                    for seq in 0..n {
                        registry.emit(tagged(writer, seq));
                    }
                });
            }
        });
        let snapshot = registry.snapshot();
        prop_assert_eq!(snapshot.events_dropped, 0);
        prop_assert_eq!(snapshot.events.len(), counts.iter().sum::<usize>());
        for (writer, &n) in counts.iter().enumerate() {
            let seqs: Vec<u64> = snapshot
                .events
                .iter()
                .map(decode)
                .filter(|&(w, _)| w == writer)
                .map(|(_, seq)| seq)
                .collect();
            let expect: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(
                seqs,
                expect,
                "writer {}'s events must appear complete and in program order",
                writer
            );
        }
    }

    /// Overflow accounting is exact even under contention: retained
    /// events never exceed the cap, and retained + dropped equals the
    /// number of emits.
    #[test]
    fn overflow_increments_the_drop_counter_exactly(
        cap in 0usize..64,
        counts in prop::collection::vec(1usize..100, 2..5),
    ) {
        let registry = Registry::with_event_cap(cap);
        prop_assert_eq!(registry.event_cap(), cap);
        thread::scope(|scope| {
            for (writer, &n) in counts.iter().enumerate() {
                let registry = registry.clone();
                scope.spawn(move || {
                    for seq in 0..n {
                        registry.emit(tagged(writer, seq));
                    }
                });
            }
        });
        let total: usize = counts.iter().sum();
        let snapshot = registry.snapshot();
        prop_assert_eq!(snapshot.events.len(), total.min(cap));
        prop_assert_eq!(
            snapshot.events.len() as u64 + snapshot.events_dropped,
            total as u64
        );
    }
}
