//! The pktDest object: the receiving end of the CMT pipeline.
//!
//! Collects arriving packets, reassembles frames into playout order
//! regardless of the transmission order (the un-permute step happens
//! implicitly through frame indices), tracks duplicate suppression for
//! Cyclic-UDP-style repeated sends, and reports per-cycle continuity.

use espread_netsim::{Delivery, SimTime};
use espread_qos::{ContinuityMetrics, LossPattern};

/// Receiver state for one buffer cycle.
///
/// Payloads are the frame's playout index (what [`super::PktSrc`]
/// transmits); `expected` lists the playout indices staged for the cycle.
#[derive(Debug, Clone)]
pub struct PktDest {
    expected: Vec<usize>,
    received: Vec<bool>,
    first_arrival: Vec<Option<SimTime>>,
    duplicates: u64,
}

impl PktDest {
    /// Prepares the receiver for a cycle carrying the given playout
    /// indices (ascending or not; order is irrelevant).
    pub fn new(mut expected: Vec<usize>) -> Self {
        expected.sort_unstable();
        let len = expected.len();
        PktDest {
            expected,
            received: vec![false; len],
            first_arrival: vec![None; len],
            duplicates: 0,
        }
    }

    /// Number of frames expected this cycle.
    pub fn len(&self) -> usize {
        self.expected.len()
    }

    /// Whether the cycle expects no frames.
    pub fn is_empty(&self) -> bool {
        self.expected.is_empty()
    }

    /// Accepts one delivery whose payload is the frame's playout index.
    /// Unknown indices are ignored (stale cycle); duplicates are counted
    /// and suppressed (Cyclic-UDP resends the same frame several times).
    pub fn accept(&mut self, delivery: &Delivery<usize>) {
        let Ok(slot) = self.expected.binary_search(&delivery.packet.payload) else {
            return;
        };
        if self.received[slot] {
            self.duplicates += 1;
            return;
        }
        self.received[slot] = true;
        self.first_arrival[slot] = Some(delivery.arrived_at);
    }

    /// Duplicate packets suppressed so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// The playout-order loss pattern of the cycle so far.
    pub fn pattern(&self) -> LossPattern {
        LossPattern::from_received(self.received.iter().copied())
    }

    /// Continuity metrics of the cycle so far.
    pub fn metrics(&self) -> ContinuityMetrics {
        ContinuityMetrics::of(&self.pattern())
    }

    /// First-arrival time of the frame with playout index `frame`, if it
    /// arrived and is part of this cycle.
    pub fn arrival_of(&self, frame: usize) -> Option<SimTime> {
        let slot = self.expected.binary_search(&frame).ok()?;
        self.first_arrival[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espread_netsim::Packet;

    fn delivery(frame: usize, at: u64) -> Delivery<usize> {
        Delivery {
            arrived_at: SimTime::from_micros(at),
            packet: Packet::new(0, 100, SimTime::ZERO, frame),
        }
    }

    #[test]
    fn reassembles_in_playout_order() {
        let mut dest = PktDest::new(vec![4, 2, 0]); // arbitrary staging order
        assert_eq!(dest.len(), 3);
        dest.accept(&delivery(4, 10));
        dest.accept(&delivery(0, 20));
        assert_eq!(dest.pattern().to_string(), ".X."); // 0 ok, 2 missing, 4 ok
        assert_eq!(dest.metrics().lost(), 1);
        assert_eq!(dest.arrival_of(4), Some(SimTime::from_micros(10)));
        assert_eq!(dest.arrival_of(2), None);
    }

    #[test]
    fn duplicates_suppressed_and_counted() {
        let mut dest = PktDest::new(vec![0, 1]);
        dest.accept(&delivery(1, 5));
        dest.accept(&delivery(1, 9)); // Cyclic-UDP resend
        assert_eq!(dest.duplicates(), 1);
        // First arrival wins.
        assert_eq!(dest.arrival_of(1), Some(SimTime::from_micros(5)));
    }

    #[test]
    fn stale_frames_ignored() {
        let mut dest = PktDest::new(vec![0, 1]);
        dest.accept(&delivery(7, 5));
        assert_eq!(dest.metrics().lost(), 2);
        assert_eq!(dest.duplicates(), 0);
        assert_eq!(dest.arrival_of(7), None);
    }

    #[test]
    fn empty_cycle() {
        let dest = PktDest::new(vec![]);
        assert!(dest.is_empty());
        assert_eq!(dest.metrics().lost(), 0);
    }
}
