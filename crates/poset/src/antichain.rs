//! Antichains and antichain decompositions.
//!
//! An **antichain** is a subset of pairwise-incomparable elements; in the
//! paper's stream model the antichains are exactly the sets of frames that
//! may be permuted among each other without violating dependencies (§3.3).
//!
//! **Mirsky's theorem**: the minimum number of antichains needed to
//! partition a poset equals the length of its longest chain, and the
//! partition by *height* achieves it. The paper uses this to derive the
//! layers of the Layered Permutation Transmission Order: "being ranked
//! automatically gives us the best antichain decomposition".

use crate::poset::Poset;

impl Poset {
    /// Whether `subset` is an antichain: every pair incomparable.
    ///
    /// # Panics
    ///
    /// Panics if any element of `subset` is out of range.
    pub fn is_antichain(&self, subset: &[usize]) -> bool {
        subset
            .iter()
            .enumerate()
            .all(|(i, &a)| subset[i + 1..].iter().all(|&b| self.incomparable(a, b)))
    }

    /// The minimum antichain decomposition by height (Mirsky's
    /// construction): layer `h` holds all elements of height `h`, in
    /// ascending element order.
    ///
    /// The number of layers equals [`Poset::height`] — provably minimal —
    /// and for every `a < b`, `a` appears in a strictly earlier layer than
    /// `b`, which is exactly the property a layered transmission order
    /// needs (prerequisites travel in earlier layers).
    pub fn mirsky_decomposition(&self) -> Vec<Vec<usize>> {
        let mut layers: Vec<Vec<usize>> = vec![Vec::new(); self.height()];
        for a in 0..self.len() {
            layers[self.element_height(a)].push(a);
        }
        layers
    }

    /// Validates a proposed antichain decomposition: `layers` must
    /// partition `0..len()` and each layer must be an antichain.
    pub fn is_antichain_decomposition(&self, layers: &[Vec<usize>]) -> bool {
        let mut seen = vec![false; self.len()];
        for layer in layers {
            if !self.is_antichain(layer) {
                return false;
            }
            for &a in layer {
                if a >= self.len() || seen[a] {
                    return false;
                }
                seen[a] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// The *width-1 check* the layered scheme relies on: for every pair
    /// `a < b`, `a`'s layer index is strictly smaller than `b`'s.
    ///
    /// Returns `false` if some dependency crosses layers the wrong way or
    /// sits inside a single layer, or if `layers` is not a partition.
    pub fn layers_respect_order(&self, layers: &[Vec<usize>]) -> bool {
        if !self.is_antichain_decomposition(layers) {
            return false;
        }
        let mut layer_of = vec![usize::MAX; self.len()];
        for (idx, layer) in layers.iter().enumerate() {
            for &a in layer {
                layer_of[a] = idx;
            }
        }
        for a in 0..self.len() {
            for b in 0..self.len() {
                if self.less_than(a, b) && layer_of[a] >= layer_of[b] {
                    return false;
                }
            }
        }
        true
    }

    /// Size of the largest layer across the height- and depth-based
    /// decompositions — a cheap lower bound on the poset width (exact for
    /// the layered MPEG/H.261 structures in this workspace, where the
    /// B-frame depth layer is a maximum antichain; see
    /// [`Poset::width`](crate::poset::Poset) for the exact Dilworth
    /// computation).
    pub fn max_layer_width(&self) -> usize {
        self.mirsky_decomposition()
            .iter()
            .chain(self.depth_decomposition().iter())
            .map(|l| l.len())
            .max()
            .unwrap_or(0)
    }

    /// The *depth* of an element: the length minus one of the longest chain
    /// whose **minimum** is `a` (how far its dependents extend above it).
    /// Maximal elements have depth 0.
    ///
    /// In the MPEG model, depth ranks criticality: I-frames are deepest,
    /// B-frames have depth 0.
    pub fn element_depth(&self, a: usize) -> usize {
        assert!(a < self.len(), "element out of range");
        fn depth(p: &Poset, x: usize, memo: &mut [usize]) -> usize {
            if memo[x] != usize::MAX {
                return memo[x];
            }
            let d = p
                .upper_covers(x)
                .iter()
                .map(|&y| 1 + depth(p, y, memo))
                .max()
                .unwrap_or(0);
            memo[x] = d;
            d
        }
        let mut memo = vec![usize::MAX; self.len()];
        depth(self, a, &mut memo)
    }

    /// The dual-Mirsky minimum antichain decomposition **by depth**,
    /// deepest layer first: layer 0 holds the elements most depended upon,
    /// the last layer the elements nothing depends on.
    ///
    /// Like [`Poset::mirsky_decomposition`] this has exactly
    /// [`Poset::height`] layers and respects the order (every dependency
    /// crosses from an earlier layer to a later one) — but it groups
    /// *criticality* the way the paper's Layered Permutation Transmission
    /// Order for MPEG does (Fig. 3): all I-frames, then all P₁'s, P₂'s, …,
    /// and finally every B-frame in the last layer.
    pub fn depth_decomposition(&self) -> Vec<Vec<usize>> {
        let h = self.height();
        let mut layers: Vec<Vec<usize>> = vec![Vec::new(); h];
        let mut memo = vec![usize::MAX; self.len()];
        fn depth(p: &Poset, x: usize, memo: &mut [usize]) -> usize {
            if memo[x] != usize::MAX {
                return memo[x];
            }
            let d = p
                .upper_covers(x)
                .iter()
                .map(|&y| 1 + depth(p, y, memo))
                .max()
                .unwrap_or(0);
            memo[x] = d;
            d
        }
        for a in 0..self.len() {
            let d = depth(self, a, &mut memo);
            layers[h - 1 - d].push(a);
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Poset {
        let mut b = Poset::builder(4);
        b.add_relation(0, 1).unwrap();
        b.add_relation(0, 2).unwrap();
        b.add_relation(1, 3).unwrap();
        b.add_relation(2, 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn antichain_detection() {
        let p = diamond();
        assert!(p.is_antichain(&[1, 2]));
        assert!(!p.is_antichain(&[0, 1]));
        assert!(p.is_antichain(&[]));
        assert!(p.is_antichain(&[3]));
    }

    #[test]
    fn mirsky_layers_of_diamond() {
        let p = diamond();
        let layers = p.mirsky_decomposition();
        assert_eq!(layers, vec![vec![0], vec![1, 2], vec![3]]);
        assert!(p.is_antichain_decomposition(&layers));
        assert!(p.layers_respect_order(&layers));
        assert_eq!(layers.len(), p.height()); // Mirsky equality
    }

    #[test]
    fn mirsky_on_antichain_is_single_layer() {
        let p = Poset::antichain(6);
        let layers = p.mirsky_decomposition();
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].len(), 6);
        assert_eq!(p.max_layer_width(), 6);
    }

    #[test]
    fn mirsky_on_chain_is_singletons() {
        let p = Poset::chain(4);
        let layers = p.mirsky_decomposition();
        assert_eq!(layers.len(), 4);
        assert!(layers.iter().all(|l| l.len() == 1));
        assert_eq!(p.max_layer_width(), 1);
    }

    #[test]
    fn decomposition_validation_rejects_bad_partitions() {
        let p = diamond();
        // Missing element 3.
        assert!(!p.is_antichain_decomposition(&[vec![0], vec![1, 2]]));
        // Duplicated element.
        assert!(!p.is_antichain_decomposition(&[vec![0], vec![1, 2], vec![3, 0]]));
        // Non-antichain layer.
        assert!(!p.is_antichain_decomposition(&[vec![0, 1], vec![2], vec![3]]));
        // Out of range.
        assert!(!p.is_antichain_decomposition(&[vec![0], vec![1, 2], vec![9]]));
    }

    #[test]
    fn layer_order_violations_detected() {
        let p = diamond();
        // Valid partition into antichains but wrong layer order: 3 before 0.
        let wrong = vec![vec![3], vec![1, 2], vec![0]];
        assert!(p.is_antichain_decomposition(&wrong));
        assert!(!p.layers_respect_order(&wrong));
    }

    #[test]
    fn depth_of_diamond() {
        let p = diamond();
        assert_eq!(p.element_depth(0), 2);
        assert_eq!(p.element_depth(1), 1);
        assert_eq!(p.element_depth(2), 1);
        assert_eq!(p.element_depth(3), 0);
    }

    #[test]
    fn depth_decomposition_of_diamond() {
        let p = diamond();
        let layers = p.depth_decomposition();
        assert_eq!(layers, vec![vec![0], vec![1, 2], vec![3]]);
        assert!(p.is_antichain_decomposition(&layers));
        assert!(p.layers_respect_order(&layers));
    }

    #[test]
    fn depth_differs_from_height_on_mpeg_like_shape() {
        // I < P, P < B1, I < B1 ... and a short B0 depending only on I:
        // height puts B0 with P (both height 1); depth puts B0 with B1
        // (both depth 0), matching the paper's "all B frames last" layers.
        let mut b = Poset::builder(4); // 0=I, 1=P, 2=B0, 3=B1
        b.add_relation(0, 1).unwrap(); // P depends on I
        b.add_relation(0, 2).unwrap(); // B0 depends on I
        b.add_relation(1, 3).unwrap(); // B1 depends on P
        b.add_relation(0, 3).unwrap();
        let p = b.build().unwrap();

        let by_height = p.mirsky_decomposition();
        assert_eq!(by_height, vec![vec![0], vec![1, 2], vec![3]]);

        let by_depth = p.depth_decomposition();
        assert_eq!(by_depth, vec![vec![0], vec![1], vec![2, 3]]);
        assert!(p.layers_respect_order(&by_depth));
    }

    #[test]
    fn mirsky_respects_order_on_random_like_poset() {
        // A two-GOP-like structure: two diamonds chained.
        let mut b = Poset::builder(8);
        for base in [0, 4] {
            b.add_relation(base, base + 1).unwrap();
            b.add_relation(base, base + 2).unwrap();
            b.add_relation(base + 1, base + 3).unwrap();
            b.add_relation(base + 2, base + 3).unwrap();
        }
        b.add_relation(3, 4).unwrap(); // open-GOP-style cross dependency
        let p = b.build().unwrap();
        let layers = p.mirsky_decomposition();
        assert!(p.layers_respect_order(&layers));
        assert_eq!(layers.len(), p.height());
    }
}
