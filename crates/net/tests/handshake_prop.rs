//! Property tests of the handshake: negotiation totality (arbitrary
//! client capabilities against arbitrary offer shapes either agree or
//! fail typed, never panic) and admission-refusal idempotency (a
//! duplicated Hello at capacity always gets back the identical cached
//! `Busy` datagram).

use std::net::UdpSocket;
use std::time::Duration;

use espread_net::wire::{self, Hello};
use espread_net::{
    encode, Msg, NetClient, NetClientConfig, NetServer, NetServerConfig, RetryPolicy,
};
use espread_protocol::{
    negotiate, ClientCapabilities, FecPolicy, FecScope, Ordering, ProtocolConfig, SessionOffer,
    StreamSource,
};
use espread_trace::{GopPattern, Movie, MpegTrace};
use proptest::prelude::*;

fn pattern_from(code: u8) -> GopPattern {
    match code % 3 {
        0 => GopPattern::gop12(),
        1 => GopPattern::gop15(),
        _ => GopPattern::h261(6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `negotiate` is total: any capability pair against any offer shape
    /// either produces an agreed session consistent with the offer or a
    /// typed [`espread_protocol::NegotiationError`] — never a panic, and
    /// never an agreement the client's stated resources cannot hold.
    #[test]
    fn negotiation_never_panics_and_agreements_are_consistent(
        buffer_bytes in any::<u64>(),
        max_startup_delay_ms in any::<u64>(),
        pattern_code in any::<u8>(),
        gops_per_window in 0usize..6,
        open_gop in any::<bool>(),
        fps in 0u32..121,
        packet_bytes in 0u32..100_000,
        max_frame_bytes in 0u32..1_000_000,
        fec_code in any::<u8>(),
        k in 0u8..12,
        m in 0u8..12,
    ) {
        let offer = SessionOffer {
            gop_pattern: pattern_from(pattern_code),
            gops_per_window,
            open_gop,
            fps,
            packet_bytes,
            max_frame_bytes,
            fec: match fec_code % 3 {
                0 => FecPolicy::off(),
                1 => FecPolicy::rs(FecScope::Critical, k, m),
                _ => FecPolicy::rs(FecScope::All, k, m),
            },
        };
        let caps = ClientCapabilities { buffer_bytes, max_startup_delay_ms };
        if let Ok(agreed) = negotiate(offer.clone(), caps) {
            let frames = offer.frames_per_window();
            prop_assert!(frames > 0, "an agreed window cannot be empty");
            prop_assert!(
                offer.buffer_bytes() <= caps.buffer_bytes,
                "agreement exceeds the client's stated buffer"
            );
            for &frame in &agreed.critical_frames {
                prop_assert!(
                    frame < frames,
                    "critical frame {} out of the {}-frame window",
                    frame,
                    frames
                );
            }
            prop_assert_eq!(
                agreed.layer_sizes.iter().sum::<usize>(),
                frames,
                "layer sizes must partition the window"
            );
        }
    }
}

proptest! {
    // Each case binds a real server, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Busy refusals are idempotent: with the one admission slot held,
    /// every duplicate of a Hello — any nonce, any duplication count —
    /// gets back the byte-identical cached `Busy` datagram, and none of
    /// the duplicates spawns a session.
    #[test]
    fn busy_replies_are_idempotent_under_duplicated_hellos(
        nonce_draws in proptest::collection::vec(1u64..u64::MAX, 1..5),
        dups in 2usize..5,
    ) {
        let nonces: std::collections::BTreeSet<u64> = nonce_draws.into_iter().collect();
        let trace = MpegTrace::new(Movie::JurassicPark, 1);
        let offer = SessionOffer {
            gop_pattern: GopPattern::gop12(),
            gops_per_window: 1,
            open_gop: false,
            fps: 24,
            packet_bytes: 2048,
            max_frame_bytes: 62_776 / 8,
            fec: FecPolicy::off(),
        };
        let mut config = NetServerConfig::new(
            ProtocolConfig::paper(0.6, 1),
            offer,
            StreamSource::mpeg(&trace, 1, 2, false),
        );
        config.max_sessions = 1;
        config.busy_retry_after = Duration::from_millis(77);
        let mut server = NetServer::bind("127.0.0.1:0", config).expect("bind server");
        let addr = server.local_addr();

        // Occupy the only slot with a real handshake; holding the client
        // (without streaming) keeps the session live.
        let occupant = NetClient::connect(
            addr,
            NetClientConfig {
                retry: RetryPolicy {
                    max_attempts: 4,
                    base: Duration::from_millis(25),
                    max: Duration::from_millis(200),
                },
                ..NetClientConfig::default()
            },
        )
        .expect("occupy the admission slot");

        let caps = ClientCapabilities::desktop();
        let sock = UdpSocket::bind("127.0.0.1:0").expect("bind prober");
        sock.connect(addr).expect("connect prober");
        sock.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let mut buf = [0u8; 2048];
        for &nonce in &nonces {
            let hello = encode(
                wire::CONN_NONE,
                &Msg::Hello(Hello {
                    nonce,
                    buffer_bytes: caps.buffer_bytes,
                    max_startup_delay_ms: caps.max_startup_delay_ms,
                    ordering: Ordering::spread(),
                }),
            );
            let mut first: Option<Vec<u8>> = None;
            for dup in 0..dups {
                sock.send(&hello).expect("send hello");
                let len = sock.recv(&mut buf).expect("busy reply");
                let reply = buf[..len].to_vec();
                let (_, msg) = espread_net::decode(&reply).expect("decodable reply");
                prop_assert!(
                    matches!(msg, Msg::Busy { retry_after_ms: 77 }),
                    "nonce {nonce} dup {dup}: expected the configured Busy, got {msg:?}"
                );
                match &first {
                    None => first = Some(reply),
                    Some(cached) => prop_assert_eq!(
                        cached,
                        &reply,
                        "nonce {} dup {}: cached Busy bytes changed",
                        nonce,
                        dup
                    ),
                }
            }
        }
        prop_assert_eq!(
            server.live_sessions(),
            1,
            "a refused Hello must never spawn a session"
        );
        drop(occupant);
        server.shutdown();
    }
}
