//! The executor's headline guarantee: a sweep's serialized results are
//! byte-identical for every worker count.

use espread_exec::{Executor, Json};

/// A miniature Monte-Carlo cell: consumes a nontrivial amount of RNG and
/// returns a float statistic plus an integer count, like the real bench
/// grids do.
fn run_cell(ctx: espread_exec::TrialCtx<'_>, cell: (u64, u64)) -> (f64, u64) {
    let (param, seed) = cell;
    let mut rng = ctx.rng(seed);
    let p = 0.01 + param as f64 / 100.0;
    let mut losses = 0u64;
    let mut run = 0u64;
    let mut longest = 0u64;
    for _ in 0..5_000 {
        if rng.chance(p) {
            losses += 1;
            run += 1;
            longest = longest.max(run);
        } else {
            run = 0;
        }
    }
    (losses as f64 / 5_000.0, longest)
}

fn serialize(grid: &[(u64, u64)], results: &[(f64, u64)]) -> String {
    let rows: Vec<Json> = grid
        .iter()
        .zip(results)
        .map(|(&(param, seed), &(rate, longest))| {
            let mut row = Json::object();
            row.push("param", param)
                .push("seed", seed)
                .push("loss_rate", rate)
                .push("longest_burst", longest);
            row
        })
        .collect();
    let mut doc = Json::object();
    doc.push("experiment", "determinism.test")
        .push("rows", Json::Array(rows));
    doc.render_pretty()
}

#[test]
fn serialized_results_identical_for_j1_and_j4() {
    let grid: Vec<(u64, u64)> = (0..6)
        .flat_map(|param| (0..5).map(move |seed| (param, seed)))
        .collect();

    let baseline = Executor::new("determinism.test", 1).run(grid.clone(), run_cell);
    let reference = serialize(&grid, &baseline);

    for jobs in [2, 4] {
        let parallel = Executor::new("determinism.test", jobs).run(grid.clone(), run_cell);
        assert_eq!(
            serialize(&grid, &parallel),
            reference,
            "jobs={jobs} diverged from jobs=1"
        );
    }
}

#[cfg(feature = "telemetry")]
#[test]
fn telemetry_counters_identical_for_j1_and_j4() {
    use espread_telemetry::{with_current, Registry};

    let run_with = |jobs: usize| {
        let registry = Registry::new();
        with_current(&registry, || {
            let exec = Executor::new("determinism.telem", jobs);
            let _ = exec.run((0..24u64).collect::<Vec<_>>(), |ctx, cell| {
                let reg = espread_telemetry::current();
                reg.counter("test.cells").inc();
                reg.counter("test.draws").add(cell + 1);
                reg.histogram("test.index").record(ctx.index() as u64);
                cell
            });
        });
        registry.snapshot()
    };

    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(serial.counter("test.cells"), parallel.counter("test.cells"));
    assert_eq!(serial.counter("test.draws"), parallel.counter("test.draws"));
    let (a, b) = (
        serial.histogram("test.index").expect("recorded"),
        parallel.histogram("test.index").expect("recorded"),
    );
    assert_eq!(a, b, "histogram deltas must merge to the same snapshot");
}
