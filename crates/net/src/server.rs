//! The threaded multi-session UDP server.
//!
//! One demux thread owns the socket: it answers handshakes (idempotently
//! — a duplicate `Hello` gets the cached reply), assigns connection ids,
//! and routes decoded control datagrams to per-session worker threads
//! over channels. Each session thread drives the simulator-grade
//! [`Server`](espread_protocol::Server) planner — fold the freshest ACK
//! in, plan the window's layered permutation order, send every fragment —
//! then closes the window with a `WindowEnd`/`WindowAck` exchange under
//! bounded retry with exponential backoff. Malformed datagrams are
//! counted and dropped, never trusted.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use espread_protocol::{
    negotiate, AgreedSession, ClientCapabilities, ProtocolConfig, Server, SessionOffer,
    StreamSource, WindowFeedback, WindowPlan,
};

use crate::error::NetError;
use crate::obsrec::SessionRecorder;
use crate::retry::RetryPolicy;
use crate::telem::ServerTelem;
use crate::wire::{self, Accept, ByeReason, DataMsg, Msg, Reject, WindowEnd, CONN_NONE};

/// How long a blocking socket/channel wait may run before re-checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(5);

/// Everything the server needs to stream one source to many clients.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Protocol parameters (α, packet size, recovery…). The *ordering* is
    /// a per-session choice the client makes in its `Hello`.
    pub protocol: ProtocolConfig,
    /// The session offer clients negotiate against.
    pub offer: SessionOffer,
    /// The stream to serve.
    pub source: StreamSource,
    /// Retry schedule for control exchanges (window ACK, teardown).
    pub retry: RetryPolicy,
    /// Inter-datagram send pacing (keeps a burst of a whole window from
    /// overrunning loopback socket buffers).
    pub pace: Duration,
    /// Optional flight-recorder hook (see `espread-obs`); disabled by
    /// default. Events are recorded for every session this server runs.
    pub recorder: SessionRecorder,
}

impl NetServerConfig {
    /// A config with the LAN retry schedule and 50 µs pacing.
    pub fn new(protocol: ProtocolConfig, offer: SessionOffer, source: StreamSource) -> Self {
        NetServerConfig {
            protocol,
            offer,
            source,
            retry: RetryPolicy::lan(),
            pace: Duration::from_micros(50),
            recorder: SessionRecorder::disabled(),
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        self.protocol.validate().map_err(NetError::Config)?;
        self.retry.validate().map_err(NetError::Config)?;
        self.offer
            .validate()
            .map_err(|e| NetError::Config(e.to_string()))?;
        if self.offer.frames_per_window() != self.source.frames_per_window() {
            return Err(NetError::Config(format!(
                "offer advertises {} frames per window but the source has {}",
                self.offer.frames_per_window(),
                self.source.frames_per_window()
            )));
        }
        if self.offer.fps != self.source.fps {
            return Err(NetError::Config("offer and source disagree on fps".into()));
        }
        // The Accept's frames/window field and the Data frame index are
        // both u16 on the wire (see the wire-limits table in `wire`).
        if self.offer.frames_per_window() > usize::from(u16::MAX) {
            return Err(NetError::Config(format!(
                "window of {} frames exceeds the wire's {} maximum",
                self.offer.frames_per_window(),
                u16::MAX
            )));
        }
        if self.offer.packet_bytes > u32::from(u16::MAX) {
            return Err(NetError::Config(
                "packet size exceeds the wire's 64 KiB payload field".into(),
            ));
        }
        if u32::try_from(self.source.window_count()).is_err() {
            return Err(NetError::Config("too many windows for the wire".into()));
        }
        Ok(())
    }
}

/// A running server; dropping (or [`NetServer::shutdown`]) stops the
/// demux thread, disconnects the sessions, and joins every thread.
#[derive(Debug)]
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    demux: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Configuration inconsistencies and socket errors.
    pub fn bind(addr: impl ToSocketAddrs, config: NetServerConfig) -> Result<Self, NetError> {
        config.validate()?;
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(POLL))?;
        let local_addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let demux = Demux {
            socket: Arc::new(socket),
            source: Arc::new(config.source),
            protocol: config.protocol,
            offer: config.offer,
            retry: config.retry,
            pace: config.pace,
            shutdown: Arc::clone(&shutdown),
            telem: ServerTelem::default_global(),
            obs: config.recorder,
        };
        let handle = std::thread::Builder::new()
            .name("espread-net-demux".into())
            .spawn(move || demux.run())
            .map_err(NetError::Io)?;
        Ok(NetServer {
            local_addr,
            shutdown,
            demux: Some(handle),
        })
    }

    /// The bound address clients (or a proxy) should send to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops serving: signals every thread and joins them. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, AtomicOrdering::SeqCst);
        if let Some(handle) = self.demux.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A datagram routed to a session, stamped with its arrival time.
struct Routed {
    msg: Msg,
    at: Instant,
}

struct Demux {
    socket: Arc<UdpSocket>,
    source: Arc<StreamSource>,
    protocol: ProtocolConfig,
    offer: SessionOffer,
    retry: RetryPolicy,
    pace: Duration,
    shutdown: Arc<AtomicBool>,
    telem: ServerTelem,
    obs: SessionRecorder,
}

impl Demux {
    fn run(self) {
        let mut sessions: HashMap<u32, Sender<Routed>> = HashMap::new();
        let mut handshakes: HashMap<u64, (SocketAddr, Vec<u8>)> = HashMap::new();
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        let mut next_conn: u32 = 1;
        let mut buf = vec![0u8; 65_536];
        while !self.shutdown.load(AtomicOrdering::SeqCst) {
            let (len, from) = match self.socket.recv_from(&mut buf) {
                Ok(ok) => ok,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => continue,
            };
            self.telem.on_rx();
            let (conn_id, msg) = match wire::decode(&buf[..len]) {
                Ok(ok) => ok,
                Err(_) => {
                    self.telem.on_decode_error();
                    continue;
                }
            };
            match msg {
                Msg::Hello(hello) => {
                    if let Some((addr, reply)) = handshakes.get(&hello.nonce) {
                        // Duplicate Hello (our reply was lost): resend the
                        // cached verdict, idempotently.
                        let _ = self.socket.send_to(reply, *addr);
                        self.telem.on_tx(reply.len());
                        continue;
                    }
                    let caps = ClientCapabilities {
                        buffer_bytes: hello.buffer_bytes,
                        max_startup_delay_ms: hello.max_startup_delay_ms,
                    };
                    let reply = match negotiate(self.offer.clone(), caps)
                        .map_err(|e| e.to_string())
                        .and_then(|agreed| {
                            accept_msg(hello.nonce, &agreed, self.source.window_count())
                        }) {
                        Ok(accept) => {
                            let conn_id = next_conn;
                            next_conn = next_conn.wrapping_add(1).max(1);
                            let (tx, rx) = mpsc::channel();
                            let session = Session {
                                socket: Arc::clone(&self.socket),
                                peer: from,
                                conn_id,
                                rx,
                                shutdown: Arc::clone(&self.shutdown),
                                protocol: self.protocol.clone().with_ordering(hello.ordering),
                                source: Arc::clone(&self.source),
                                retry: self.retry,
                                pace: self.pace,
                                telem: self.telem.clone(),
                                obs: self.obs.clone(),
                            };
                            let handle = std::thread::Builder::new()
                                .name(format!("espread-net-session-{conn_id}"))
                                .spawn(move || session.run());
                            match handle {
                                Ok(handle) => {
                                    workers.push(handle);
                                    sessions.insert(conn_id, tx);
                                    self.telem.on_session();
                                    wire::encode(conn_id, &Msg::Accept(accept))
                                }
                                Err(_) => wire::encode(
                                    CONN_NONE,
                                    &Msg::Reject(Reject {
                                        nonce: hello.nonce,
                                        reason: "server cannot spawn a session".into(),
                                    }),
                                ),
                            }
                        }
                        Err(reason) => {
                            let reject = Msg::Reject(Reject {
                                nonce: hello.nonce,
                                reason,
                            });
                            match wire::try_encode(CONN_NONE, &reject) {
                                Ok(bytes) => bytes,
                                Err(_) => {
                                    // A reason too long for the wire: send
                                    // a short typed refusal instead of a
                                    // silently cut one.
                                    self.telem.on_encode_oversize();
                                    wire::encode(
                                        CONN_NONE,
                                        &Msg::Reject(Reject {
                                            nonce: hello.nonce,
                                            reason: "negotiation failed".into(),
                                        }),
                                    )
                                }
                            }
                        }
                    };
                    let _ = self.socket.send_to(&reply, from);
                    self.telem.on_tx(reply.len());
                    handshakes.insert(hello.nonce, (from, reply));
                }
                other if conn_id != CONN_NONE => {
                    if let Some(tx) = sessions.get(&conn_id) {
                        if tx
                            .send(Routed {
                                msg: other,
                                at: Instant::now(),
                            })
                            .is_err()
                        {
                            sessions.remove(&conn_id);
                        }
                    }
                }
                _ => {} // sessionless non-Hello: ignore
            }
        }
        // Disconnect every session channel, then join the workers.
        drop(sessions);
        for handle in workers {
            let _ = handle.join();
        }
    }
}

/// Builds the wire `Accept`, refusing session shapes the wire's field
/// widths cannot carry.
fn accept_msg(nonce: u64, agreed: &AgreedSession, windows: usize) -> Result<Accept, String> {
    let narrow = |v: usize| -> Result<u16, String> {
        u16::try_from(v).map_err(|_| "session shape exceeds wire limits".to_string())
    };
    if agreed.layer_sizes.len() > wire::MAX_LAYERS {
        return Err(format!("session has more than {} layers", wire::MAX_LAYERS));
    }
    Ok(Accept {
        nonce,
        frames_per_window: narrow(agreed.offer.frames_per_window())?,
        windows_total: u32::try_from(windows).map_err(|_| "too many windows".to_string())?,
        packet_bytes: agreed.offer.packet_bytes,
        fps: agreed.offer.fps,
        layer_sizes: agreed
            .layer_sizes
            .iter()
            .map(|&s| narrow(s))
            .collect::<Result<_, _>>()?,
        critical_frames: agreed
            .critical_frames
            .iter()
            .map(|&f| narrow(f))
            .collect::<Result<_, _>>()?,
    })
}

/// Outcome of one window's ACK wait.
enum AckWait {
    Acked,
    TimedOut,
    Shutdown,
}

struct Session {
    socket: Arc<UdpSocket>,
    peer: SocketAddr,
    conn_id: u32,
    rx: Receiver<Routed>,
    shutdown: Arc<AtomicBool>,
    protocol: ProtocolConfig,
    source: Arc<StreamSource>,
    retry: RetryPolicy,
    pace: Duration,
    telem: ServerTelem,
    obs: SessionRecorder,
}

impl Session {
    fn run(self) {
        let epoch = Instant::now();
        if !self.await_begin(epoch) {
            return;
        }
        let mut proto = Server::new(&self.protocol, &self.source.poset);
        let windows_total = self.source.windows.len();
        for w in 0..windows_total {
            if self.stopping() {
                return;
            }
            // Fold any feedback that arrived while we were sending.
            while let Ok(routed) = self.rx.try_recv() {
                self.feed(epoch, &routed, &mut proto);
            }
            let plan = proto.plan_window(&self.source.poset);
            for (slot, sched) in plan.schedule.iter().enumerate() {
                self.obs
                    .queued(self.conn_id, w as u64, sched.frame as u32, slot as u32);
            }
            self.send_window(w as u64, &plan);
            let end = WindowEnd {
                window: w as u64,
                sent_at_us: elapsed_us(epoch),
                last: w + 1 == windows_total,
            };
            self.send(&Msg::WindowEnd(end));
            match self.await_ack(epoch, w as u64, &plan, &mut proto) {
                AckWait::Acked => {}
                AckWait::TimedOut => {
                    self.telem.on_ack_timeout();
                    self.obs
                        .ack_timeout(self.conn_id, w as u64, self.retry.max_attempts);
                }
                AckWait::Shutdown => return,
            }
        }
        self.teardown(epoch, &mut proto);
        self.telem.on_session_complete();
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(AtomicOrdering::SeqCst)
    }

    fn send(&self, msg: &Msg) {
        // Never panic on an oversize message from inside the session
        // thread: count the refusal and drop the send (the peer's retry
        // machinery treats it as loss).
        let bytes = match wire::try_encode(self.conn_id, msg) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.telem.on_encode_oversize();
                self.obs.refused_msg(self.conn_id, msg);
                return;
            }
        };
        // Record before the bytes hit the socket, so a matching delivery
        // on a shared clock can never timestamp earlier than its send.
        self.obs.sent_msg(self.conn_id, msg);
        let _ = self.socket.send_to(&bytes, self.peer);
        self.telem.on_tx(bytes.len());
    }

    /// Waits for the client's `Begin`, up to one full retry schedule.
    fn await_begin(&self, _epoch: Instant) -> bool {
        let deadline = Instant::now() + self.retry.total_wait();
        loop {
            if self.stopping() {
                return false;
            }
            match self.rx.recv_timeout(POLL) {
                Ok(routed) if matches!(routed.msg, Msg::Begin) => return true,
                Ok(_) => {} // pre-Begin stragglers: ignore
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        self.telem.on_handshake_timeout();
                        return false;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
    }

    /// Sends every fragment of window `w` in the plan's order, paced.
    fn send_window(&self, w: u64, plan: &WindowPlan) {
        let ldus = &self.source.windows[w as usize];
        for sched in &plan.schedule {
            if self.stopping() {
                return;
            }
            self.send_frame(w, plan, sched.frame, false, ldus);
        }
    }

    /// Sends all fragments of one frame with its plan labelling.
    fn send_frame(
        &self,
        w: u64,
        plan: &WindowPlan,
        frame: usize,
        retransmit: bool,
        ldus: &[espread_protocol::Ldu],
    ) {
        let Some(sched) = plan.schedule.iter().find(|s| s.frame == frame) else {
            return;
        };
        let ldu = ldus[frame];
        let packet = self.protocol.packet_bytes;
        let frags_total = ldu.fragment_count(packet);
        for frag in 0..frags_total {
            let payload_len = ldu.fragment_size(packet, frag) as u16;
            self.send(&Msg::Data(DataMsg {
                fragment: espread_protocol::Fragment {
                    window: w,
                    frame,
                    frag,
                    frags_total,
                    layer: sched.layer,
                    layer_slot: sched.layer_slot,
                    retransmit,
                },
                ldu,
                payload_len,
            }));
            if !self.pace.is_zero() {
                std::thread::sleep(self.pace);
            }
        }
    }

    /// Offers a routed message to the planner; ACKs also feed the RTT
    /// histogram. Returns the window an ACK described, if any.
    fn feed(&self, epoch: Instant, routed: &Routed, proto: &mut Server) -> Option<u64> {
        if let Msg::WindowAck(ack) = &routed.msg {
            if ack.echo_us != 0 {
                let at_us = routed.at.saturating_duration_since(epoch).as_micros() as u64;
                self.telem.rtt_us(at_us.saturating_sub(ack.echo_us));
            }
            self.obs.ack_received(self.conn_id, ack.window, ack.ack_seq);
            proto.offer_ack(
                ack.ack_seq,
                WindowFeedback {
                    window: ack.window,
                    per_layer_burst: ack
                        .per_layer_burst
                        .iter()
                        .map(|&b| usize::from(b))
                        .collect(),
                },
            );
            return Some(ack.window);
        }
        None
    }

    /// Waits for the ACK of window `w`, resending `WindowEnd` under the
    /// retry schedule and serving one critical-recovery round per NACK.
    fn await_ack(&self, epoch: Instant, w: u64, plan: &WindowPlan, proto: &mut Server) -> AckWait {
        let ldus = &self.source.windows[w as usize];
        for attempt in 0..self.retry.max_attempts {
            let deadline = Instant::now() + self.retry.backoff(attempt);
            loop {
                if self.stopping() {
                    return AckWait::Shutdown;
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match self.rx.recv_timeout(remaining.min(POLL)) {
                    Ok(routed) => match &routed.msg {
                        Msg::CriticalNack(nack) if nack.window == w => {
                            for &frame in &nack.missing {
                                let frame = usize::from(frame);
                                if frame < ldus.len() {
                                    self.telem.on_retransmission();
                                    self.obs.nack_received(self.conn_id, w, frame as u32);
                                    self.send_frame(w, plan, frame, true, ldus);
                                }
                            }
                            self.send(&Msg::WindowEnd(WindowEnd {
                                window: w,
                                sent_at_us: elapsed_us(epoch),
                                last: w as usize + 1 == self.source.windows.len(),
                            }));
                        }
                        _ => {
                            if let Some(acked) = self.feed(epoch, &routed, proto) {
                                if acked >= w {
                                    return AckWait::Acked;
                                }
                            }
                        }
                    },
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return AckWait::Shutdown,
                }
            }
            if attempt + 1 < self.retry.max_attempts {
                self.telem.on_retry();
                self.send(&Msg::WindowEnd(WindowEnd {
                    window: w,
                    sent_at_us: elapsed_us(epoch),
                    last: w as usize + 1 == self.source.windows.len(),
                }));
            }
        }
        AckWait::TimedOut
    }

    /// Graceful teardown: `Bye` until `ByeAck`, bounded.
    fn teardown(&self, epoch: Instant, proto: &mut Server) {
        for attempt in 0..self.retry.max_attempts {
            self.send(&Msg::Bye(ByeReason::Complete));
            let deadline = Instant::now() + self.retry.backoff(attempt);
            loop {
                if self.stopping() {
                    return;
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                match self.rx.recv_timeout(remaining.min(POLL)) {
                    Ok(routed) if matches!(routed.msg, Msg::ByeAck) => return,
                    Ok(routed) => {
                        let _ = self.feed(epoch, &routed, proto);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            if attempt + 1 < self.retry.max_attempts {
                self.telem.on_retry();
            }
        }
    }
}

fn elapsed_us(epoch: Instant) -> u64 {
    // Never 0: an echo of 0 marks "no RTT sample" on the ACK path.
    (epoch.elapsed().as_micros() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use espread_trace::{GopPattern, Movie, MpegTrace};

    fn paper_offer() -> SessionOffer {
        SessionOffer {
            gop_pattern: GopPattern::gop12(),
            gops_per_window: 2,
            open_gop: false,
            fps: 24,
            packet_bytes: 2048,
            max_frame_bytes: 62_776 / 8,
        }
    }

    fn config() -> NetServerConfig {
        let trace = MpegTrace::new(Movie::JurassicPark, 1);
        NetServerConfig::new(
            espread_protocol::ProtocolConfig::paper(0.6, 1),
            paper_offer(),
            StreamSource::mpeg(&trace, 2, 3, false),
        )
    }

    #[test]
    fn config_validation_catches_mismatches() {
        assert!(config().validate().is_ok());

        let mut c = config();
        c.offer.gops_per_window = 1; // 12 frames vs source's 24
        assert!(matches!(c.validate(), Err(NetError::Config(why)) if why.contains("frames")));

        let mut c = config();
        c.offer.fps = 30;
        assert!(matches!(c.validate(), Err(NetError::Config(why)) if why.contains("fps")));

        let mut c = config();
        c.retry.max_attempts = 0;
        assert!(c.validate().is_err());

        let mut c = config();
        c.offer.packet_bytes = 100_000;
        c.protocol.packet_bytes = 100_000;
        assert!(matches!(c.validate(), Err(NetError::Config(why)) if why.contains("64 KiB")));
    }

    #[test]
    fn accept_msg_narrows_or_refuses() {
        let agreed = negotiate(paper_offer(), ClientCapabilities::desktop()).unwrap();
        let accept = accept_msg(7, &agreed, 20).unwrap();
        assert_eq!(accept.nonce, 7);
        assert_eq!(accept.frames_per_window, 24);
        assert_eq!(accept.windows_total, 20);
        assert_eq!(accept.layer_sizes, vec![2, 2, 2, 2, 16]);
        assert_eq!(accept.critical_frames.len(), 8);
    }

    #[test]
    fn bind_and_shutdown_are_clean_and_idempotent() {
        let mut server = NetServer::bind("127.0.0.1:0", config()).unwrap();
        assert_eq!(
            server.local_addr().ip(),
            "127.0.0.1".parse::<std::net::IpAddr>().unwrap()
        );
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn alien_datagrams_do_not_crash_the_demux() {
        let mut server = NetServer::bind("127.0.0.1:0", config()).unwrap();
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        probe
            .send_to(b"not espread at all", server.local_addr())
            .unwrap();
        probe.send_to(&[], server.local_addr()).unwrap();
        // A sessionless data message is ignored too.
        let stray = wire::encode(
            99,
            &Msg::WindowEnd(WindowEnd {
                window: 0,
                sent_at_us: 1,
                last: false,
            }),
        );
        probe.send_to(&stray, server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
    }
}
