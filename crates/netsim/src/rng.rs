//! A small deterministic PRNG for loss processes.
//!
//! The simulator needs a random source that is (a) seedable, (b) cheap,
//! (c) `Clone` so channel models can be snapshotted and replayed, and
//! (d) stable across platforms and crate versions — experiment outputs
//! must be bit-reproducible. [`DetRng`] is xorshift64\* seeded through
//! SplitMix64, a standard combination with good statistical behaviour for
//! simulation (it is not, and does not need to be, cryptographic).

/// A deterministic, cloneable xorshift64\* generator.
///
/// # Example
///
/// ```
/// use espread_netsim::rng::DetRng;
///
/// let mut a = DetRng::seed_from(7);
/// let mut b = a.clone();
/// assert_eq!(a.next_u64(), b.next_u64()); // clones replay identically
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed (any value, including 0, is fine —
    /// the SplitMix64 scrambler guarantees a non-zero internal state).
    pub fn seed_from(seed: u64) -> Self {
        // One SplitMix64 step to spread low-entropy seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng {
            state: z.max(1), // xorshift state must be non-zero
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform deviate in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p must be a probability"
        );
        self.next_f64() < p
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Modulo bias is negligible for the simulation bounds used here
        // (all ≪ 2^32), and determinism matters more than perfection.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_cloneable() {
        let mut a = DetRng::seed_from(123);
        let mut b = DetRng::seed_from(123);
        let mut c = a.clone();
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_eq!(x, c.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_works() {
        let mut r = DetRng::seed_from(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn f64_range_and_mean() {
        let mut r = DetRng::seed_from(9);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_statistics() {
        let mut r = DetRng::seed_from(5);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn below_bounds() {
        let mut r = DetRng::seed_from(6);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_rejected() {
        let mut r = DetRng::seed_from(6);
        let _ = r.below(0);
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn bad_probability_rejected() {
        let mut r = DetRng::seed_from(6);
        let _ = r.chance(1.2);
    }
}
