#!/usr/bin/env bash
# Gates the overload wave against its committed baseline and re-checks
# the admission-control invariants from the written artifact.
#
# Usage: scripts/check_bench_overload.sh [baseline.json] [fresh.json]
#
# Two layers:
#  1. Hard invariants (host-independent, zero tolerance): every admitted
#     session completed, live sessions never exceeded the cap, zero
#     critical frames lost, the shedder actually engaged, the server
#     refused at least one handshake, and nothing leaked.
#  2. Throughput floor: `sessions_per_sec` must stay within 20% of the
#     committed BENCH_overload.json. The wave is retry/pacing-bound, so
#     the metric travels across hosts; the committed floor is still
#     pinned conservatively below the reference measurement (see the
#     "measured" field). Re-pin it when the CI runner class changes.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${1:-BENCH_overload.json}
FRESH=${2:-results/net_overload.json}
[[ -s $BASELINE ]] || { echo "error: missing baseline $BASELINE" >&2; exit 1; }
[[ -s $FRESH ]] || { echo "error: missing measurement $FRESH (run net_overload first)" >&2; exit 1; }

python3 - "$BASELINE" "$FRESH" <<'EOF'
import json
import sys

baseline = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))

failures = []
if fresh["completed"] != fresh["admitted"]:
    failures.append(
        f"only {fresh['completed']}/{fresh['admitted']} admitted sessions completed"
    )
if fresh["peak_live"] > fresh["cap"]:
    failures.append(
        f"peak live {fresh['peak_live']} exceeded the admission cap {fresh['cap']}"
    )
if fresh["critical_frames_lost"] != 0:
    failures.append(
        f"{fresh['critical_frames_lost']} critical frames lost under overload"
    )
if fresh["shed_enhancement"] == 0:
    failures.append("the shedder never engaged (shed_enhancement == 0)")
if fresh["busy_rejections"] == 0:
    failures.append("the server never refused a handshake (busy_rejections == 0)")
if fresh["sessions_reaped"] != fresh["admitted"]:
    failures.append(
        f"only {fresh['sessions_reaped']}/{fresh['admitted']} sessions reaped"
    )
for failure in failures:
    print(f"net_overload: {failure} -> FAIL")
if failures:
    sys.exit(1)

base, new = baseline["sessions_per_sec"], fresh["sessions_per_sec"]
limit = base * 0.80
verdict = "ok" if new >= limit else "REGRESSION"
print(
    f"net_overload sessions/sec: committed floor {base:.0f}, fresh {new:.0f} "
    f"({fresh['wave']} clients vs cap {fresh['cap']}), limit {limit:.0f} -> {verdict}"
)
sys.exit(0 if new >= limit else 1)
EOF
