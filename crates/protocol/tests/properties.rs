//! Property-based tests for protocol invariants across random
//! configurations and channels.

use espread_protocol::{Ordering, ProtocolConfig, Recovery, Session, StreamSource, WindowPlan};
use espread_trace::{AudioStream, GopPattern, Movie, MpegTrace};
use proptest::prelude::*;

fn any_ordering() -> impl Strategy<Value = Ordering> {
    prop_oneof![
        Just(Ordering::InOrder),
        Just(Ordering::spread()),
        Just(Ordering::Spread { adaptive: false }),
        Just(Ordering::Ibo),
    ]
}

fn any_recovery() -> impl Strategy<Value = Recovery> {
    prop_oneof![
        Just(Recovery::None),
        Just(Recovery::Retransmit),
        (2u16..8).prop_map(|group| Recovery::Fec { group }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every ordering's window plan is a permutation of the window that
    /// respects the dependency poset.
    #[test]
    fn plans_are_valid_linear_extensions(
        ordering in any_ordering(),
        w in 1usize..4,
        open in any::<bool>(),
        estimates in prop::collection::vec(1usize..20, 5),
    ) {
        let poset = GopPattern::gop12().dependency_poset(w, open);
        let plan = WindowPlan::build(ordering, &poset, &estimates);
        let order: Vec<usize> = plan.schedule.iter().map(|s| s.frame).collect();
        prop_assert_eq!(order.len(), poset.len());
        prop_assert!(poset.is_linear_extension(&order), "{} {:?}", ordering, order);
        prop_assert!(plan.critical_prefix <= plan.schedule.len());
    }

    /// Sessions are deterministic in the seed and never report more loss
    /// than frames.
    #[test]
    fn sessions_deterministic_and_sane(
        ordering in any_ordering(),
        recovery in any_recovery(),
        p_bad in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let trace = MpegTrace::new(Movie::JurassicPark, 3);
        let source = StreamSource::mpeg(&trace, 1, 6, false);
        let cfg = ProtocolConfig::paper(p_bad, seed)
            .with_ordering(ordering)
            .with_recovery(recovery);
        let run = |cfg: ProtocolConfig, src: StreamSource| Session::new(cfg, src).run();
        let a = run(cfg.clone(), source.clone());
        let b = run(cfg, source.clone());
        prop_assert_eq!(
            a.series.clf_values().collect::<Vec<_>>(),
            b.series.clf_values().collect::<Vec<_>>()
        );
        for m in a.series.windows() {
            prop_assert!(m.clf() <= m.window_len());
            prop_assert!(m.lost() <= m.window_len());
            prop_assert_eq!(m.window_len(), source.frames_per_window());
        }
        prop_assert!(a.packets_lost <= a.packets_offered);
    }

    /// On a lossless channel with ample bandwidth every scheme is
    /// loss-free: permuting can never *create* discontinuity.
    #[test]
    fn lossless_channel_is_loss_free(ordering in any_ordering(), recovery in any_recovery()) {
        let trace = MpegTrace::new(Movie::JurassicPark, 4);
        let source = StreamSource::mpeg(&trace, 2, 4, true);
        let mut cfg = ProtocolConfig::paper(0.0, 1)
            .with_ordering(ordering)
            .with_recovery(recovery);
        cfg.p_good = 1.0;
        cfg.p_bad = 0.0;
        let report = Session::new(cfg, source).run();
        prop_assert_eq!(report.summary().mean_clf, 0.0);
        prop_assert_eq!(report.summary().total_lost, 0);
        prop_assert_eq!(report.dropped_frames, 0);
    }

    /// Audio (dependency-free) sessions: the protocol degenerates to pure
    /// scrambling with a single layer and still works for any window size.
    #[test]
    fn audio_any_window_size(n in 4usize..64, p_bad in 0.0f64..0.8, seed in any::<u64>()) {
        let source = StreamSource::audio(AudioStream::sun_audio(), n, 5);
        let report = Session::new(ProtocolConfig::paper(p_bad, seed), source).run();
        prop_assert_eq!(report.series.len(), 5);
        prop_assert_eq!(report.estimate_history[0].len(), 1);
    }

    /// FEC strictly adds bandwidth and never increases aggregate loss on
    /// the same channel realisation.
    #[test]
    fn fec_costs_bandwidth(group in 2u16..10, seed in any::<u64>()) {
        let trace = MpegTrace::new(Movie::JurassicPark, 5);
        let source = StreamSource::mpeg(&trace, 1, 8, false);
        let base = Session::new(ProtocolConfig::paper(0.5, seed), source.clone()).run();
        let fec = Session::new(
            ProtocolConfig::paper(0.5, seed).with_recovery(Recovery::Fec { group }),
            source,
        )
        .run();
        prop_assert!(fec.bytes_offered > base.bytes_offered);
    }
}
