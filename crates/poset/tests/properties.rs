//! Property-based tests for poset invariants (Mirsky, linear extensions,
//! order axioms) on randomly generated DAGs.

use espread_poset::Poset;
use proptest::prelude::*;

/// Strategy: a random poset over 1..=10 elements built from edges (a, b)
/// with a < b numerically — guarantees acyclicity while exercising
/// arbitrary DAG shapes (including transitive edges).
fn random_poset() -> impl Strategy<Value = Poset> {
    (1usize..=10)
        .prop_flat_map(|n| {
            let edges = prop::collection::vec((0..n, 0..n), 0..=(n * n / 2));
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = Poset::builder(n);
            for (x, y) in edges {
                let (lo, hi) = (x.min(y), x.max(y));
                if lo != hi {
                    b.add_relation(lo, hi).unwrap();
                }
            }
            b.build().expect("edges follow numeric order, acyclic")
        })
}

proptest! {
    /// Partial-order axioms hold on the closure.
    #[test]
    fn order_axioms(p in random_poset()) {
        let n = p.len();
        for a in 0..n {
            prop_assert!(p.less_equal(a, a));
            prop_assert!(!p.less_than(a, a));
            for b in 0..n {
                if p.less_than(a, b) {
                    prop_assert!(!p.less_than(b, a), "antisymmetry");
                }
                for c in 0..n {
                    if p.less_than(a, b) && p.less_than(b, c) {
                        prop_assert!(p.less_than(a, c), "transitivity");
                    }
                }
            }
        }
    }

    /// Mirsky decomposition: valid antichain partition, respects order,
    /// layer count equals height (minimality witness).
    #[test]
    fn mirsky_invariants(p in random_poset()) {
        let layers = p.mirsky_decomposition();
        prop_assert!(p.is_antichain_decomposition(&layers));
        prop_assert!(p.layers_respect_order(&layers));
        prop_assert_eq!(layers.len(), p.height());
        // No decomposition can have fewer layers than the longest chain:
        // the chain's elements must all land in distinct antichains.
        let chain = p.longest_chain();
        prop_assert_eq!(chain.len(), p.height());
        prop_assert!(p.is_chain(&chain));
    }

    /// Depth decomposition: same guarantees as Mirsky (valid partition,
    /// order-respecting, minimal size), dual construction.
    #[test]
    fn depth_decomposition_invariants(p in random_poset()) {
        let layers = p.depth_decomposition();
        prop_assert!(p.is_antichain_decomposition(&layers));
        prop_assert!(p.layers_respect_order(&layers));
        prop_assert_eq!(layers.len(), p.height());
        // Depths decrease strictly along the order.
        for a in 0..p.len() {
            for b in 0..p.len() {
                if p.less_than(a, b) {
                    prop_assert!(p.element_depth(a) > p.element_depth(b));
                }
            }
        }
    }

    /// The canonical linear extension validates, and concatenating Mirsky
    /// layers yields a linear extension.
    #[test]
    fn linear_extension_invariants(p in random_poset()) {
        let ext = p.linear_extension();
        prop_assert!(p.is_linear_extension(&ext));
        let layered: Vec<usize> = p.mirsky_decomposition().into_iter().flatten().collect();
        prop_assert!(p.is_linear_extension(&layered));
    }

    /// Every enumerated linear extension validates; the canonical one is
    /// among them (small posets only).
    #[test]
    fn all_extensions_valid(p in random_poset()) {
        prop_assume!(p.len() <= 6);
        let all = p.all_linear_extensions();
        prop_assert!(!all.is_empty());
        for ext in &all {
            prop_assert!(p.is_linear_extension(ext));
        }
        prop_assert!(all.contains(&p.linear_extension()));
    }

    /// Dilworth: the witnesses are valid, the equality holds, and the
    /// width brackets between the largest Mirsky layer and n.
    #[test]
    fn dilworth_invariants(p in random_poset()) {
        let d = p.dilworth();
        prop_assert!(p.is_antichain(&d.max_antichain));
        prop_assert_eq!(d.chains.len(), d.max_antichain.len());
        let mut seen = vec![false; p.len()];
        for chain in &d.chains {
            prop_assert!(p.is_chain(chain));
            for w in chain.windows(2) {
                prop_assert!(p.less_than(w[0], w[1]));
            }
            for &x in chain {
                prop_assert!(!seen[x]);
                seen[x] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        let width = p.width();
        prop_assert!(width >= p.max_layer_width());
        prop_assert!(width <= p.len());
        // Width × height ≥ n (every chain cover has ≤ height-long chains).
        if !p.is_empty() {
            prop_assert!(width * p.height() >= p.len());
        }
    }

    /// Minimal elements have height 0 and nothing below them.
    #[test]
    fn minimal_maximal_consistency(p in random_poset()) {
        for &m in &p.minimal_elements() {
            prop_assert_eq!(p.element_height(m), 0);
            for a in 0..p.len() {
                prop_assert!(!p.less_than(a, m));
            }
        }
        for &m in &p.maximal_elements() {
            for a in 0..p.len() {
                prop_assert!(!p.less_than(m, a));
            }
        }
    }

    /// Heights increase strictly along the order.
    #[test]
    fn height_strictly_monotone(p in random_poset()) {
        for a in 0..p.len() {
            for b in 0..p.len() {
                if p.less_than(a, b) {
                    prop_assert!(p.element_height(a) < p.element_height(b));
                }
            }
        }
    }
}
