//! Packet-level XOR forward error correction (the proactive axis of
//! Fig. 4, blocks C and F).
//!
//! The sender emits one **parity packet** per `k` data packets; the parity
//! is the XOR of its group's payloads, so the receiver can reconstruct any
//! **single** missing packet of a group from the parity plus the remaining
//! `k − 1`. Bandwidth overhead is `1/k`. The simulator does not move real
//! payload bytes, so recovery is modelled structurally: a parity packet
//! carries its member list and a member is recoverable iff it is the only
//! one missing — exactly the semantics of XOR FEC.

use crate::packetize::{Fragment, Reassembly};

/// Identifies one data fragment within a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    /// Playout index of the frame within the window.
    pub frame: usize,
    /// Fragment index within the frame.
    pub frag: u16,
}

impl From<&Fragment> for FragmentKey {
    fn from(f: &Fragment) -> Self {
        FragmentKey {
            frame: f.frame,
            frag: f.frag,
        }
    }
}

/// A parity packet: XOR of its members' payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityPacket {
    /// Window the group belongs to.
    pub window: u64,
    /// Group sequence number within the window.
    pub group: u32,
    /// The data fragments covered.
    pub members: Vec<FragmentKey>,
    /// Wire payload size: the maximum member payload (XOR width).
    pub size_bytes: u32,
}

/// Accumulates data fragments into parity groups of size `k`.
///
/// # Example
///
/// ```
/// use espread_protocol::fec::FecEncoder;
/// use espread_protocol::packetize::Fragment;
///
/// let mut enc = FecEncoder::new(0, 2);
/// let frag = |frame| Fragment { window: 0, frame, frag: 0, frags_total: 1,
///                               layer: 0, layer_slot: 0, retransmit: false };
/// assert!(enc.push(&frag(0), 1000).is_none());
/// let parity = enc.push(&frag(1), 500).expect("group of 2 complete");
/// assert_eq!(parity.members.len(), 2);
/// assert_eq!(parity.size_bytes, 1000); // XOR width = max member
/// assert!(enc.flush().is_none());      // nothing pending
/// ```
#[derive(Debug, Clone)]
pub struct FecEncoder {
    window: u64,
    k: u16,
    next_group: u32,
    pending: Vec<FragmentKey>,
    pending_max: u32,
}

impl FecEncoder {
    /// Creates an encoder for `window` with group size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(window: u64, k: u16) -> Self {
        assert!(k > 0, "FEC group size must be positive");
        FecEncoder {
            window,
            k,
            next_group: 0,
            pending: Vec::with_capacity(usize::from(k)),
            pending_max: 0,
        }
    }

    /// Adds a sent data fragment; returns a parity packet when the group
    /// fills.
    pub fn push(&mut self, fragment: &Fragment, payload_bytes: u32) -> Option<ParityPacket> {
        self.pending.push(fragment.into());
        self.pending_max = self.pending_max.max(payload_bytes);
        if self.pending.len() == usize::from(self.k) {
            self.emit()
        } else {
            None
        }
    }

    /// Emits a parity for any partial trailing group.
    pub fn flush(&mut self) -> Option<ParityPacket> {
        if self.pending.is_empty() {
            None
        } else {
            self.emit()
        }
    }

    fn emit(&mut self) -> Option<ParityPacket> {
        let group = self.next_group;
        self.next_group += 1;
        let members = std::mem::take(&mut self.pending);
        let size_bytes = self.pending_max.max(1);
        self.pending_max = 0;
        Some(ParityPacket {
            window: self.window,
            group,
            members,
            size_bytes,
        })
    }
}

/// Applies XOR-FEC recovery: for every received parity whose group is
/// missing **exactly one** data fragment, that fragment is reconstructed
/// and fed to the reassembler. Iterates to a fixpoint so recoveries that
/// complete one frame never unlock further packets incorrectly (each
/// parity can still only repair one loss).
///
/// Returns the number of fragments recovered.
pub fn apply_fec_recovery(
    reassembly: &mut Reassembly,
    received_fragments: &mut Vec<FragmentKey>,
    parities: &[ParityPacket],
) -> usize {
    use std::collections::HashSet;
    let mut have: HashSet<FragmentKey> = received_fragments.iter().copied().collect();
    let mut recovered = 0;
    let mut used: Vec<bool> = vec![false; parities.len()];
    loop {
        let mut progress = false;
        for (i, parity) in parities.iter().enumerate() {
            if used[i] {
                continue;
            }
            let missing: Vec<FragmentKey> = parity
                .members
                .iter()
                .copied()
                .filter(|m| !have.contains(m))
                .collect();
            if missing.len() == 1 {
                let m = missing[0];
                have.insert(m);
                // Total fragment count is irrelevant to Reassembly::accept.
                reassembly.accept(&Fragment {
                    window: parity.window,
                    frame: m.frame,
                    frag: m.frag,
                    frags_total: 0,
                    layer: 0,
                    layer_slot: 0,
                    retransmit: false,
                });
                used[i] = true;
                recovered += 1;
                progress = true;
            } else if missing.is_empty() {
                used[i] = true;
            }
        }
        if !progress {
            break;
        }
    }
    received_fragments.clear();
    received_fragments.extend(have);
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packetize::Ldu;

    fn frag(frame: usize, frag_idx: u16) -> Fragment {
        Fragment {
            window: 0,
            frame,
            frag: frag_idx,
            frags_total: 1,
            layer: 0,
            layer_slot: 0,
            retransmit: false,
        }
    }

    #[test]
    fn encoder_groups_and_flushes() {
        let mut enc = FecEncoder::new(0, 3);
        assert!(enc.push(&frag(0, 0), 100).is_none());
        assert!(enc.push(&frag(1, 0), 300).is_none());
        let p = enc.push(&frag(2, 0), 200).unwrap();
        assert_eq!(p.group, 0);
        assert_eq!(p.members.len(), 3);
        assert_eq!(p.size_bytes, 300);

        assert!(enc.push(&frag(3, 0), 50).is_none());
        let tail = enc.flush().unwrap();
        assert_eq!(tail.group, 1);
        assert_eq!(tail.members.len(), 1);
        assert_eq!(tail.size_bytes, 50);
        assert!(enc.flush().is_none());
    }

    #[test]
    #[should_panic(expected = "group size must be positive")]
    fn zero_group_rejected() {
        let _ = FecEncoder::new(0, 0);
    }

    #[test]
    fn single_loss_recovered() {
        let ldus = vec![Ldu::new(100), Ldu::new(100), Ldu::new(100)];
        let mut r = Reassembly::new(&ldus, 2048);
        // Frames 0 and 2 arrive; frame 1 lost; parity covers all three.
        r.accept(&frag(0, 0));
        r.accept(&frag(2, 0));
        let mut received = vec![
            FragmentKey { frame: 0, frag: 0 },
            FragmentKey { frame: 2, frag: 0 },
        ];
        let parity = ParityPacket {
            window: 0,
            group: 0,
            members: vec![
                FragmentKey { frame: 0, frag: 0 },
                FragmentKey { frame: 1, frag: 0 },
                FragmentKey { frame: 2, frag: 0 },
            ],
            size_bytes: 100,
        };
        let n = apply_fec_recovery(&mut r, &mut received, &[parity]);
        assert_eq!(n, 1);
        assert!(r.is_complete(1));
    }

    #[test]
    fn double_loss_not_recoverable() {
        let ldus = vec![Ldu::new(100), Ldu::new(100), Ldu::new(100)];
        let mut r = Reassembly::new(&ldus, 2048);
        r.accept(&frag(0, 0));
        let mut received = vec![FragmentKey { frame: 0, frag: 0 }];
        let parity = ParityPacket {
            window: 0,
            group: 0,
            members: vec![
                FragmentKey { frame: 0, frag: 0 },
                FragmentKey { frame: 1, frag: 0 },
                FragmentKey { frame: 2, frag: 0 },
            ],
            size_bytes: 100,
        };
        let n = apply_fec_recovery(&mut r, &mut received, &[parity]);
        assert_eq!(n, 0);
        assert!(!r.is_complete(1));
        assert!(!r.is_complete(2));
    }

    #[test]
    fn cascading_recovery_across_groups() {
        // Group A covers {0,1}, group B covers {1,2}. Packets 1 and 2
        // lost: A repairs 1, which lets B repair 2.
        let ldus = vec![Ldu::new(100), Ldu::new(100), Ldu::new(100)];
        let mut r = Reassembly::new(&ldus, 2048);
        r.accept(&frag(0, 0));
        let mut received = vec![FragmentKey { frame: 0, frag: 0 }];
        let a = ParityPacket {
            window: 0,
            group: 0,
            members: vec![
                FragmentKey { frame: 0, frag: 0 },
                FragmentKey { frame: 1, frag: 0 },
            ],
            size_bytes: 100,
        };
        let b = ParityPacket {
            window: 0,
            group: 1,
            members: vec![
                FragmentKey { frame: 1, frag: 0 },
                FragmentKey { frame: 2, frag: 0 },
            ],
            size_bytes: 100,
        };
        let n = apply_fec_recovery(&mut r, &mut received, &[b, a]);
        assert_eq!(n, 2);
        assert!(r.is_complete(1));
        assert!(r.is_complete(2));
        assert_eq!(received.len(), 3);
    }

    #[test]
    fn no_parities_no_recovery() {
        let ldus = vec![Ldu::new(100)];
        let mut r = Reassembly::new(&ldus, 2048);
        let mut received = Vec::new();
        assert_eq!(apply_fec_recovery(&mut r, &mut received, &[]), 0);
    }
}
