//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.in_inclusive(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length lies in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
