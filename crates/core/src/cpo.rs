//! Cyclic Permutation Orders and the `calculatePermutation` search.
//!
//! The paper's scrambling scheme is the **k-Cyclic Permutation Order**
//! (k-CPO): frames of a window of `n` LDUs are sent along a cyclic stride,
//! so that a network burst hits frames far apart in playout order. The
//! companion algorithm `calculatePermutation(n, b)` returns the appropriate
//! order for a sender buffer of `n` LDUs under a bursty-loss bound `b`.
//!
//! Our reconstruction (the original pseudo-code did not survive OCR; see
//! `DESIGN.md` §2.1) performs an **exact search** over two structured
//! families that contain the paper's published example orders:
//!
//! * the [cyclic stride orders](stride_permutation) `π(t) = t·s mod n`
//!   (generalised to non-coprime strides by coset traversal) — the paper's
//!   Table 1 order is `stride_permutation(17, 5)`;
//! * the [block interleavers](crate::interleave::block_interleaver)
//!   (write row-wise, read column-wise), the classical scheme error
//!   spreading generalises.
//!
//! Each candidate is scored by its exact worst-case CLF
//! ([`crate::burst::worst_case_clf`]); ties are broken by the larger
//! [minimum spread gap](crate::burst::min_spread_gap), then by the smaller
//! stride for determinism. Tests verify the search attains the true optimum
//! (over *all* `n!` orders) for every small `n`.

use crate::burst::{min_spread_gap, worst_case_clf};
use crate::interleave::{block_interleaver, block_interleaver_reversed};
use crate::permutation::Permutation;

/// Window sizes up to this bound are solved by exhaustive search over all
/// `n!` orders, guaranteeing true optimality where the structured families
/// have (rare) gaps.
pub const EXHAUSTIVE_LIMIT: usize = 7;

/// The family a chosen spreading order came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderFamily {
    /// The identity (in-playout-order) transmission.
    Identity,
    /// A cyclic stride order with the given stride.
    CyclicStride(usize),
    /// A block interleaver with the given number of rows.
    BlockInterleave(usize),
    /// A block interleaver read with reversed rows, with the given number
    /// of rows.
    BlockInterleaveReversed(usize),
    /// Found by exhaustive search over all orders (tiny windows only).
    Exhaustive,
}

impl std::fmt::Display for OrderFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderFamily::Identity => write!(f, "identity"),
            OrderFamily::CyclicStride(s) => write!(f, "cyclic stride {s}"),
            OrderFamily::BlockInterleave(r) => write!(f, "block interleave {r} rows"),
            OrderFamily::BlockInterleaveReversed(r) => {
                write!(f, "reversed block interleave {r} rows")
            }
            OrderFamily::Exhaustive => write!(f, "exhaustive search"),
        }
    }
}

/// Result of [`calculate_permutation`]: the chosen order plus its exact
/// worst-case guarantee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpreadChoice {
    /// The chosen transmission order.
    pub permutation: Permutation,
    /// The exact worst-case CLF of `permutation` against any single burst
    /// of at most `b` slots.
    pub worst_clf: usize,
    /// Which structured family the order came from.
    pub family: OrderFamily,
}

/// The cyclic stride order over `n` slots with stride `s`.
///
/// For `gcd(s, n) = 1` this is `π(t) = t·s mod n` — the paper's CPO; the
/// Table 1 example is `stride_permutation(17, 5)`. For non-coprime strides
/// the walk `0, s, 2s, …` only visits one residue class, so after each
/// cycle closes the walk restarts from the next unvisited playout index
/// (coset traversal), still yielding a permutation.
///
/// # Panics
///
/// Panics if `s == 0` and `n > 0`.
///
/// # Example
///
/// ```
/// use espread_core::cpo::stride_permutation;
///
/// assert_eq!(stride_permutation(6, 2).as_slice(), &[0, 2, 4, 1, 3, 5]);
/// assert_eq!(
///     stride_permutation(17, 5).as_slice()[..5],
///     [0, 5, 10, 15, 3]
/// );
/// ```
pub fn stride_permutation(n: usize, s: usize) -> Permutation {
    if n == 0 {
        return Permutation::identity(0);
    }
    assert!(s > 0, "stride must be positive");
    let mut forward = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut start = 0;
    while forward.len() < n {
        let mut cur = start;
        while !visited[cur] {
            visited[cur] = true;
            forward.push(cur);
            cur = (cur + s) % n;
        }
        start += 1;
        while start < n && visited[start] {
            start += 1;
        }
        if start >= n {
            break;
        }
    }
    Permutation::from_vec(forward).expect("coset traversal visits each index once")
}

/// `calculatePermutation(n, b)` — the appropriate error-spreading order for
/// a sender buffer of `n` LDUs under a bursty-loss bound of `b` slots per
/// window, together with its exact worst-case CLF.
///
/// Degenerate cases: `b == 0` (no loss) and `b ≥ n` (whole window lost)
/// return the identity, since no order can do better.
///
/// # Example
///
/// ```
/// use espread_core::calculate_permutation;
///
/// let choice = calculate_permutation(17, 5);
/// assert_eq!(choice.worst_clf, 1); // Table 1: burst of 5 spread to CLF 1
/// ```
pub fn calculate_permutation(n: usize, b: usize) -> SpreadChoice {
    let _span = crate::telem::span("core.calculate_permutation.ns");
    crate::telem::count("core.calculate_permutation.calls");
    if n == 0 || b == 0 || b >= n {
        let permutation = Permutation::identity(n);
        let worst_clf = worst_case_clf(&permutation, b);
        return SpreadChoice {
            permutation,
            worst_clf,
            family: OrderFamily::Identity,
        };
    }

    // Pass 1: score every structured candidate at the design burst size.
    let mut candidates: Vec<(Permutation, OrderFamily)> =
        vec![(Permutation::identity(n), OrderFamily::Identity)];
    for s in 2..n {
        candidates.push((stride_permutation(n, s), OrderFamily::CyclicStride(s)));
    }
    // Block interleavers with every feasible row count (rows ≥ 2, at least
    // two columns); these occasionally beat strides for composite n.
    for rows in 2..=n / 2 {
        candidates.push((
            block_interleaver(n, rows),
            OrderFamily::BlockInterleave(rows),
        ));
        candidates.push((
            block_interleaver_reversed(n, rows),
            OrderFamily::BlockInterleaveReversed(rows),
        ));
    }
    let scores: Vec<usize> = candidates
        .iter()
        .map(|(p, _)| worst_case_clf(p, b))
        .collect();
    let mut best_clf = scores.iter().copied().min().expect("non-empty candidates");

    // For tiny windows the structured families can miss the optimum (the
    // smallest known gap is n = 7, b = 5); close it exhaustively.
    if n <= EXHAUSTIVE_LIMIT {
        if let Some(perm) = exhaustive_better_than(n, b, best_clf) {
            best_clf = worst_case_clf(&perm, b);
            return SpreadChoice {
                permutation: perm,
                worst_clf: best_clf,
                family: OrderFamily::Exhaustive,
            };
        }
    }

    // Pass 2: among ties at the design burst, prefer multi-scale
    // robustness — real channels produce bursts *around* the estimate,
    // and an order that is optimal only at exactly `b` (but fragile at
    // other scales) loses to hierarchical orders like IBO in practice.
    // Score ties by their summed worst-case CLF over power-of-two burst
    // sizes, then by larger minimum spread gap, then first-found.
    let probe_sizes: Vec<usize> = {
        let mut sizes = vec![];
        let mut s = 1;
        while s < n {
            sizes.push(s);
            s *= 2;
        }
        sizes
    };
    let mut best: Option<(usize, usize, usize)> = None; // (idx, profile, gap)
    for (idx, (perm, _)) in candidates.iter().enumerate() {
        if scores[idx] != best_clf {
            continue;
        }
        let profile: usize = probe_sizes.iter().map(|&pb| worst_case_clf(perm, pb)).sum();
        let gap = min_spread_gap(perm, b);
        let better = match best {
            None => true,
            Some((_, cur_profile, cur_gap)) => {
                profile < cur_profile || (profile == cur_profile && gap > cur_gap)
            }
        };
        if better {
            best = Some((idx, profile, gap));
        }
    }
    let (idx, _, _) = best.expect("at least one tied candidate");
    let (permutation, family) = candidates.swap_remove(idx);
    SpreadChoice {
        permutation,
        worst_clf: best_clf,
        family,
    }
}

/// Finds an order over `n` slots with worst-case CLF strictly below
/// `target`, minimising the CLF, by scanning all `n!` orders.
/// Returns `None` when no order beats `target`.
fn exhaustive_better_than(n: usize, b: usize, target: usize) -> Option<Permutation> {
    let mut best: Option<(usize, Vec<usize>)> = None;
    let mut items: Vec<usize> = (0..n).collect();
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    let evaluate = |items: &[usize], best: &mut Option<(usize, Vec<usize>)>| {
        let perm = Permutation::from_vec(items.to_vec()).expect("permutation by construction");
        let clf = worst_case_clf(&perm, b);
        let current_best = best.as_ref().map(|(v, _)| *v).unwrap_or(target);
        if clf < current_best {
            *best = Some((clf, items.to_vec()));
        }
    };
    evaluate(&items, &mut best);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                items.swap(0, i);
            } else {
                items.swap(c[i], i);
            }
            evaluate(&items, &mut best);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    best.map(|(_, v)| Permutation::from_vec(v).expect("permutation by construction"))
}

/// The largest burst bound `b` for which some order over `n` slots keeps
/// the worst-case CLF at or below `k` — the sizing question behind the
/// name *k-CPO* ("k is the user's maximum acceptable CLF").
///
/// Returns `0` when even `b = 1` exceeds the tolerance (only possible for
/// `k == 0`), and `n` when every burst is tolerable.
///
/// # Example
///
/// ```
/// use espread_core::cpo::max_tolerable_burst;
///
/// // A 17-slot window can spread bursts of up to 8 slots at CLF ≤ 2.
/// let b = max_tolerable_burst(17, 2);
/// assert!(b >= 5);
/// ```
pub fn max_tolerable_burst(n: usize, k: usize) -> usize {
    if k == 0 {
        return 0;
    }
    if k >= n {
        return n;
    }
    // worst CLF of the best order is nondecreasing in b, so scan upward.
    // The scan revisits the same (n, b) pairs every adaptation step, so it
    // goes through the memoized cache.
    let mut best_b = 0;
    for b in 1..=n {
        if crate::cache::calculate_permutation_cached(n, b).worst_clf <= k {
            best_b = b;
        } else {
            break;
        }
    }
    best_b
}

/// The smallest window size whose optimal order keeps the worst-case CLF
/// at or below `k` against bursts of `b` — the §4.1 buffer-sizing question
/// inverted: *how much buffering does a given tolerance demand?*
///
/// Scans window sizes from `b + 1` (a window no larger than the burst
/// "meets" any tolerance only by losing everything) up to `limit`;
/// returns `None` when even `limit` slots cannot meet the tolerance.
///
/// # Example
///
/// ```
/// use espread_core::cpo::min_window_for;
///
/// // Spreading a 5-packet burst down to isolated losses needs 17 slots...
/// let n = min_window_for(1, 5, 64).unwrap();
/// assert!(n <= 17);
/// // ...but CLF ≤ 2 is far cheaper.
/// assert!(min_window_for(2, 5, 64).unwrap() < n);
/// ```
pub fn min_window_for(k: usize, b: usize, limit: usize) -> Option<usize> {
    if k == 0 {
        return (b == 0).then_some(0);
    }
    (b + 1..=limit).find(|&n| crate::cache::calculate_permutation_cached(n, b).worst_clf <= k)
}

/// A `k`-CPO: the best order for window `n` sized to the largest burst the
/// user tolerance `k` admits (see [`max_tolerable_burst`]).
///
/// When every burst is tolerable (`k ≥ n`) the order is sized for the
/// largest *spreadable* burst, `n − 1`, so the returned permutation is
/// still a useful interleaving rather than the degenerate identity.
pub fn k_cpo(n: usize, k: usize) -> SpreadChoice {
    (*k_cpo_cached(n, k)).clone()
}

/// [`k_cpo`] without the defensive clone: the shared cache entry itself.
///
/// This is the steady-state form — the returned [`SpreadChoice`] (and the
/// permutation tables inside it) are owned by the process-global order
/// cache, so a window pipeline holding the `Arc` does table lookups with
/// zero per-window allocation.
pub fn k_cpo_cached(n: usize, k: usize) -> std::sync::Arc<SpreadChoice> {
    let _span = crate::telem::span("core.k_cpo.ns");
    let b = max_tolerable_burst(n, k).clamp(1, n.saturating_sub(1).max(1));
    crate::cache::calculate_permutation_cached(n, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::clf_lower_bound;

    #[test]
    fn stride_basic_shapes() {
        assert_eq!(stride_permutation(0, 3).len(), 0);
        assert_eq!(stride_permutation(1, 1).as_slice(), &[0]);
        assert_eq!(stride_permutation(5, 1), Permutation::identity(5));
        assert_eq!(stride_permutation(6, 2).as_slice(), &[0, 2, 4, 1, 3, 5]);
        assert_eq!(stride_permutation(6, 3).as_slice(), &[0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn stride_is_always_a_permutation() {
        for n in 1..40 {
            for s in 1..n {
                let p = stride_permutation(n, s);
                assert_eq!(p.len(), n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = stride_permutation(4, 0);
    }

    #[test]
    fn paper_table1_order() {
        let p = stride_permutation(17, 5);
        let expected = [0, 5, 10, 15, 3, 8, 13, 1, 6, 11, 16, 4, 9, 14, 2, 7, 12];
        assert_eq!(p.as_slice(), &expected);
    }

    #[test]
    fn calculate_permutation_degenerate_cases() {
        assert_eq!(calculate_permutation(0, 3).permutation.len(), 0);
        let c = calculate_permutation(8, 0);
        assert!(c.permutation.is_identity());
        assert_eq!(c.worst_clf, 0);
        let c = calculate_permutation(8, 8);
        assert!(c.permutation.is_identity());
        assert_eq!(c.worst_clf, 8);
        let c = calculate_permutation(8, 100);
        assert_eq!(c.worst_clf, 8);
    }

    #[test]
    fn table1_parameters_reach_clf_one() {
        let c = calculate_permutation(17, 5);
        assert_eq!(c.worst_clf, 1);
    }

    #[test]
    fn small_square_windows_reach_clf_one() {
        // Theorem reconstruction: b² ≤ n ⇒ optimal CLF 1.
        for (n, b) in [(9, 3), (16, 4), (25, 5), (10, 3), (20, 4)] {
            let c = calculate_permutation(n, b);
            assert_eq!(c.worst_clf, 1, "n={n} b={b}");
        }
    }

    #[test]
    fn chosen_order_never_worse_than_identity_or_bound() {
        for n in 2..24 {
            for b in 1..n {
                let c = calculate_permutation(n, b);
                assert!(c.worst_clf <= b, "never worse than identity: n={n} b={b}");
                assert!(
                    c.worst_clf >= clf_lower_bound(n, b),
                    "lower bound violated: n={n} b={b}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_optimality_small_n() {
        // Against ALL n! orders: the structured search must attain the true
        // optimum. This is the strongest validation of the reconstruction.
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            let mut items: Vec<usize> = (0..n).collect();
            heap_permute(&mut items, n, &mut out);
            out
        }
        fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
            if k == 1 {
                out.push(items.clone());
                return;
            }
            for i in 0..k {
                heap_permute(items, k - 1, out);
                if k.is_multiple_of(2) {
                    items.swap(i, k - 1);
                } else {
                    items.swap(0, k - 1);
                }
            }
        }
        for n in 2..=7 {
            let all = permutations(n);
            for b in 1..n {
                let optimum = all
                    .iter()
                    .map(|v| worst_case_clf(&Permutation::from_vec(v.clone()).unwrap(), b))
                    .min()
                    .unwrap();
                let found = calculate_permutation(n, b).worst_clf;
                assert_eq!(found, optimum, "search suboptimal at n={n} b={b}");
            }
        }
    }

    #[test]
    fn max_tolerable_burst_monotone_in_k() {
        let n = 17;
        let mut prev = 0;
        for k in 0..=n {
            let b = max_tolerable_burst(n, k);
            assert!(b >= prev, "tolerable burst must grow with tolerance");
            prev = b;
        }
        assert_eq!(max_tolerable_burst(n, n), n);
        assert_eq!(max_tolerable_burst(n, 0), 0);
    }

    #[test]
    fn video_threshold_burst_capacity() {
        // With the perceptual threshold k=2 a 17-slot window tolerates
        // bursts well beyond 5.
        let b = max_tolerable_burst(17, 2);
        assert!(b >= 5, "got {b}");
        let choice = calculate_permutation(17, b);
        assert!(choice.worst_clf <= 2);
    }

    #[test]
    fn k_cpo_respects_tolerance() {
        for (n, k) in [(12, 1), (17, 2), (24, 3)] {
            let c = k_cpo(n, k);
            // The order it returns is sized for the largest tolerable burst.
            assert!(c.worst_clf <= k.max(1), "n={n} k={k} clf={}", c.worst_clf);
        }
    }

    #[test]
    fn min_window_inverts_the_guarantee() {
        // The returned window really meets the tolerance, and nothing
        // smaller does.
        for (k, b) in [(1usize, 3usize), (1, 5), (2, 5), (2, 8), (3, 8)] {
            let n = min_window_for(k, b, 128).expect("limit generous");
            assert!(
                calculate_permutation(n, b).worst_clf <= k,
                "k={k} b={b} n={n}"
            );
            if n > 1 {
                assert!(
                    calculate_permutation(n - 1, b).worst_clf > k,
                    "k={k} b={b}: {} already suffices",
                    n - 1
                );
            }
        }
    }

    #[test]
    fn min_window_edge_cases() {
        // A tolerance at or above the burst needs just one extra slot.
        assert_eq!(min_window_for(3, 2, 16), Some(3));
        // Impossible within the limit.
        assert_eq!(min_window_for(1, 5, 6), None);
        // k = 0 only works for no loss at all.
        assert_eq!(min_window_for(0, 0, 16), Some(0));
        assert_eq!(min_window_for(0, 1, 16), None);
        // Looser tolerance never needs a bigger window.
        let tight = min_window_for(1, 5, 128).unwrap();
        let loose = min_window_for(2, 5, 128).unwrap();
        assert!(loose <= tight);
    }

    #[test]
    fn family_display() {
        assert_eq!(OrderFamily::Identity.to_string(), "identity");
        assert_eq!(OrderFamily::CyclicStride(5).to_string(), "cyclic stride 5");
        assert_eq!(
            OrderFamily::BlockInterleave(3).to_string(),
            "block interleave 3 rows"
        );
    }
}
