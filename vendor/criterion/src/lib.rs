//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace's benches use: groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is
//! real (adaptive iteration count, mean wall-clock ns/iter printed to
//! stdout) but there is no statistical analysis, plotting, or report
//! directory.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    measured: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Measures `f`, choosing an iteration count adaptively so the whole
    /// measurement stays around a few milliseconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up / calibration: double until one batch costs ≥ 1 ms.
        let mut batch: u64 = 1;
        let budget = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget || batch >= 1 << 20 {
                self.measured = Some(elapsed);
                self.iterations = batch;
                break;
            }
            batch *= 2;
        }
    }

    fn report(&self, label: &str) {
        if let Some(elapsed) = self.measured {
            let per_iter = elapsed.as_nanos() as f64 / self.iterations.max(1) as f64;
            println!(
                "bench: {label:<50} {per_iter:>12.1} ns/iter ({} iters)",
                self.iterations
            );
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the target sample count (accepted for API compatibility; the
    /// stand-in's adaptive calibration ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Benchmarks `f` at the top level.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.into());
        self
    }
}

/// Bundles benchmark functions into one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
