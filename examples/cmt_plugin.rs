//! Hosting error spreading inside a CMT-style pipeline (§4.4).
//!
//! The paper validated its scheme by swapping CMT's Inverse Binary Order
//! for k-CPO inside the `pktSrc` object. This example runs the same
//! pipeline three times — unscrambled, IBO, and CPO — and prints per-cycle
//! continuity.
//!
//! ```sh
//! cargo run --release --example cmt_plugin
//! ```

use error_spreading::prelude::*;

fn main() {
    let config = PipelineConfig {
        cycles: 50,
        p_bad: 0.7,
        ..PipelineConfig::default()
    };
    let trace = MpegTrace::new(Movie::JurassicPark, 1);

    println!(
        "CMT pipeline: {} cycles of {} GOPs, {} kbps, P_bad {}",
        config.cycles,
        config.gops_per_cycle,
        config.bandwidth_bps / 1000,
        config.p_bad
    );
    println!("\nB-frame ordering   mean CLF   dev   max");
    for ordering in [
        BFrameOrdering::InOrder,
        BFrameOrdering::Ibo,
        BFrameOrdering::Cpo { burst: 4 },
    ] {
        let series = Pipeline::new(trace.clone(), &config, ordering).run();
        let s = series.summary();
        println!(
            "{:<18} {:>8.2} {:>5.2} {:>5}",
            ordering.to_string(),
            s.mean_clf,
            s.dev_clf,
            s.max_clf
        );
    }

    // Table 2 of the paper: the deterministic 8-frame comparison.
    println!("\nTable 2 — 8-frame window, worst-case CLF by burst size:");
    println!("burst  IBO  CPO");
    for b in 1..8 {
        let ibo = worst_case_clf(&BFrameOrdering::Ibo.permutation(8), b);
        let cpo = worst_case_clf(&BFrameOrdering::Cpo { burst: b }.permutation(8), b);
        println!("{b:>5}  {ibo:>3}  {cpo:>3}");
    }
}
