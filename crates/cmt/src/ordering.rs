//! Pluggable B-frame orderings for the PktSrc object.
//!
//! CMT prioritises the B-frames of a buffer with the **Inverse Binary
//! Order**; the paper's §4.4 experiment "replaced IBO with our error
//! spreading algorithm (based on k-CPO) … Since k-CPO has been proven to
//! be optimal, it is better than IBO in all cases." This module is that
//! plug point.

use espread_core::{calculate_permutation_cached, ibo::inverse_binary_order, Permutation};

/// How PktSrc orders the B-frames of a buffer for transmission (anchors
/// always go first, in decode order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BFrameOrdering {
    /// No interleaving: B-frames in playout order (the naive baseline).
    InOrder,
    /// CMT's stock Inverse Binary Order.
    Ibo,
    /// The paper's replacement: `calculatePermutation(n, b)` sized for the
    /// given burst bound.
    Cpo {
        /// The bursty-loss bound to spread against.
        burst: usize,
    },
}

impl BFrameOrdering {
    /// The transmission order over `n` B-frames.
    pub fn permutation(self, n: usize) -> Permutation {
        match self {
            BFrameOrdering::InOrder => Permutation::identity(n),
            BFrameOrdering::Ibo => inverse_binary_order(n),
            BFrameOrdering::Cpo { burst } => {
                calculate_permutation_cached(n, burst.clamp(1, n.max(1)))
                    .permutation
                    .clone()
            }
        }
    }
}

impl std::fmt::Display for BFrameOrdering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BFrameOrdering::InOrder => f.write_str("in-order"),
            BFrameOrdering::Ibo => f.write_str("IBO"),
            BFrameOrdering::Cpo { burst } => write!(f, "CPO(b={burst})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use espread_core::worst_case_clf;

    #[test]
    fn ibo_matches_core_baseline() {
        assert_eq!(
            BFrameOrdering::Ibo.permutation(8).as_slice(),
            &[0, 4, 2, 6, 1, 5, 3, 7]
        );
    }

    #[test]
    fn cpo_never_worse_than_ibo() {
        // Table 2's claim, checked for every burst size on the 8-frame
        // window CMT uses in the paper's example.
        for b in 1..8 {
            let ibo = BFrameOrdering::Ibo.permutation(8);
            let cpo = BFrameOrdering::Cpo { burst: b }.permutation(8);
            assert!(worst_case_clf(&cpo, b) <= worst_case_clf(&ibo, b), "b={b}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(BFrameOrdering::Ibo.permutation(0).len(), 0);
        assert_eq!(BFrameOrdering::Cpo { burst: 3 }.permutation(0).len(), 0);
        assert_eq!(BFrameOrdering::Cpo { burst: 0 }.permutation(4).len(), 4);
    }

    #[test]
    fn display_labels() {
        assert_eq!(BFrameOrdering::InOrder.to_string(), "in-order");
        assert_eq!(BFrameOrdering::Ibo.to_string(), "IBO");
        assert_eq!(BFrameOrdering::Cpo { burst: 2 }.to_string(), "CPO(b=2)");
    }

    #[test]
    fn in_order_is_identity() {
        assert!(BFrameOrdering::InOrder.permutation(9).is_identity());
    }
}
