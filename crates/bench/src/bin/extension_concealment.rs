//! Extension — error spreading as a concealment enabler.
//!
//! Receiver-side concealment (reference \[16\] of the paper) interpolates
//! a missing frame from delivered neighbours, so it repairs **isolated**
//! losses but not runs. Error spreading converts runs into isolated
//! losses without changing the loss count — which means the two schemes
//! are more than orthogonal: spreading actively *feeds* concealment.
//!
//! ```sh
//! cargo run --release -p espread-bench --bin extension_concealment
//! ```

use espread_bench::{mean, paper_source, Comparison};
use espread_protocol::ProtocolConfig;
use espread_qos::{Concealment, ContinuityMetrics, WindowSeries};

fn main() {
    println!("Concealment synergy (Pbad=0.6, 100 windows, 3 seeds, simple interpolation)\n");
    println!(
        "{:<12} {:>10} {:>13} {:>13} {:>14}",
        "scheme", "mean CLF", "concealable", "CLF after", "loss after"
    );

    let conceal = Concealment::simple();
    for scheme in ["unscrambled", "scrambled"] {
        let mut clf = Vec::new();
        let mut frac = Vec::new();
        let mut after_clf = Vec::new();
        let mut after_alf = Vec::new();
        for seed in [42u64, 43, 44] {
            let source = paper_source(2, 100, 1);
            let cmp = Comparison::run(&ProtocolConfig::paper(0.6, seed), &source);
            let report = if scheme == "scrambled" {
                &cmp.spread
            } else {
                &cmp.plain
            };
            clf.push(report.summary().mean_clf);
            let fractions: Vec<f64> = report
                .patterns
                .iter()
                .map(|p| conceal.concealable_fraction(p))
                .collect();
            frac.push(mean(&fractions));
            let concealed: WindowSeries = report
                .patterns
                .iter()
                .map(|p| ContinuityMetrics::of(&conceal.apply(p)))
                .collect();
            after_clf.push(concealed.summary().mean_clf);
            after_alf.push(concealed.summary().mean_alf);
        }
        println!(
            "{scheme:<12} {:>10.2} {:>12.0}% {:>13.2} {:>13.1}%",
            mean(&clf),
            mean(&frac) * 100.0,
            mean(&after_clf),
            mean(&after_alf) * 100.0
        );
    }
    println!("\nreading: under the naive order most losses sit inside runs and cannot be");
    println!("interpolated; spreading isolates them, so concealment repairs the large");
    println!("majority and the *effective* loss rate drops — the two techniques compose");
    println!("super-additively, strengthening the paper's §4.3 orthogonality claim.");

    espread_bench::write_telemetry_snapshot("extension_concealment");
}
